//! Offline stand-ins for serde's derive macros.
//!
//! `#[derive(Serialize)]` now generates a real implementation of the shim's
//! `serde::Serialize` trait (JSON emission — see `shims/serde`).  Because no
//! `syn`/`quote` are available offline, the input item is parsed directly
//! from the raw token stream; the supported grammar is exactly what the
//! workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit (optionally with `= discriminant`) or
//!   single-field tuple ("newtype") variants.
//!
//! Unit variants serialize as their name (`"Acl"`); newtype variants use
//! serde's externally-tagged form (`{"Matched":7}`), so the output matches
//! what upstream serde_json would produce for the same types.
//!
//! `#[derive(Deserialize)]` remains a no-op: the shim's `Deserialize` is a
//! marker trait and nothing in the workspace parses serialized data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Generates a JSON `Serialize` implementation for a struct with named
/// fields or a unit/newtype enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match parse_item(item) {
        Ok(Item::Struct { name, fields }) => {
            let mut body = String::from("__w.begin_object();");
            for field in &fields {
                body.push_str(&format!(
                    "__w.key(\"{field}\");::serde::Serialize::serialize(&self.{field}, __w);"
                ));
            }
            body.push_str("__w.end_object();");
            emit_impl(&name, &body)
        }
        Ok(Item::Enum { name, variants }) => {
            let mut arms = String::new();
            for variant in &variants {
                match variant {
                    Variant::Unit(v) => {
                        arms.push_str(&format!("{name}::{v} => __w.string(\"{v}\"),"));
                    }
                    Variant::Newtype(v) => {
                        arms.push_str(&format!(
                            "{name}::{v}(__inner) => {{ __w.begin_object(); __w.key(\"{v}\"); \
                             ::serde::Serialize::serialize(__inner, __w); __w.end_object(); }}"
                        ));
                    }
                }
            }
            emit_impl(&name, &format!("match self {{ {arms} }}"))
        }
        Err(msg) => {
            let msg = msg.replace(['"', '\\'], "'");
            format!("compile_error!(\"derive(Serialize) shim: {msg}\");")
                .parse()
                .unwrap()
        }
    }
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn emit_impl(name: &str, body: &str) -> TokenStream {
    format!(
        "impl ::serde::Serialize for {name} {{\
           fn serialize(&self, __w: &mut ::serde::json::JsonWriter) {{ {body} }}\
         }}"
    )
    .parse()
    .expect("derive(Serialize) shim generated invalid Rust")
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Newtype(String),
}

/// Parses the derive input far enough to recover the item name and its
/// fields/variants.  Attributes (including doc comments) and visibility are
/// skipped; generic parameters are rejected.
fn parse_item(item: TokenStream) -> Result<Item, String> {
    let mut tokens = item.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type `{name}` is not supported"));
            }
            Some(_) => continue,
            None => {
                return Err(format!(
                    "`{name}` has no braced body (tuple/unit items are \
                                        not supported)"
                ))
            }
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("unsupported item kind `{other}`")),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes_and_visibility(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // '#'
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next(); // 'pub'
                               // Optional restriction: pub(crate), pub(super), ...
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skips the tokens of one type (or discriminant expression) up to a
/// top-level comma, tracking `<`/`>` nesting so commas inside generic
/// arguments don't terminate early.  Groups are single tokens, so brackets,
/// parens and braces nest for free.  Consumes the trailing comma if present.
fn skip_to_field_end(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, got {other:?} (tuple structs are not \
                     supported)"
                ))
            }
        }
        skip_to_field_end(&mut tokens);
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                if count_top_level_fields(group.stream()) != 1 {
                    return Err(format!(
                        "variant `{name}`: only single-field tuple variants are supported"
                    ));
                }
                tokens.next();
                skip_to_field_end(&mut tokens);
                variants.push(Variant::Newtype(name));
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "variant `{name}`: struct variants are not supported"
                ));
            }
            _ => {
                // Unit variant, possibly with `= discriminant`.
                skip_to_field_end(&mut tokens);
                variants.push(Variant::Unit(name));
            }
        }
    }
    Ok(variants)
}

/// Counts comma-separated chunks at the top level of a tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut tokens: Tokens = stream.into_iter().peekable();
    if tokens.peek().is_none() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0usize;
    let mut saw_tokens_since_comma = true;
    for token in tokens {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        if !saw_tokens_since_comma {
            fields += 1;
            saw_tokens_since_comma = true;
        }
    }
    fields
}
