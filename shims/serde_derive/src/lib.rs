//! Offline no-op stand-ins for serde's derive macros.
//!
//! Nothing in this workspace serializes data yet — the derives exist so the
//! type definitions stay source-compatible with upstream `serde` — so both
//! macros expand to nothing.  When real serialization lands, replace the
//! `shims/serde*` crates with the registry versions.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
