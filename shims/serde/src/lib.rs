//! Offline API-surface shim for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.  The derives are
//! no-ops and the traits are empty markers: nothing in the workspace
//! serializes data yet (see `shims/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
