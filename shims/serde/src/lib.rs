//! Offline API-surface shim for `serde`, with a working JSON backend.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.  Unlike the
//! original marker-only shim, `Serialize` is now functional: the derive in
//! `serde_derive` generates real implementations that stream a value into
//! the [`json::JsonWriter`], and [`json::to_string`] renders any
//! serializable value as a JSON document (this is what the benchmark
//! harness uses to emit `BENCH_throughput.json`).
//!
//! Divergence from upstream worth knowing about when this shim is ever
//! replaced by the registry crates: upstream's `Serialize::serialize` is
//! generic over a `Serializer`; here it is monomorphic over the JSON writer
//! (the only backend the workspace needs), and `json::to_string` plays the
//! role of `serde_json::to_string` but returns `String` directly instead of
//! a `Result`.  `Deserialize` remains a marker trait — nothing in the
//! workspace parses serialized data yet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written as JSON.
///
/// Stand-in for `serde::Serialize`; implementations are usually generated
/// by `#[derive(Serialize)]`.
pub trait Serialize {
    /// Streams `self` into the JSON writer as one complete value.
    fn serialize(&self, writer: &mut json::JsonWriter);
}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Minimal JSON emission — the shim's stand-in for `serde_json`.
pub mod json {
    use super::Serialize;

    /// Renders a serializable value as a JSON document.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut writer = JsonWriter::new();
        value.serialize(&mut writer);
        writer.finish()
    }

    /// Renders a serializable value as JSON with trailing newline, the
    /// conventional shape for files committed as build artifacts.
    pub fn to_file_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut s = to_string(value);
        s.push('\n');
        s
    }

    #[derive(Debug, Clone, Copy)]
    struct Frame {
        in_array: bool,
        items: usize,
    }

    /// An append-only JSON stream writer.
    ///
    /// Values call [`JsonWriter::begin_object`] / [`JsonWriter::key`] /
    /// scalar methods in document order; the writer inserts commas and
    /// colons.  The output is compact (no whitespace) and UTF-8 clean.
    #[derive(Debug, Default)]
    pub struct JsonWriter {
        out: String,
        stack: Vec<Frame>,
        after_key: bool,
    }

    impl JsonWriter {
        /// An empty writer.
        pub fn new() -> JsonWriter {
            JsonWriter::default()
        }

        /// Consumes the writer and returns the JSON text.
        ///
        /// # Panics
        /// Panics if an object or array was left open.
        pub fn finish(self) -> String {
            assert!(
                self.stack.is_empty(),
                "JsonWriter finished with {} unclosed container(s)",
                self.stack.len()
            );
            self.out
        }

        /// Comma bookkeeping shared by every value-producing method: a value
        /// directly follows a key (no comma), or is an array element
        /// (comma-separated), or is the document root.
        fn value_prelude(&mut self) {
            if self.after_key {
                self.after_key = false;
                return;
            }
            if let Some(frame) = self.stack.last_mut() {
                debug_assert!(frame.in_array, "object member written without a key");
                if frame.items > 0 {
                    self.out.push(',');
                }
                frame.items += 1;
            }
        }

        /// Opens an object (`{`).
        pub fn begin_object(&mut self) {
            self.value_prelude();
            self.out.push('{');
            self.stack.push(Frame {
                in_array: false,
                items: 0,
            });
        }

        /// Closes the innermost object (`}`).
        pub fn end_object(&mut self) {
            let frame = self.stack.pop().expect("end_object with no open object");
            debug_assert!(!frame.in_array, "end_object closing an array");
            self.out.push('}');
        }

        /// Opens an array (`[`).
        pub fn begin_array(&mut self) {
            self.value_prelude();
            self.out.push('[');
            self.stack.push(Frame {
                in_array: true,
                items: 0,
            });
        }

        /// Closes the innermost array (`]`).
        pub fn end_array(&mut self) {
            let frame = self.stack.pop().expect("end_array with no open array");
            debug_assert!(frame.in_array, "end_array closing an object");
            self.out.push(']');
        }

        /// Writes an object key; the next write is its value.
        pub fn key(&mut self, key: &str) {
            let frame = self.stack.last_mut().expect("key outside an object");
            debug_assert!(!frame.in_array, "key inside an array");
            if frame.items > 0 {
                self.out.push(',');
            }
            frame.items += 1;
            write_escaped(&mut self.out, key);
            self.out.push(':');
            self.after_key = true;
        }

        /// Writes a string value.
        pub fn string(&mut self, value: &str) {
            self.value_prelude();
            write_escaped(&mut self.out, value);
        }

        /// Writes an unsigned integer value.
        pub fn unsigned(&mut self, value: u128) {
            self.value_prelude();
            self.out.push_str(&value.to_string());
        }

        /// Writes a signed integer value.
        pub fn signed(&mut self, value: i128) {
            self.value_prelude();
            self.out.push_str(&value.to_string());
        }

        /// Writes a floating-point value (`null` for NaN/infinities, which
        /// JSON cannot represent).
        pub fn float(&mut self, value: f64) {
            self.value_prelude();
            if value.is_finite() {
                // Rust's float Display is the shortest round-trippable form,
                // but it omits the fractional part for integral values;
                // keep a `.0` so consumers see a JSON number with a clear
                // floating-point intent.
                let text = value.to_string();
                self.out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    self.out.push_str(".0");
                }
            } else {
                self.out.push_str("null");
            }
        }

        /// Writes a boolean value.
        pub fn boolean(&mut self, value: bool) {
            self.value_prelude();
            self.out.push_str(if value { "true" } else { "false" });
        }

        /// Writes a JSON `null`.
        pub fn null(&mut self) {
            self.value_prelude();
            self.out.push_str("null");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, writer: &mut json::JsonWriter) {
                writer.unsigned(u128::from(*self));
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, u128);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, writer: &mut json::JsonWriter) {
                writer.signed(i128::from(*self));
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.unsigned(*self as u128);
    }
}

impl Serialize for isize {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.signed(*self as i128);
    }
}

impl Serialize for f32 {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.float(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.float(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.boolean(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        (**self).serialize(writer);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        match self {
            Some(value) => value.serialize(writer),
            None => writer.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        for item in self {
            item.serialize(writer);
        }
        writer.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        self.as_slice().serialize(writer);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        self.as_slice().serialize(writer);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        self.0.serialize(writer);
        self.1.serialize(writer);
        writer.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        self.0.serialize(writer);
        self.1.serialize(writer);
        self.2.serialize(writer);
        writer.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("hi \"there\"\n"), r#""hi \"there\"\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(json::to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&[1u8, 2]), "[1,2]");
        assert_eq!(json::to_string(&Some(5u8)), "5");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(json::to_string(&(1u8, 2u8, 3u8)), "[1,2,3]");
    }

    #[test]
    fn writer_builds_objects() {
        let mut w = json::JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.unsigned(1);
        w.key("b");
        w.begin_array();
        w.string("x");
        w.string("y");
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y"]}"#);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json::to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn file_string_ends_with_newline() {
        assert_eq!(json::to_file_string(&1u8), "1\n");
    }
}
