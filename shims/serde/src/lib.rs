//! Offline API-surface shim for `serde`, with a working JSON backend.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.  Unlike the
//! original marker-only shim, `Serialize` is now functional: the derive in
//! `serde_derive` generates real implementations that stream a value into
//! the [`json::JsonWriter`], and [`json::to_string`] renders any
//! serializable value as a JSON document (this is what the benchmark
//! harness uses to emit `BENCH_throughput.json`).
//!
//! Divergence from upstream worth knowing about when this shim is ever
//! replaced by the registry crates: upstream's `Serialize::serialize` is
//! generic over a `Serializer`; here it is monomorphic over the JSON writer
//! (the only backend the workspace needs), and `json::to_string` plays the
//! role of `serde_json::to_string` but returns `String` directly instead of
//! a `Result`.  `Deserialize` remains a marker trait; document parsing goes
//! through [`json::parse`], which returns a dynamically-typed
//! [`json::Value`] tree (the shim's stand-in for `serde_json::Value`) —
//! that is what the `throughput --check` regression gate uses to read a
//! committed baseline back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written as JSON.
///
/// Stand-in for `serde::Serialize`; implementations are usually generated
/// by `#[derive(Serialize)]`.
pub trait Serialize {
    /// Streams `self` into the JSON writer as one complete value.
    fn serialize(&self, writer: &mut json::JsonWriter);
}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Minimal JSON emission — the shim's stand-in for `serde_json`.
pub mod json {
    use super::Serialize;

    /// Renders a serializable value as a JSON document.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut writer = JsonWriter::new();
        value.serialize(&mut writer);
        writer.finish()
    }

    /// Renders a serializable value as JSON with trailing newline, the
    /// conventional shape for files committed as build artifacts.
    pub fn to_file_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut s = to_string(value);
        s.push('\n');
        s
    }

    #[derive(Debug, Clone, Copy)]
    struct Frame {
        in_array: bool,
        items: usize,
    }

    /// An append-only JSON stream writer.
    ///
    /// Values call [`JsonWriter::begin_object`] / [`JsonWriter::key`] /
    /// scalar methods in document order; the writer inserts commas and
    /// colons.  The output is compact (no whitespace) and UTF-8 clean.
    #[derive(Debug, Default)]
    pub struct JsonWriter {
        out: String,
        stack: Vec<Frame>,
        after_key: bool,
    }

    impl JsonWriter {
        /// An empty writer.
        pub fn new() -> JsonWriter {
            JsonWriter::default()
        }

        /// Consumes the writer and returns the JSON text.
        ///
        /// # Panics
        /// Panics if an object or array was left open.
        pub fn finish(self) -> String {
            assert!(
                self.stack.is_empty(),
                "JsonWriter finished with {} unclosed container(s)",
                self.stack.len()
            );
            self.out
        }

        /// Comma bookkeeping shared by every value-producing method: a value
        /// directly follows a key (no comma), or is an array element
        /// (comma-separated), or is the document root.
        fn value_prelude(&mut self) {
            if self.after_key {
                self.after_key = false;
                return;
            }
            if let Some(frame) = self.stack.last_mut() {
                debug_assert!(frame.in_array, "object member written without a key");
                if frame.items > 0 {
                    self.out.push(',');
                }
                frame.items += 1;
            }
        }

        /// Opens an object (`{`).
        pub fn begin_object(&mut self) {
            self.value_prelude();
            self.out.push('{');
            self.stack.push(Frame {
                in_array: false,
                items: 0,
            });
        }

        /// Closes the innermost object (`}`).
        pub fn end_object(&mut self) {
            let frame = self.stack.pop().expect("end_object with no open object");
            debug_assert!(!frame.in_array, "end_object closing an array");
            self.out.push('}');
        }

        /// Opens an array (`[`).
        pub fn begin_array(&mut self) {
            self.value_prelude();
            self.out.push('[');
            self.stack.push(Frame {
                in_array: true,
                items: 0,
            });
        }

        /// Closes the innermost array (`]`).
        pub fn end_array(&mut self) {
            let frame = self.stack.pop().expect("end_array with no open array");
            debug_assert!(frame.in_array, "end_array closing an object");
            self.out.push(']');
        }

        /// Writes an object key; the next write is its value.
        pub fn key(&mut self, key: &str) {
            let frame = self.stack.last_mut().expect("key outside an object");
            debug_assert!(!frame.in_array, "key inside an array");
            if frame.items > 0 {
                self.out.push(',');
            }
            frame.items += 1;
            write_escaped(&mut self.out, key);
            self.out.push(':');
            self.after_key = true;
        }

        /// Writes a string value.
        pub fn string(&mut self, value: &str) {
            self.value_prelude();
            write_escaped(&mut self.out, value);
        }

        /// Writes an unsigned integer value.
        pub fn unsigned(&mut self, value: u128) {
            self.value_prelude();
            self.out.push_str(&value.to_string());
        }

        /// Writes a signed integer value.
        pub fn signed(&mut self, value: i128) {
            self.value_prelude();
            self.out.push_str(&value.to_string());
        }

        /// Writes a floating-point value (`null` for NaN/infinities, which
        /// JSON cannot represent).
        pub fn float(&mut self, value: f64) {
            self.value_prelude();
            if value.is_finite() {
                // Rust's float Display is the shortest round-trippable form,
                // but it omits the fractional part for integral values;
                // keep a `.0` so consumers see a JSON number with a clear
                // floating-point intent.
                let text = value.to_string();
                self.out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    self.out.push_str(".0");
                }
            } else {
                self.out.push_str("null");
            }
        }

        /// Writes a boolean value.
        pub fn boolean(&mut self, value: bool) {
            self.value_prelude();
            self.out.push_str(if value { "true" } else { "false" });
        }

        /// Writes a JSON `null`.
        pub fn null(&mut self) {
            self.value_prelude();
            self.out.push_str("null");
        }
    }

    /// A parsed JSON value (stand-in for `serde_json::Value`).
    ///
    /// Numbers are kept as `f64`, which is lossless for every integer the
    /// workspace serializes below 2^53 (ids, counts, nanosecond wall times).
    /// Object member order is preserved.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, in document order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Member of an object by key (`None` for absent keys or non-objects).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The elements if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The number if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as an unsigned integer, if it is one exactly.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// The boolean if this is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// A JSON syntax error with the byte offset where it was detected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset into the input.
        pub offset: usize,
        /// What went wrong.
        pub message: String,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "JSON parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses a JSON document into a [`Value`] tree.
    ///
    /// Accepts exactly one top-level value followed only by whitespace.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after the top-level value"));
        }
        Ok(value)
    }

    /// Maximum container nesting [`parse`] accepts — the same cap
    /// serde_json uses, turning pathological inputs (e.g. a corrupted
    /// baseline of thousands of `[`s) into a parse error instead of a
    /// stack overflow in the recursive descent.
    const MAX_DEPTH: usize = 128;

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        depth: usize,
    }

    impl<'a> Parser<'a> {
        fn error(&self, message: &str) -> ParseError {
            ParseError {
                offset: self.pos,
                message: message.to_string(),
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected '{}'", b as char)))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(self.error(&format!("expected '{word}'")))
            }
        }

        fn value(&mut self) -> Result<Value, ParseError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.error("expected a JSON value")),
            }
        }

        fn enter(&mut self) -> Result<(), ParseError> {
            self.depth += 1;
            if self.depth > MAX_DEPTH {
                return Err(self.error("nesting deeper than 128 levels"));
            }
            Ok(())
        }

        fn object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            self.enter()?;
            let mut members = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(Value::Object(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                members.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(self.error("expected ',' or '}' in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            self.enter()?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.error("expected ',' or ']' in array")),
                }
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.error("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escaped = self.peek().ok_or_else(|| self.error("bad escape"))?;
                        self.pos += 1;
                        match escaped {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let first = self.hex4()?;
                                let code = if (0xD800..0xDC00).contains(&first) {
                                    // Surrogate pair.
                                    self.expect(b'\\')?;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    first
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("invalid \\u escape"))?,
                                );
                            }
                            _ => return Err(self.error("unknown escape character")),
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.  The input came in as a
                        // &str and escapes/quotes are ASCII, so `pos` is
                        // always on a char boundary; decoding at most 4
                        // bytes keeps long strings O(n) overall.
                        let end = self.bytes.len().min(self.pos + 4);
                        let lead = &self.bytes[self.pos..end];
                        let len = Self::utf8_len(lead[0]);
                        let c = std::str::from_utf8(&lead[..len.min(lead.len())])
                            .ok()
                            .and_then(|s| s.chars().next())
                            .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        /// Byte length of the UTF-8 sequence starting with `lead` (1 for
        /// anything malformed; the from_utf8 check then rejects it).
        fn utf8_len(lead: u8) -> usize {
            match lead {
                0xC0..=0xDF => 2,
                0xE0..=0xEF => 3,
                0xF0..=0xF7 => 4,
                _ => 1,
            }
        }

        fn hex4(&mut self) -> Result<u32, ParseError> {
            let end = self.pos + 4;
            if end > self.bytes.len() {
                return Err(self.error("truncated \\u escape"));
            }
            // Exactly four hex digits — from_str_radix alone would also
            // accept a sign, which the JSON grammar does not.
            let mut code = 0u32;
            for &b in &self.bytes[self.pos..end] {
                let digit = (b as char)
                    .to_digit(16)
                    .ok_or_else(|| self.error("invalid \\u escape"))?;
                code = code * 16 + digit;
            }
            self.pos = end;
            Ok(code)
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            let text =
                std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ASCII");
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| self.error("invalid number"))
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, writer: &mut json::JsonWriter) {
                writer.unsigned(u128::from(*self));
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, u128);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, writer: &mut json::JsonWriter) {
                writer.signed(i128::from(*self));
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.unsigned(*self as u128);
    }
}

impl Serialize for isize {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.signed(*self as i128);
    }
}

impl Serialize for f32 {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.float(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.float(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.boolean(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        (**self).serialize(writer);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        match self {
            Some(value) => value.serialize(writer),
            None => writer.null(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        for item in self {
            item.serialize(writer);
        }
        writer.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        self.as_slice().serialize(writer);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        self.as_slice().serialize(writer);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        self.0.serialize(writer);
        self.1.serialize(writer);
        writer.end_array();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, writer: &mut json::JsonWriter) {
        writer.begin_array();
        self.0.serialize(writer);
        self.1.serialize(writer);
        self.2.serialize(writer);
        writer.end_array();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(json::to_string(&42u32), "42");
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("hi \"there\"\n"), r#""hi \"there\"\n""#);
    }

    #[test]
    fn containers_render() {
        assert_eq!(json::to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&[1u8, 2]), "[1,2]");
        assert_eq!(json::to_string(&Some(5u8)), "5");
        assert_eq!(json::to_string(&Option::<u8>::None), "null");
        assert_eq!(json::to_string(&(1u8, "x")), "[1,\"x\"]");
        assert_eq!(json::to_string(&(1u8, 2u8, 3u8)), "[1,2,3]");
    }

    #[test]
    fn writer_builds_objects() {
        let mut w = json::JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.unsigned(1);
        w.key("b");
        w.begin_array();
        w.string("x");
        w.string("y");
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":["x","y"]}"#);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json::to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn file_string_ends_with_newline() {
        assert_eq!(json::to_file_string(&1u8), "1\n");
    }

    #[test]
    fn parse_scalars() {
        use json::Value;
        assert_eq!(json::parse("null").unwrap(), Value::Null);
        assert_eq!(json::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(json::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(json::parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(json::parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            json::parse(r#""a\nbA\"""#).unwrap(),
            Value::String("a\nbA\"".to_string())
        );
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = json::parse(r#"{"runs":[{"mpps":2.5,"workers":4,"name":"rfc"}],"quick":false}"#)
            .unwrap();
        let runs = v.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("mpps").unwrap().as_f64(), Some(2.5));
        assert_eq!(runs[0].get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(runs[0].get("name").unwrap().as_str(), Some("rfc"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(runs[0].get("mpps").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = json::parse("[1, oops]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("JSON parse error"));
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep_ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(json::parse(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        let err = json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // A pathological unclosed prefix must error, not overflow the stack.
        assert!(json::parse(&"[".repeat(100_000)).is_err());
        assert!(json::parse(&"{\"a\":".repeat(50_000)).is_err());
    }

    #[test]
    fn parse_surrogate_pairs_and_unicode() {
        use json::Value;
        assert_eq!(
            json::parse(r#""😀""#).unwrap(),
            Value::String("\u{1F600}".to_string())
        );
        assert_eq!(
            json::parse("\"héllo\"").unwrap(),
            Value::String("héllo".to_string())
        );
        assert!(json::parse(r#""\ud83d""#).is_err());
        // The grammar requires exactly four hex digits — no signs.
        assert!(json::parse(r#""\u+0FF""#).is_err());
        assert!(json::parse(r#""\u00ZZ""#).is_err());
    }

    #[test]
    fn serializer_output_round_trips_through_parser() {
        let mut w = json::JsonWriter::new();
        w.begin_object();
        w.key("pkts");
        w.unsigned(20_000);
        w.key("mpps");
        w.float(17.56);
        w.key("per_worker");
        w.begin_array();
        w.begin_object();
        w.key("worker");
        w.unsigned(0);
        w.end_object();
        w.end_array();
        w.key("note");
        w.string("a \"quoted\"\nline");
        w.end_object();
        let text = w.finish();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("pkts").unwrap().as_u64(), Some(20_000));
        assert_eq!(v.get("mpps").unwrap().as_f64(), Some(17.56));
        assert_eq!(
            v.get("per_worker").unwrap().as_array().unwrap()[0]
                .get("worker")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        assert_eq!(v.get("note").unwrap().as_str(), Some("a \"quoted\"\nline"));
    }
}
