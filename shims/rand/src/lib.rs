//! Offline API-surface shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators — on top of xoshiro256++ seeded through
//! SplitMix64.  Sequences are deterministic per seed but are *not*
//! value-compatible with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64` (rand's `SeedableRng`
/// surface restricted to `seed_from_u64`, the only constructor used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods (rand's `Rng` surface restricted to what
/// the workspace uses).
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly over its full domain
    /// (`f64` samples uniformly in `[0, 1)`, as upstream's `Standard`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        f64::sample(self.next_u64()) < p
    }

    /// Samples uniformly from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) integer range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut || self.next_u64())
    }
}

/// Types that can be drawn uniformly from their full domain ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Maps 64 raw bits to a uniform value of `Self`.
    fn sample(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(bits: u64) -> f32 {
        ((bits >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range; `raw` yields raw 64-bit
    /// words from the generator.
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> T;
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy {
    /// Lossless widening to `u64` (shifting signed domains up).
    fn to_u64(self) -> u64;
    /// Inverse of [`UniformInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                (self as $u ^ <$t>::MIN as $u) as u64
            }
            fn from_u64(v: u64) -> $t {
                (v as $u ^ <$t>::MIN as $u) as $t
            }
        }
    )*};
}
impl_uniform_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

fn sample_below(width: u64, raw: &mut dyn FnMut() -> u64) -> u64 {
    // Rejection sampling over the largest multiple of `width`, so the
    // result is exactly uniform.  `width == 0` encodes "the full u64
    // domain" (only reachable from `lo..=u64::MAX`-style ranges).
    if width == 0 {
        return raw();
    }
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = raw();
        if v <= zone {
            return v % width;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + sample_below(hi - lo, raw))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range: empty range");
        // `wrapping_add` turns the full-domain width into the 0 sentinel
        // `sample_below` expects.
        T::from_u64(lo + sample_below((hi - lo).wrapping_add(1), raw))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(raw()) * (self.end - self.start)
    }
}

/// The xoshiro256++ core shared by both named generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the four state words through SplitMix64, as the xoshiro
    /// authors recommend.
    pub fn new(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Advances the state and returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generator types mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng, Xoshiro256};

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone, PartialEq, Eq)]
            pub struct $name(Xoshiro256);

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> $name {
                    $name(Xoshiro256::new(seed))
                }
            }

            impl Rng for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }
        };
    }

    define_rng!(
        /// Drop-in stand-in for `rand::rngs::StdRng`.
        StdRng
    );
    define_rng!(
        /// Drop-in stand-in for `rand::rngs::SmallRng`.
        SmallRng
    );
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u16..=u16::MAX);
            let _ = w; // full-domain inclusive range must not panic
            let x = r.gen_range(5usize..=5);
            assert_eq!(x, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_produces_all_widths() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u8 = r.gen();
        let _: u16 = r.gen();
        let _: u32 = r.gen();
        let _: u64 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn signed_ranges_work() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
        }
    }
}
