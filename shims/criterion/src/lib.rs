//! Offline mini benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `bench_with_input`, `Bencher::iter`, `Throughput`).
//!
//! Each benchmark runs a short calibration pass, then measures
//! `sample_size` samples of an iteration count sized to fill the configured
//! measurement time, and prints the mean wall-clock time per iteration
//! (plus element throughput when one is declared).  No statistics beyond
//! the mean, no plots, no baselines — enough to smoke-run the benches and
//! eyeball regressions offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration (`criterion::Criterion` stand-in).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets the calibration/warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(
            &id.to_string(),
            None,
            sample_size,
            measurement_time,
            warm_up_time,
            &mut f,
        );
    }
}

/// A named benchmark within a group, optionally parameterised
/// (`criterion::BenchmarkId` stand-in).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id with only a function name.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: parameter.to_string(),
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, rules, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    // Per-group override, as upstream: must not leak into later groups.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.throughput,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            &mut f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// per-benchmark, so this only ends the scope).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `iters` calls of `f` and records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_secs_f64() * 1e9 / self.iters as f64;
    }
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: run single iterations until the warm-up time elapses to
    // estimate the per-iteration cost.
    let calibration_start = Instant::now();
    let mut calibration_runs: u32 = 0;
    let mut bencher = Bencher {
        iters: 1,
        mean_ns: 0.0,
    };
    let mut estimate_ns = f64::INFINITY;
    while calibration_start.elapsed() < warm_up_time && calibration_runs < 1000 {
        f(&mut bencher);
        estimate_ns = estimate_ns.min(bencher.mean_ns.max(1.0));
        calibration_runs += 1;
    }

    // Measurement: `sample_size` samples, each sized to fill an equal share
    // of the measurement time.
    let per_sample_ns = measurement_time.as_secs_f64() * 1e9 / sample_size as f64;
    let iters = ((per_sample_ns / estimate_ns) as u64).clamp(1, 10_000_000);
    let mut total_ns = 0.0;
    for _ in 0..sample_size {
        let mut sample = Bencher {
            iters,
            mean_ns: 0.0,
        };
        f(&mut sample);
        total_ns += sample.mean_ns;
    }
    let mean_ns = total_ns / sample_size as f64;

    match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns * 1e-9);
            println!("{label:<50} {mean_ns:>14.1} ns/iter  ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            let rate = n as f64 / (mean_ns * 1e-9) / (1 << 20) as f64;
            println!("{label:<50} {mean_ns:>14.1} ns/iter  ({rate:.1} MiB/s)");
        }
        _ => println!("{label:<50} {mean_ns:>14.1} ns/iter"),
    }
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the shim
            // runs every group unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_measure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        let data: Vec<u64> = (0..100).collect();
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, data| {
            b.iter(|| data.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
