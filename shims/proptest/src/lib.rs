//! Offline mini property-testing shim, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! The `proptest!` macro runs each property over a fixed number of cases
//! (default 256, override with `#![proptest_config(...)]`).  Inputs are
//! drawn from deterministic per-test generators seeded from the test name,
//! so failures reproduce exactly.  There is no shrinking: a failing case
//! panics with the assertion message (the bound inputs are printed by the
//! case-wrapping panic hook below).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig` stand-in).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of deterministic cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32)))
    }

    /// Returns the next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Samples uniformly from an integer range, via the rand shim.
    pub fn sample_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of values of one type (`proptest::strategy::Strategy`
    /// stand-in, restricted to sampling).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.sample_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// `any::<T>()` and the full-domain strategy it returns.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Full-domain strategy returned by [`any`].
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Returns a strategy producing arbitrary values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `Option` strategies (`proptest::option` stand-in).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding `None` for 1 case in 4 (upstream's default
    /// weighting) and `Some` of the inner strategy otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `strategy` so it also produces `None`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Fixed-size array strategies (`proptest::array` stand-in).
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `[S::Value; 5]` built from one element strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform5<S>(S);

    /// Applies `strategy` independently to each of 5 array slots.
    pub fn uniform5<S: Strategy>(strategy: S) -> Uniform5<S> {
        Uniform5(strategy)
    }

    impl<S: Strategy> Strategy for Uniform5<S> {
        type Value = [S::Value; 5];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; 5] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics on failure, like an
/// unshrunk upstream failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test entry point.  Supports the upstream grammar subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop_name(x in 0u32..100, arr in array::uniform5(0u32..9), raw: u64) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expands each `fn` in a `proptest!` block. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                // One closure per case so `prop_assume!` can skip via
                // `return` without ending the whole property.
                let __run = |__rng: &mut $crate::TestRng| {
                    $crate::__proptest_bind! { __rng; $($params)* }
                    $body
                };
                __run(&mut __rng);
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: binds one `name in strategy` / `name: Type` parameter. Not
/// public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $n:ident in $s:expr) => {
        let $n = $crate::strategy::Strategy::sample(&($s), $rng);
    };
    ($rng:ident; $n:ident in $s:expr, $($rest:tt)*) => {
        let $n = $crate::strategy::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $n:ident : $t:ty) => {
        let $n: $t = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$t>(), $rng);
    };
    ($rng:ident; $n:ident : $t:ty, $($rest:tt)*) => {
        let $n: $t = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$t>(), $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..100, y in 1u16..=9) {
            prop_assert!(x < 100);
            prop_assert!((1..=9).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn arrays_and_typed_params(
            arr in crate::array::uniform5(0u32..7),
            raw: u64,
        ) {
            for v in arr {
                prop_assert!(v < 7);
            }
            let _ = raw;
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(
            crate::TestRng::for_case("t", 0).next_u64(),
            crate::TestRng::for_case("u", 0).next_u64()
        );
    }
}
