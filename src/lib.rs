//! # packet-classifier
//!
//! A full Rust reproduction of *"Energy Efficient Packet Classification
//! Hardware Accelerator"* (Kennedy, Wang & Liu, IEEE IPPS/IPDPS 2008).
//!
//! This facade crate re-exports the workspace crates so applications can use
//! a single dependency:
//!
//! * [`types`] — rules, rulesets, packets, traces ([`pclass_types`]).
//! * [`classbench`] — ClassBench-style synthetic ruleset/trace generation
//!   ([`pclass_classbench`]).
//! * [`algos`] — software baselines: linear search, original HiCuts,
//!   original HyperCuts, RFC ([`pclass_algos`]).
//! * [`core`] — the paper's contribution: hardware-oriented modified
//!   HiCuts/HyperCuts, the 4800-bit memory-word image and the cycle-accurate
//!   accelerator model ([`pclass_core`]).
//! * [`energy`] — SA-1100, ASIC, FPGA and TCAM/SRAM energy & power models
//!   ([`pclass_energy`]).
//! * [`tcam`] — functional TCAM baseline ([`pclass_tcam`]).
//! * [`engine`] — batched, multi-core serving layer over every classifier
//!   ([`pclass_engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use packet_classifier::prelude::*;
//!
//! // Generate an ACL-style ruleset and a matching packet trace.
//! let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(500);
//! let trace = TraceGenerator::new(&ruleset, 7).generate(1_000);
//!
//! // Build the hardware search structure with the modified HyperCuts
//! // algorithm and run the cycle-accurate accelerator model over the trace.
//! let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
//! let program = HardwareProgram::build(&ruleset, &config).unwrap();
//! let engine = Accelerator::new(&program);
//! let report = engine.classify_trace(&trace);
//!
//! // Every decision agrees with the reference linear search.
//! for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
//!     assert_eq!(*result, ruleset.classify_linear(&entry.header));
//! }
//! assert!(report.cycles >= trace.len() as u64);
//! ```

#![forbid(unsafe_code)]

pub use pclass_algos as algos;
pub use pclass_classbench as classbench;
pub use pclass_core as core;
pub use pclass_energy as energy;
pub use pclass_engine as engine;
pub use pclass_tcam as tcam;
pub use pclass_types as types;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use pclass_algos::flat::{FlatSettings, FlatTree, FlatTreeClassifier, LaneWidth};
    pub use pclass_algos::hicuts::HiCutsClassifier;
    pub use pclass_algos::hypercuts::HyperCutsClassifier;
    pub use pclass_algos::linear::LinearClassifier;
    pub use pclass_algos::rfc::RfcClassifier;
    pub use pclass_algos::Classifier;
    pub use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    pub use pclass_core::builder::{BuildConfig, CutAlgorithm, SpeedMode};
    pub use pclass_core::hw::{Accelerator, AcceleratorClassifier, ClassificationReport};
    pub use pclass_core::program::HardwareProgram;
    pub use pclass_energy::device::{DeviceModel, TechnologyNode};
    pub use pclass_energy::sa1100::Sa1100Model;
    pub use pclass_engine::{
        AdmissionError, Engine, EngineConfig, EngineRun, LiveClassifier, LiveEngine,
        SharedClassifier, TaggedPacket, TaggedTrace, TenantId, TenantReport, TenantRouter,
        TenantRun, TenantSpec, ThroughputReport, UnknownTenant, WorkerReport,
    };
    pub use pclass_tcam::TcamClassifier;
    pub use pclass_types::{
        Dimension, DimensionSpec, FairnessSummary, FieldRange, LatencyPercentiles, MatchResult,
        MemoryReport, PacketHeader, Prefix, Rule, RuleBuilder, RuleId, RuleSet, Trace,
    };
}
