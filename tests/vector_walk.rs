//! Property-based equivalence of the vectorised lane walk: at every
//! [`LaneWidth`] the batched flat-arena walk must classify packet-for-packet
//! like the scalar per-packet walk ([`LaneWidth::Scalar`] — the differential
//! oracle) — across random rulesets and builder configurations, batch sizes
//! that leave odd sub-lane tails, and post-churn arenas whose overflow
//! side-tables are live (dirty threshold = infinity, so spilled inserts are
//! never re-flattened away and the vector walk has to merge them itself).

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_algos::update::UpdatableClassifier;
use proptest::prelude::*;

/// Batch sizes the walk is exercised at: sub-lane (1, 3), straddling the
/// widest lane (7, 13, 21 leave odd tails at x4/x8/x16), and the full
/// trace in one batch.
const BATCHES: [usize; 6] = [1, 3, 7, 13, 21, usize::MAX];

/// The core property: every lane width agrees with the scalar walk over
/// `headers`, per batch size, including the empty batch.
fn assert_lanes_match_scalar(name: &str, flat: &FlatTree, headers: &[PacketHeader]) {
    let scalar: Vec<MatchResult> = headers.iter().map(|h| flat.classify(h, None)).collect();
    for lanes in LaneWidth::ALL {
        let mut empty = Vec::new();
        flat.classify_batch_lanes(&[], &mut empty, lanes);
        prop_assert!(empty.is_empty(), "{} {:?} empty batch", name, lanes);
        for batch in BATCHES {
            let batch = batch.min(headers.len().max(1));
            let mut out = Vec::new();
            for chunk in headers.chunks(batch) {
                flat.classify_batch_lanes(chunk, &mut out, lanes);
            }
            prop_assert_eq!(
                &out,
                &scalar,
                "{} {:?} batch {} disagrees with scalar walk",
                name,
                lanes,
                batch
            );
        }
    }
}

/// Deterministic update script (same derivation as `update_equivalence`):
/// `(is_insert, pick)` pairs resolved against the evolving live set.
fn script_from_seed(mut seed: u64, len: usize) -> Vec<(bool, u8)> {
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let word = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ops.push((word & 1 == 0, (word >> 8) as u8));
    }
    ops
}

/// Applies the script to a flat classifier: deletes pick a live id,
/// inserts pick from fresh rules and previously deleted ones.
fn apply_script(classifier: &mut FlatTreeClassifier, script: &[(bool, u8)], fresh_pool: &[Rule]) {
    let mut available: Vec<Rule> = fresh_pool.to_vec();
    for &(is_insert, pick) in script {
        if is_insert {
            if available.is_empty() {
                continue;
            }
            let rule = available.remove(pick as usize % available.len());
            classifier.insert(rule).expect("scripted insert is valid");
        } else {
            let live = classifier.live_rules();
            if live.is_empty() {
                continue;
            }
            let victim = live[pick as usize % live.len()];
            classifier
                .delete(victim.id)
                .expect("scripted delete is valid");
            available.push(victim);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_lane_width_matches_the_scalar_walk(
        seed in 0u64..1_000_000,
        rules in 1usize..140,
        packets in 0usize..260,
        binth in 1usize..24,
        spfac_tenths in 10u32..80,
        compaction in proptest::arbitrary::any::<bool>(),
        push_common in proptest::arbitrary::any::<bool>(),
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0x1A7E).generate(packets);
        let headers: Vec<PacketHeader> = trace.headers().copied().collect();
        let spfac = f64::from(spfac_tenths) / 10.0;
        let hicuts = HiCutsClassifier::build(&rs, &HiCutsConfig { binth, spfac });
        let hypercuts = HyperCutsClassifier::build(
            &rs,
            &HyperCutsConfig {
                binth,
                spfac,
                region_compaction: compaction,
                push_common_rules: push_common,
            },
        );
        assert_lanes_match_scalar("hicuts-flat", hicuts.flatten().flat_tree(), &headers);
        assert_lanes_match_scalar("hypercuts-flat", hypercuts.flatten().flat_tree(), &headers);
    }

    /// Post-churn arenas: random insert/delete scripts with the dirty
    /// threshold at infinity, so overflow side-tables stay live and the
    /// lane walk must consult them exactly like the scalar walk does.
    #[test]
    fn lane_walk_matches_scalar_on_post_churn_arenas_with_live_overflow(
        seed in 0u64..1_000_000,
        rules in 1usize..110,
        packets in 1usize..200,
        binth in 1usize..24,
        ops_seed in proptest::arbitrary::any::<u64>(),
        ops_len in 1usize..28,
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xC0DE).generate(packets);
        let headers: Vec<PacketHeader> = trace.headers().copied().collect();
        let script = script_from_seed(ops_seed, ops_len);
        // Fresh insert candidates at ids just past the base ruleset.
        let fresh_pool: Vec<Rule> = ClassBenchGenerator::new(SeedStyle::Acl, seed ^ 0xF00)
            .generate(14)
            .rules()
            .iter()
            .map(|r| Rule::new(rs.len() as u32 + r.id, r.ranges))
            .collect();
        let spfac = 2.0;
        for (name, build) in [
            (
                "hicuts-flat",
                Box::new(|| HiCutsClassifier::build(&rs, &HiCutsConfig { binth, spfac }).flatten())
                    as Box<dyn Fn() -> FlatTreeClassifier>,
            ),
            (
                "hypercuts-flat",
                Box::new(|| {
                    HyperCutsClassifier::build(
                        &rs,
                        &HyperCutsConfig {
                            binth,
                            spfac,
                            region_compaction: true,
                            push_common_rules: true,
                        },
                    )
                    .flatten()
                }),
            ),
        ] {
            // Infinity: dirtying inserts spill to overflow side-tables and
            // are never compacted back into the slab.
            let mut c = build().with_settings(FlatSettings {
                dirty_threshold: f64::INFINITY,
                ..FlatSettings::default()
            });
            apply_script(&mut c, &script, &fresh_pool);
            // The scalar oracle itself is checked against linear search
            // over the live set, so the chain is closed end to end.
            let live = c.live_rules();
            for h in &headers {
                let want = pclass_algos::update::classify_live_linear(&live, h);
                prop_assert_eq!(
                    c.flat_tree().classify(h, None),
                    want,
                    "{} scalar walk vs live linear",
                    name
                );
            }
            assert_lanes_match_scalar(name, c.flat_tree(), &headers);
        }
    }
}

/// Deterministic pin: a churn heavy enough to leave overflow entries live
/// (threshold = infinity) on the acl1 2 k workload, checked at every lane
/// width — the scenario the churn cells of the throughput harness serve.
#[test]
fn acl1_2000_churn_with_live_overflow_is_lane_exact() {
    let rs = pclass_bench::acl_ruleset(2_000);
    let trace = pclass_bench::trace_for(&rs, 2_000);
    let headers: Vec<PacketHeader> = trace.headers().copied().collect();
    let updates = pclass_bench::churn::churn_updates(&rs, 0.10);

    let mut c = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults())
        .flatten()
        .with_settings(FlatSettings {
            dirty_threshold: f64::INFINITY,
            ..FlatSettings::default()
        });
    for u in &updates {
        c.apply(u).expect("churn update applies");
    }
    assert!(
        c.update_stats().overflow_rules > 0,
        "churn at infinite dirty threshold must leave overflow entries live"
    );

    let scalar: Vec<MatchResult> = headers
        .iter()
        .map(|h| c.flat_tree().classify(h, None))
        .collect();
    for lanes in LaneWidth::ALL {
        let mut out = Vec::new();
        for chunk in headers.chunks(512) {
            c.flat_tree().classify_batch_lanes(chunk, &mut out, lanes);
        }
        assert_eq!(out, scalar, "{lanes:?} disagrees with scalar post-churn");
    }
}
