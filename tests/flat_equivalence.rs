//! Property-based equivalence of the flat-arena decision trees: for HiCuts
//! and HyperCuts, the flattened [`FlatTreeClassifier`] must classify every
//! packet exactly like the pointer tree it was built from — per packet and
//! through `classify_batch` at any batch size (including 0, 1 and odd
//! sizes that leave a partial tail) — across random rulesets and builder
//! configurations (`binth`, `spfac`, the HyperCuts heuristics).

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use proptest::prelude::*;

/// Builds both tree classifiers and their flat variants for one ruleset.
fn tree_pairs(
    rs: &RuleSet,
    binth: usize,
    spfac: f64,
    compaction: bool,
    push_common: bool,
) -> Vec<(Box<dyn Classifier>, FlatTreeClassifier)> {
    let hicuts = HiCutsClassifier::build(rs, &HiCutsConfig { binth, spfac });
    let hypercuts = HyperCutsClassifier::build(
        rs,
        &HyperCutsConfig {
            binth,
            spfac,
            region_compaction: compaction,
            push_common_rules: push_common,
        },
    );
    let hicuts_flat = hicuts.flatten();
    let hypercuts_flat = hypercuts.flatten();
    vec![
        (Box::new(hicuts) as Box<dyn Classifier>, hicuts_flat),
        (Box::new(hypercuts), hypercuts_flat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn flat_tree_is_packet_for_packet_identical(
        seed in 0u64..1_000_000,
        rules in 1usize..140,
        packets in 0usize..260,
        binth in 1usize..24,
        spfac_tenths in 10u32..80,
        compaction in proptest::arbitrary::any::<bool>(),
        push_common in proptest::arbitrary::any::<bool>(),
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xF1A7).generate(packets);
        let headers: Vec<PacketHeader> = trace.headers().copied().collect();
        let spfac = f64::from(spfac_tenths) / 10.0;
        for (tree, flat) in tree_pairs(&rs, binth, spfac, compaction, push_common) {
            // Per-packet equivalence against the pointer tree.
            let expected: Vec<MatchResult> =
                headers.iter().map(|h| tree.classify(h)).collect();
            let per_packet: Vec<MatchResult> =
                headers.iter().map(|h| flat.classify(h)).collect();
            prop_assert_eq!(&per_packet, &expected, "{} per-packet", flat.name());

            // Batched equivalence at 0 / 1 / odd / full batch sizes.
            for batch in [0usize, 1, 3, 7, headers.len().max(1)] {
                let mut out = Vec::new();
                if batch == 0 {
                    flat.classify_batch(&[], &mut out);
                    prop_assert!(out.is_empty());
                    continue;
                }
                for chunk in headers.chunks(batch) {
                    flat.classify_batch(chunk, &mut out);
                }
                prop_assert_eq!(&out, &expected, "{} batch {}", flat.name(), batch);
            }
        }
    }
}

#[test]
fn flat_tree_matches_linear_search_on_mixed_styles() {
    for (style, seed) in [
        (SeedStyle::Acl, 11u64),
        (SeedStyle::Fw, 12),
        (SeedStyle::Ipc, 13),
    ] {
        let rs = ClassBenchGenerator::new(style, seed).generate(120);
        let trace = TraceGenerator::new(&rs, seed ^ 0xCAFE).generate(400);
        let truth = trace.ground_truth(&rs);
        for (_, flat) in tree_pairs(&rs, 16, 4.0, true, true) {
            let headers: Vec<PacketHeader> = trace.headers().copied().collect();
            let mut out = Vec::new();
            flat.classify_batch(&headers, &mut out);
            assert_eq!(out, truth, "{} vs linear on {style:?}", flat.name());
        }
    }
}

#[test]
fn flat_tree_survives_degenerate_rulesets() {
    // A single rule and a ruleset that collapses to one leaf.
    let rs = ClassBenchGenerator::new(SeedStyle::Acl, 5).generate(1);
    for (tree, flat) in tree_pairs(&rs, 16, 4.0, true, true) {
        let pkt = PacketHeader::five_tuple(0x0A000001, 0xC0A80101, 1234, 80, 6);
        assert_eq!(flat.classify(&pkt), tree.classify(&pkt));
        assert!(flat.flat_tree().node_count() >= 1);
        assert!(flat.arena_stats().total_bytes > 0);
    }
}
