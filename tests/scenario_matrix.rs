//! Property-based coverage of the two new workload axes of the scenario
//! matrix (see `pclass_bench::scenario`):
//!
//! * **Zipf-skewed traces** are seed-deterministic and *header-valid* —
//!   every directed packet actually matches the rule it was sampled from,
//!   across random rulesets, seed styles, sizes and exponents — so a
//!   skew cell can never quietly serve malformed traffic;
//! * **sustained-stream churn** ends packet-for-packet equal to a
//!   from-scratch rebuild of the surviving ruleset (and linear search over
//!   it), mirroring `tests/update_equivalence.rs` for the progress-paced
//!   continuous update path through `EngineConfig::progress`.

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_bench::churn::{self, ChurnConfig, ChurnProfile, Pacing};
use pclass_bench::scenario::{self, TraceProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn zipf_traces_are_seed_deterministic_and_header_valid(
        seed in 0u64..1_000_000,
        rules in 1usize..400,
        packets in 1usize..400,
        exponent_tenths in 5u32..25,
        style_pick in 0u8..3,
    ) {
        let style = [SeedStyle::Acl, SeedStyle::Fw, SeedStyle::Ipc][style_pick as usize];
        let rs = ClassBenchGenerator::new(style, seed).generate(rules);
        let exponent = f64::from(exponent_tenths) / 10.0;
        let make = || {
            TraceGenerator::new(&rs, seed ^ 0xBEEF)
                .zipf(exponent)
                .generate(packets)
        };
        // Seed-determinism: the same seed reproduces the trace bit for bit.
        let trace = make();
        prop_assert_eq!(&trace, &make());
        prop_assert_eq!(trace.len(), packets);
        // Header validity: every generated packet matches at least the rule
        // it was sampled from (background packets carry no intended rule).
        for entry in trace.entries() {
            if let Some(rid) = entry.intended_rule {
                let rule = rs.rule(rid).expect("intended rule exists");
                prop_assert!(
                    rule.matches(&entry.header),
                    "Zipf packet {} escaped its source rule {} ({:?} {} rules, α={})",
                    entry.header, rid, style, rules, exponent
                );
            }
        }
        // A different seed produces a different trace (on any workload big
        // enough that a collision would be a bug, not chance).
        if rules > 2 && packets > 16 {
            let other = TraceGenerator::new(&rs, seed ^ 0xBEEF ^ 1)
                .zipf(exponent)
                .generate(packets);
            prop_assert!(trace != other, "different seeds produced identical traces");
        }
    }

    #[test]
    fn sustained_churn_ends_packet_for_packet_equal_to_a_rebuild(
        seed in 0u64..1_000_000,
        rules in 4usize..150,
        packets in 16usize..300,
        binth in 2usize..24,
        passes_tenths in 10u32..60,
        flat in proptest::arbitrary::any::<bool>(),
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xFADE).generate(packets);
        let updates = ChurnProfile::Sustained.stream(&rs);
        let config = ChurnConfig {
            workers: 2,
            batch: 32,
            burst_ops: 1,
            pacing: Pacing::Sustained {
                passes: f64::from(passes_tenths) / 10.0,
            },
        };
        let hc = HiCutsConfig { binth, spfac: 4.0 };
        // `run_churn` serves the trace continuously while the stream lands
        // one update at a time, paced against served packets, then compares
        // the final snapshot packet-for-packet against BOTH linear search
        // over the survivors AND a from-scratch rebuild (mapped through the
        // id map) — `verified` is that verdict.
        let m = if flat {
            let build = |rs: &RuleSet| HiCutsClassifier::build(rs, &hc).flatten();
            churn::run_churn(build(&rs), build, &trace, &updates, &config)
        } else {
            let build = |rs: &RuleSet| HiCutsClassifier::build(rs, &hc);
            churn::run_churn(build(&rs), build, &trace, &updates, &config)
        }
        .expect("sustained stream applies cleanly");
        prop_assert!(m.verified, "post-sustained-churn snapshot diverged from rebuild");
        prop_assert_eq!(m.updates, updates.len() as u64);
        prop_assert_eq!(m.bursts, updates.len() as u64, "sustained = one update per burst");
    }
}

/// The acceptance scenario pinned as a deterministic test: the quick
/// matrix's sustained cell shape (acl1 at 2 k rules, 2 % stream, one
/// update per burst paced over four passes) verifies on the flat arena and
/// covers several serving passes while the stream lands.
#[test]
fn sustained_cell_on_acl1_2000_verifies_and_spans_the_window() {
    let rs = pclass_bench::acl_ruleset(2_000);
    let trace = TraceProfile::Uniform.trace(&rs, 2_000);
    let updates = ChurnProfile::Sustained.stream(&rs);
    assert_eq!(updates.len(), 80, "2% of 2000, delete+insert pairs");
    let config = ChurnProfile::Sustained.config();
    assert_eq!(config.pacing, Pacing::Sustained { passes: 4.0 });

    let build =
        |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
    let m = churn::run_churn(build(&rs), build, &trace, &updates, &config)
        .expect("sustained stream applies");
    assert!(m.verified, "post-churn mismatch");
    assert_eq!(m.bursts, 80);
    assert!(
        m.packets_served >= 2 * trace.len() as u64,
        "a sustained stream must span multiple serving passes, served {}",
        m.packets_served
    );
}

/// Zipf cells serve correctly end to end: every classifier of the roster
/// agrees with linear-search ground truth on a Zipf-skewed trace (the same
/// packet-for-packet gate the `throughput` bin applies per cell).
#[test]
fn zipf_cell_serves_every_classifier_packet_for_packet() {
    let rs = pclass_bench::acl_ruleset(300);
    let trace = TraceProfile::Zipf.trace(&rs, 1_200);
    let truth = trace.ground_truth(&rs);
    let roster = pclass_bench::serving_roster(&rs);
    assert!(roster.skipped.is_empty(), "{:?}", roster.skipped);
    for (name, classifier) in roster.classifiers {
        for workers in [1usize, 4] {
            let engine = EngineConfig::new()
                .workers(workers)
                .engine(std::sync::Arc::clone(&classifier));
            let run = engine.classify_trace(&trace);
            assert_eq!(run.results, truth, "{name} x{workers} on zipf trace");
        }
    }
}

/// Deep-churn and delete-heavy cells mirror `update_equivalence`: applying
/// the profile streams directly (no serving loop) leaves every updatable
/// classifier packet-for-packet equal to a rebuild of the survivors.
#[test]
fn deep_and_delete_heavy_streams_match_rebuild_on_every_updatable() {
    use pclass_algos::update::{
        classify_live_linear, map_result, renumbered_ruleset, UpdatableClassifier,
    };
    let rs = pclass_bench::acl_ruleset(400);
    let trace = pclass_bench::trace_for(&rs, 800);
    let headers: Vec<PacketHeader> = trace.headers().copied().collect();
    for profile in [ChurnProfile::Deep10, ChurnProfile::DeleteHeavy] {
        let updates = profile.stream(&rs);
        fn check<C: UpdatableClassifier>(
            rs: &RuleSet,
            updates: &[pclass_algos::update::RuleUpdate],
            headers: &[PacketHeader],
            build: impl Fn(&RuleSet) -> C,
            tag: &str,
        ) {
            let mut c = build(rs);
            for u in updates {
                c.apply(u).expect("profile stream applies");
            }
            let live = c.live_rules();
            let (rebuilt_set, id_map) =
                renumbered_ruleset("rebuilt", UpdatableClassifier::spec(&c), &live);
            let fresh = build(&rebuilt_set);
            for pkt in headers {
                let got = c.classify(pkt);
                assert_eq!(got, classify_live_linear(&live, pkt), "{tag} vs linear");
                assert_eq!(
                    got,
                    map_result(fresh.classify(pkt), &id_map),
                    "{tag} vs rebuild"
                );
            }
        }
        let tag = profile.tag();
        check(
            &rs,
            &updates,
            &headers,
            |rs| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()),
            tag,
        );
        check(
            &rs,
            &updates,
            &headers,
            |rs| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten(),
            tag,
        );
        check(
            &rs,
            &updates,
            &headers,
            |rs| HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults()),
            tag,
        );
        check(
            &rs,
            &updates,
            &headers,
            |rs| HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults()).flatten(),
            tag,
        );
    }
    // Delete-heavy genuinely drains: fewer live rules than the base set.
    let mut c = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
    for u in ChurnProfile::DeleteHeavy.stream(&rs) {
        c.apply(&u).expect("drain applies");
    }
    assert!(
        c.live_rules().len() < rs.len(),
        "delete-heavy must shrink the live set ({} vs {})",
        c.live_rules().len(),
        rs.len()
    );
}

/// The scenario matrix is the single source of truth for both sweep
/// modes: the quick subset relation and the promised CI envelope are also
/// asserted here at the workspace level (unit tests in `scenario` cover
/// the details).
#[test]
fn quick_matrix_is_a_tagged_subset_with_the_promised_cells() {
    let full = scenario::scenarios(false);
    let quick = scenario::scenarios(true);
    for s in &quick {
        assert!(full.contains(s), "quick cell {s:?} not in full matrix");
    }
    assert!(quick.iter().any(|s| s.rules == 64_000));
    assert!(quick.iter().any(|s| s.trace == TraceProfile::Zipf));
    for profile in ChurnProfile::ALL {
        assert!(
            quick.iter().any(|s| s.churn == Some(profile)),
            "quick matrix must gate churn profile {}",
            profile.tag()
        );
    }
}
