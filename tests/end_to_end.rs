//! End-to-end integration tests across all crates: generators → software
//! baselines → hardware program → cycle-accurate accelerator → energy
//! models, all validated against the reference linear search.

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_energy::AcceleratorEnergyModel;
use pclass_tcam::TcamClassifier;

fn workload(style: SeedStyle, rules: usize, packets: usize, seed: u64) -> (RuleSet, Trace) {
    let rs = ClassBenchGenerator::new(style, seed).generate(rules);
    let trace = TraceGenerator::new(&rs, seed ^ 0xABCD).generate(packets);
    (rs, trace)
}

#[test]
fn every_engine_agrees_on_every_style() {
    for (i, style) in SeedStyle::ALL.into_iter().enumerate() {
        let (rs, trace) = workload(style, 350, 800, 100 + i as u64);

        let linear = LinearClassifier::new(rs.clone());
        let hicuts = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
        let hypercuts = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
        let rfc = RfcClassifier::build(&rs).expect("RFC fits its memory budget");
        let tcam = TcamClassifier::program(&rs).expect("rules are prefix-expressible");
        let hw_hicuts = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
            4096,
        )
        .unwrap();
        let hw_hypercuts = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
            4096,
        )
        .unwrap();
        let engine_hi = Accelerator::new(&hw_hicuts);
        let engine_hyper = Accelerator::new(&hw_hypercuts);

        for entry in trace.entries() {
            let expected = rs.classify_linear(&entry.header);
            assert_eq!(linear.classify(&entry.header), expected);
            assert_eq!(hicuts.classify(&entry.header), expected, "{style} hicuts");
            assert_eq!(
                hypercuts.classify(&entry.header),
                expected,
                "{style} hypercuts"
            );
            assert_eq!(rfc.classify(&entry.header), expected, "{style} rfc");
            assert_eq!(tcam.classify(&entry.header), expected, "{style} tcam");
            assert_eq!(
                engine_hi.classify_packet(&entry.header).0,
                expected,
                "{style} hw hicuts"
            );
            assert_eq!(
                engine_hyper.classify_packet(&entry.header).0,
                expected,
                "{style} hw hypercuts"
            );
        }
    }
}

#[test]
fn facade_prelude_covers_the_whole_pipeline() {
    // The doc-example flow, in test form.
    let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(500);
    let trace = TraceGenerator::new(&ruleset, 7).generate(1_000);
    let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
    let program = HardwareProgram::build(&ruleset, &config).unwrap();
    let engine = Accelerator::new(&program);
    let report = engine.classify_trace(&trace);
    assert_eq!(report.packets(), 1_000);
    for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
        assert_eq!(*result, ruleset.classify_linear(&entry.header));
    }
    assert!(report.cycles >= trace.len() as u64);

    // Energy models accept the report directly.
    let asic = AcceleratorEnergyModel::asic();
    assert!(asic.energy_per_packet_j(&report) > 0.0);
    assert!(asic.packets_per_second(&report) > 1e6);
}

#[test]
fn hardware_beats_software_on_throughput_and_energy() {
    // The qualitative headline of the paper (§5.2/§5.3): the accelerator is
    // orders of magnitude faster and more energy-efficient than software on
    // the SA-1100.
    let (rs, trace) = workload(SeedStyle::Acl, 1_000, 4_000, 55);

    // Software HiCuts on the SA-1100 model.
    let sw = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
    let sa1100 = Sa1100Model::new();
    let mut total = pclass_algos::LookupStats::new();
    for entry in trace.entries() {
        sw.classify_with_stats(&entry.header, &mut total);
    }
    let avg = pclass_algos::OpCounters {
        loads: total.ops.loads / trace.len() as u64,
        stores: total.ops.stores / trace.len() as u64,
        alu: total.ops.alu / trace.len() as u64,
        branches: total.ops.branches / trace.len() as u64,
        muls: total.ops.muls / trace.len() as u64,
        divs: total.ops.divs / trace.len() as u64,
    };
    let sw_pps = sa1100.packets_per_second(&avg);
    let sw_energy = sa1100.normalized_energy_j(&avg);

    // Hardware accelerator (ASIC target).
    let program =
        HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts)).unwrap();
    let report = Accelerator::new(&program).classify_trace(&trace);
    let asic = AcceleratorEnergyModel::asic();
    let hw_pps = asic.packets_per_second(&report);
    let hw_energy = asic.energy_per_packet_j(&report);

    assert!(
        hw_pps > 100.0 * sw_pps,
        "expected >100x throughput gain, got sw {sw_pps:.0} vs hw {hw_pps:.0}"
    );
    assert!(
        sw_energy > 100.0 * hw_energy,
        "expected >100x energy saving, got sw {sw_energy:.3e} vs hw {hw_energy:.3e}"
    );
    // And the ASIC sustains more than OC-192 on this ruleset.
    assert!(asic.guaranteed_packets_per_second(program.worst_case_cycles()) > 31.25e6);
}

#[test]
fn modified_builders_use_less_build_energy_than_originals() {
    // Table 3's qualitative claim, checked through the shared energy model.
    let rs = ClassBenchGenerator::new(SeedStyle::Acl, 77).generate(1_500);
    let sa1100 = Sa1100Model::new();

    let sw = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
    let hw =
        HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts)).unwrap();
    let sw_energy = sa1100.build_energy_j(sw.build_stats());
    let hw_energy = sa1100.build_energy_j(hw.build_stats());
    assert!(
        sw_energy > hw_energy,
        "modified HiCuts should build cheaper: sw {sw_energy:.3e} vs modified {hw_energy:.3e}"
    );
}

#[test]
fn speed_parameter_trades_memory_for_cycles_end_to_end() {
    let (rs, trace) = workload(SeedStyle::Acl, 3_000, 2_000, 9);
    let mut mem_cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
    mem_cfg.speed = SpeedMode::MemoryEfficient;
    let fast_cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);

    let memory = HardwareProgram::build_with_capacity(&rs, &mem_cfg, 4096).unwrap();
    let fast = HardwareProgram::build_with_capacity(&rs, &fast_cfg, 4096).unwrap();

    assert!(memory.memory_bytes() <= fast.memory_bytes());
    assert!(fast.worst_case_cycles() <= memory.worst_case_cycles());

    // Both programs classify identically.
    let rep_mem = Accelerator::new(&memory).classify_trace(&trace);
    let rep_fast = Accelerator::new(&fast).classify_trace(&trace);
    assert_eq!(rep_mem.results, rep_fast.results);
    // And the fast program never needs more cycles for any packet.
    assert!(rep_fast.cycles <= rep_mem.cycles);
}

#[test]
fn tcam_storage_efficiency_sits_in_the_papers_band() {
    // §1 quotes 16–53 % storage efficiency for real databases; the
    // port-range-bearing styles should land in (or below) that band while a
    // purely exact-match set would be near 100 %.
    let mut efficiencies = Vec::new();
    for style in SeedStyle::ALL {
        let rs = ClassBenchGenerator::new(style, 31).generate(1_000);
        let tcam = TcamClassifier::program(&rs).unwrap();
        efficiencies.push(tcam.stats().storage_efficiency);
    }
    for eff in &efficiencies {
        assert!(
            *eff > 0.05 && *eff < 0.95,
            "efficiency {eff} out of plausible range"
        );
    }
    // At least one style should be well below 60 % (heavy range usage).
    assert!(efficiencies.iter().any(|&e| e < 0.6));
}

#[test]
fn worst_case_cycles_scale_like_table4() {
    // Table 4: ACL-style sets stay at a handful of cycles even as the
    // ruleset grows by an order of magnitude, and FW-style sets need more
    // memory than ACL sets of the same size.
    let acl_small = HardwareProgram::build_with_capacity(
        &ClassBenchGenerator::new(SeedStyle::Acl, 3).generate(300),
        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
        4096,
    )
    .unwrap();
    let acl_large = HardwareProgram::build_with_capacity(
        &ClassBenchGenerator::new(SeedStyle::Acl, 3).generate(5_000),
        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
        4096,
    )
    .unwrap();
    assert!(acl_small.worst_case_cycles() <= 4);
    assert!(acl_large.worst_case_cycles() <= 8);
    assert!(acl_large.memory_bytes() > acl_small.memory_bytes());

    let fw = HardwareProgram::build_with_capacity(
        &ClassBenchGenerator::new(SeedStyle::Fw, 3).generate(5_000),
        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
        4096,
    );
    match fw {
        Ok(p) => assert!(p.memory_bytes() > acl_large.memory_bytes()),
        // FW-style sets legitimately exceed even the 4096-word budget at
        // this size; that is itself the Table 4 trend (fw1 ≫ acl1).
        Err(e) => assert!(
            matches!(e, pclass_core::builder::BuildError::CapacityExceeded { .. }),
            "{e}"
        ),
    }
}
