//! Lifecycle and policy properties of the tenant API: runtime
//! admission/eviction behind [`TenantRouter::admit`] / `evict`, the
//! generation-tagged handle semantics, and cache-slice recycling across
//! eviction generations.
//!
//! Three behaviours are pinned down:
//!
//! * **Evict + admit mid-trace** — evicting one tenant and admitting a
//!   replacement leaves every surviving tenant's decisions bit-identical
//!   to its solo run, while the readmitted tenant serves exactly what
//!   linear search over its freshly admitted rules decides.
//! * **Retired handles are unroutable** — traffic tagged with an evicted
//!   handle is decided `NoMatch` (and counted), even after the slot has
//!   been reoccupied under a fresh epoch: a stale handle can never read
//!   the next occupant's rules.
//! * **No stale cache hits across generations** — a recycled hot-cache
//!   slice serves the new occupant's decisions for the *same* flow keys
//!   the previous occupant warmed it with; entries filled under an
//!   earlier epoch are unreachable.

use packet_classifier::prelude::*;
use pclass_algos::update::classify_live_linear;
use pclass_algos::HotCacheConfig;
use proptest::prelude::*;

/// Distinct per-tenant workloads (ruleset seeds differ per tenant, so
/// cross-tenant leakage cannot hide behind equal rulesets).
fn tenant_workloads(seed: u64, tenants: usize, packets: usize) -> Vec<(RuleSet, Trace)> {
    (0..tenants)
        .map(|t| {
            let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed ^ (0x7E57 + t as u64))
                .generate(40 + 20 * t);
            let trace =
                TraceGenerator::new(&rs, seed ^ (0xBEEF + t as u64)).generate(packets.max(1));
            (rs, trace)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A mid-trace evict + admit cycle: survivors stay bit-identical to
    /// their solo runs, the retired handle's traffic is unroutable both
    /// while the slot is empty and after it is reoccupied, and the
    /// readmitted tenant verifies against linear search over its freshly
    /// admitted rules.
    #[test]
    fn evict_admit_cycle_preserves_survivors_and_verifies_the_readmission(
        seed in 0u64..1_000_000,
        tenants in 2usize..5,
        packets in 1usize..100,
        workers in 1usize..4,
        fresh_rules in 10usize..60,
    ) {
        let workloads = tenant_workloads(seed, tenants, packets);
        let router = EngineConfig::new()
            .workers(workers)
            .batch_size(32)
            .tenant_router(workloads.iter().enumerate().map(|(t, (rs, _))| {
                (TenantSpec::new(format!("t{t}")), LinearClassifier::new(rs.clone()))
            }));
        let ids = router.tenant_ids();
        let victim = *ids.last().expect("at least two tenants");
        let victim_pkts = workloads.last().expect("at least two tenants").1.len() as u64;

        let parts: Vec<(TenantId, &Trace)> = ids
            .iter()
            .zip(&workloads)
            .map(|(&id, (_, trace))| (id, trace))
            .collect();
        let tagged = TaggedTrace::interleave("mixed", &parts);
        let before = router.classify_tagged(&tagged);
        prop_assert_eq!(before.unroutable, 0);

        // Slot empty: the victim's traffic is unroutable, survivors serve on.
        router.evict(victim).expect("evicting a live tenant");
        let during = router.classify_tagged(&tagged);
        prop_assert_eq!(during.unroutable, victim_pkts);
        prop_assert!(tagged
            .tenant_results(victim, &during.results)
            .iter()
            .all(|&r| r == MatchResult::NoMatch));

        // Slot reoccupied under a fresh epoch: the retired handle stays
        // unroutable — it can never read the new occupant's rules.
        let fresh_rs = ClassBenchGenerator::new(SeedStyle::Acl, seed ^ 0xD00D)
            .generate(fresh_rules);
        let readmitted = router
            .admit(
                TenantSpec::new("readmitted"),
                LinearClassifier::new(fresh_rs.clone()),
            )
            .expect("readmission within budget");
        prop_assert_eq!(readmitted.slot(), victim.slot());
        prop_assert!(readmitted != victim);
        prop_assert_eq!(router.admission_counts(), (tenants as u64 + 1, 1));

        let after = router.classify_tagged(&tagged);
        prop_assert_eq!(after.unroutable, victim_pkts);
        prop_assert!(tagged
            .tenant_results(victim, &after.results)
            .iter()
            .all(|&r| r == MatchResult::NoMatch));

        // Survivors: bit-identical through the whole cycle, and equal to
        // their solo runs.
        for (&id, (_, trace)) in ids[..tenants - 1].iter().zip(&workloads) {
            let original = tagged.tenant_results(id, &before.results);
            prop_assert_eq!(&tagged.tenant_results(id, &during.results), &original);
            prop_assert_eq!(&tagged.tenant_results(id, &after.results), &original);
            prop_assert_eq!(&router.classify_solo(id, trace).results, &original);
        }

        // The readmitted tenant serves exactly linear search over its
        // freshly admitted rules — through the router and solo.
        let fresh_trace =
            TraceGenerator::new(&fresh_rs, seed ^ 0xF00D).generate(packets.max(1));
        let fresh_tagged = TaggedTrace::interleave("fresh", &[(readmitted, &fresh_trace)]);
        let via_router = router.classify_tagged(&fresh_tagged);
        prop_assert_eq!(via_router.unroutable, 0);
        let solo = router.classify_solo(readmitted, &fresh_trace);
        for ((header, &routed), &soloed) in fresh_trace
            .headers()
            .zip(&via_router.results)
            .zip(&solo.results)
        {
            let expected = classify_live_linear(fresh_rs.rules(), header);
            prop_assert_eq!(routed, expected);
            prop_assert_eq!(soloed, expected);
        }
    }
}

/// The stale-cache-hit negative test: occupant A warms its hot-cache
/// slice, is evicted, and occupant B — admitted into the same slot,
/// recycling the same slice — serves the *same flow keys*.  Every
/// decision must come from B's rules; a single entry surviving A's epoch
/// would surface as A's rule id here.
#[test]
fn recycled_cache_slices_cannot_serve_stale_hits_across_generations() {
    let rs_a = ClassBenchGenerator::new(SeedStyle::Acl, 20080414).generate(80);
    let rs_keep = ClassBenchGenerator::new(SeedStyle::Ipc, 20080415).generate(50);
    // Same trace (same flow keys) served to both occupants of the slot;
    // a different ruleset style, so A's and B's decisions disagree on
    // many of those flows.
    let trace = TraceGenerator::new(&rs_a, 7).generate(400);
    let rs_b = ClassBenchGenerator::new(SeedStyle::Fw, 20080416).generate(60);

    let router = EngineConfig::new()
        .workers(2)
        .hot_cache(HotCacheConfig::new(1024, 4))
        .tenant_router([
            (TenantSpec::new("a"), LinearClassifier::new(rs_a.clone())),
            (
                TenantSpec::new("keep"),
                LinearClassifier::new(rs_keep.clone()),
            ),
        ]);
    let ids = router.tenant_ids();

    // Warm A's slice: a cold pass fills it, the warm pass hits it.
    let tagged_a = TaggedTrace::interleave("a", &[(ids[0], &trace)]);
    let cold = router.classify_tagged(&tagged_a);
    assert_eq!(cold.results, trace.ground_truth(&rs_a));
    let warm = router.classify_tagged(&tagged_a);
    assert_eq!(warm.results, trace.ground_truth(&rs_a));
    let warmed = router.cache_stats(ids[0]).expect("cached router");
    assert!(
        warmed.hits > 0,
        "warm pass must actually exercise the cache"
    );

    // Evict A, admit B into the recycled slice, offer the same flows.
    router.evict(ids[0]).expect("evicting occupant A");
    let b = router
        .admit(TenantSpec::new("b"), LinearClassifier::new(rs_b.clone()))
        .expect("admission within budget");
    assert_eq!(b.slot(), ids[0].slot(), "B reoccupies A's slot");

    let tagged_b = TaggedTrace::interleave("b", &[(b, &trace)]);
    let truth_b = trace.ground_truth(&rs_b);
    // Both the cold pass (fills under B's generation tag) and the warm
    // pass (answers from the cache) must decide from B's rules only.
    assert_eq!(
        router.classify_tagged(&tagged_b).results,
        truth_b,
        "a recycled slice served an entry filled under the previous occupant"
    );
    assert_eq!(
        router.classify_tagged(&tagged_b).results,
        truth_b,
        "a warm recycled slice served a stale hit"
    );

    // The bystander keeps serving its own rules through the whole cycle.
    let keep_trace = TraceGenerator::new(&rs_keep, 9).generate(200);
    assert_eq!(
        router.classify_solo(ids[1], &keep_trace).results,
        keep_trace.ground_truth(&rs_keep)
    );
}
