//! Property-based equivalence of rebuild-free incremental updates: after
//! *any* random insert/delete sequence, an updatable classifier (HiCuts /
//! HyperCuts pointer trees and their flat arenas) must classify every
//! packet exactly like
//!
//! * linear search over the surviving rules, and
//! * a **from-scratch rebuild** of the surviving ruleset (renumbered, with
//!   decisions mapped back through the id map),
//!
//! per packet and through `classify_batch` at batch sizes 0 / 1 / odd /
//! full — across random rulesets, builder configurations (`binth`,
//! `spfac`, the HyperCuts heuristics) and flat-arena dirty-ratio
//! thresholds (0.0 forces a re-flatten after every dirtying update,
//! infinity lets overflow accumulate forever).

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_algos::update::{
    classify_live_linear, map_result, renumbered_ruleset, UpdatableClassifier,
};
use proptest::prelude::*;

/// A scripted update stream: `(is_insert, pick)` pairs resolved against
/// the evolving live set, so any random script is valid by construction.
#[derive(Debug, Clone)]
struct Script {
    ops: Vec<(bool, u8)>,
}

impl Script {
    /// Expands a seed into a deterministic op script (the proptest shim
    /// has no collection strategies, so the script is derived, not drawn).
    fn from_seed(mut seed: u64, len: usize) -> Script {
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            // xorshift64* keeps the script spread across both op kinds.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let word = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ops.push((word & 1 == 0, (word >> 8) as u8));
        }
        Script { ops }
    }
}

/// Applies the script: deletes pick a live id, inserts pick from the pool
/// of fresh rules and previously deleted rules.  Returns the number of
/// operations actually applied.
fn apply_script<C: UpdatableClassifier>(
    classifier: &mut C,
    script: &Script,
    fresh_pool: &[Rule],
) -> usize {
    let mut available: Vec<Rule> = fresh_pool.to_vec();
    let mut applied = 0;
    for &(is_insert, pick) in &script.ops {
        if is_insert {
            if available.is_empty() {
                continue;
            }
            let rule = available.remove(pick as usize % available.len());
            classifier.insert(rule).expect("scripted insert is valid");
        } else {
            let live = classifier.live_rules();
            if live.is_empty() {
                continue;
            }
            let victim = live[pick as usize % live.len()];
            classifier
                .delete(victim.id)
                .expect("scripted delete is valid");
            available.push(victim); // deleted ids may be re-inserted later
        }
        applied += 1;
    }
    applied
}

/// The core property: post-script decisions equal linear search over the
/// live set and a from-scratch rebuild of it, per packet and batched.
fn assert_equivalent<C: UpdatableClassifier>(
    classifier: &C,
    rebuild: impl Fn(&RuleSet) -> C,
    headers: &[PacketHeader],
) {
    let live = classifier.live_rules();
    let expected: Vec<MatchResult> = headers
        .iter()
        .map(|h| classify_live_linear(&live, h))
        .collect();

    // Per-packet against linear search over the live rules.
    for (pkt, want) in headers.iter().zip(&expected) {
        prop_assert_eq!(
            classifier.classify(pkt),
            *want,
            "{} per-packet vs live linear",
            classifier.name()
        );
    }

    // Batched at 0 / 1 / odd / full batch sizes.
    for batch in [0usize, 1, 3, 7, headers.len().max(1)] {
        let mut out = Vec::new();
        if batch == 0 {
            classifier.classify_batch(&[], &mut out);
            prop_assert!(out.is_empty());
            continue;
        }
        for chunk in headers.chunks(batch) {
            classifier.classify_batch(chunk, &mut out);
        }
        prop_assert_eq!(&out, &expected, "{} batch {}", classifier.name(), batch);
    }

    // Against a from-scratch rebuild of the surviving ruleset.
    let (rebuilt_set, id_map) =
        renumbered_ruleset("rebuilt", UpdatableClassifier::spec(classifier), &live);
    let fresh = rebuild(&rebuilt_set);
    for (pkt, want) in headers.iter().zip(&expected) {
        prop_assert_eq!(
            map_result(fresh.classify(pkt), &id_map),
            *want,
            "{} vs from-scratch rebuild",
            classifier.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn any_update_sequence_matches_a_from_scratch_rebuild(
        seed in 0u64..1_000_000,
        rules in 1usize..110,
        packets in 1usize..200,
        binth in 1usize..24,
        spfac_tenths in 10u32..80,
        compaction in proptest::arbitrary::any::<bool>(),
        push_common in proptest::arbitrary::any::<bool>(),
        threshold_pick in 0u8..3,
        ops_seed in proptest::arbitrary::any::<u64>(),
        ops_len in 0usize..28,
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xD00D).generate(packets);
        let headers: Vec<PacketHeader> = trace.headers().copied().collect();
        let script = Script::from_seed(ops_seed, ops_len);
        // Fresh insert candidates at ids past the base ruleset.
        let fresh_pool: Vec<Rule> = ClassBenchGenerator::new(SeedStyle::Acl, seed ^ 0xF00)
            .generate(14)
            .rules()
            .iter()
            .map(|r| Rule::new(rs.len() as u32 + r.id, r.ranges))
            .collect();
        let spfac = f64::from(spfac_tenths) / 10.0;
        let hc_config = HiCutsConfig { binth, spfac };
        let hyc_config = HyperCutsConfig {
            binth,
            spfac,
            region_compaction: compaction,
            push_common_rules: push_common,
        };
        // 0.0 re-flattens after every dirtying update; infinity never does.
        let threshold = [0.0, 0.05, f64::INFINITY][threshold_pick as usize];

        // HiCuts pointer tree.
        let build_hc = |rs: &RuleSet| HiCutsClassifier::build(rs, &hc_config);
        let mut c = build_hc(&rs);
        apply_script(&mut c, &script, &fresh_pool);
        assert_equivalent(&c, build_hc, &headers);

        // HiCuts flat arena.
        let settings = FlatSettings {
            dirty_threshold: threshold,
            ..FlatSettings::default()
        };
        let build_hcf = |rs: &RuleSet| build_hc(rs).flatten().with_settings(settings);
        let mut c = build_hcf(&rs);
        apply_script(&mut c, &script, &fresh_pool);
        assert_equivalent(&c, build_hcf, &headers);

        // HyperCuts pointer tree (region compaction + push-common vary).
        let build_hyc = |rs: &RuleSet| HyperCutsClassifier::build(rs, &hyc_config);
        let mut c = build_hyc(&rs);
        apply_script(&mut c, &script, &fresh_pool);
        assert_equivalent(&c, build_hyc, &headers);

        // HyperCuts flat arena.
        let build_hycf = |rs: &RuleSet| build_hyc(rs).flatten().with_settings(settings);
        let mut c = build_hycf(&rs);
        apply_script(&mut c, &script, &fresh_pool);
        assert_equivalent(&c, build_hycf, &headers);
    }
}

/// The acceptance scenario pinned as a deterministic test: a 1% churn on
/// the acl1 2 k-rule workload patches the flat arenas in place (no
/// rebuild) and post-churn classification matches a from-scratch rebuild.
#[test]
fn one_percent_churn_on_acl1_2000_matches_rebuild() {
    let rs = pclass_bench::acl_ruleset(2_000);
    let trace = pclass_bench::trace_for(&rs, 2_000);
    let headers: Vec<PacketHeader> = trace.headers().copied().collect();
    let updates = pclass_bench::churn::churn_updates(&rs, 0.01);
    assert_eq!(updates.len(), 40, "1% of 2000, delete+insert pairs");

    let build =
        |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
    let mut c = build(&rs);
    for u in &updates {
        c.apply(u).expect("churn update applies");
    }
    let stats = c.update_stats();
    assert_eq!((stats.inserts, stats.deletes), (20, 20));

    let live = c.live_rules();
    assert_eq!(live.len(), 2_000);
    let (rebuilt_set, id_map) = renumbered_ruleset("rebuilt", UpdatableClassifier::spec(&c), &live);
    let fresh = build(&rebuilt_set);
    let mut updated_out = Vec::new();
    c.classify_batch(&headers, &mut updated_out);
    let mut fresh_out = Vec::new();
    fresh.classify_batch(&headers, &mut fresh_out);
    for (i, pkt) in headers.iter().enumerate() {
        assert_eq!(
            updated_out[i],
            map_result(fresh_out[i], &id_map),
            "packet {pkt:?}"
        );
        assert_eq!(updated_out[i], classify_live_linear(&live, pkt));
    }
}
