//! Property-based equivalence for the hot-flow cache (see
//! `pclass_algos::hotcache`): a [`CachedClassifier`] must be
//! *observationally identical* to its uncached inner classifier —
//! packet for packet, on the single-packet and the batched path, cold
//! and warm, across random rulesets, degenerate cache geometries
//! (capacity 0 and 1 included) and scripted churn streams.  The cache
//! is allowed to change *how fast* an answer arrives, never *which*
//! answer arrives.

use packet_classifier::prelude::*;
use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use pclass_algos::update::{classify_live_linear, UpdatableClassifier};
use pclass_algos::{CachedClassifier, Classifier, HotCacheConfig};
use pclass_bench::churn::ChurnProfile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cached_classifier_is_packet_for_packet_equal_to_uncached(
        seed in 0u64..1_000_000,
        rules in 4usize..200,
        packets in 16usize..400,
        capacity_pick in 0usize..5,
        assoc in 1usize..6,
        zipf in any::<bool>(),
    ) {
        // Degenerate geometries first: capacity 0 (pure pass-through) and
        // capacity 1 (every fill is a conflict) are where a cache bug
        // would hide.
        let capacity = [0usize, 1, 7, 64, 1024][capacity_pick];
        let style = [SeedStyle::Acl, SeedStyle::Fw, SeedStyle::Ipc][(seed % 3) as usize];
        let rs = ClassBenchGenerator::new(style, seed).generate(rules);
        let gen = TraceGenerator::new(&rs, seed ^ 0xCAFE);
        let trace = if zipf {
            gen.zipf(1.0).generate(packets)
        } else {
            gen.generate(packets)
        };
        let headers: Vec<_> = trace.headers().copied().collect();

        let inner = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults()).flatten();
        let plain = inner.clone();
        let cached = CachedClassifier::new(inner, HotCacheConfig::new(capacity, assoc));
        prop_assert_eq!(cached.name(), plain.name(), "cache is transparent");

        // Cold pass, then a warm pass that serves from the cache.
        for pass in 0..2 {
            let mut want = Vec::new();
            plain.classify_batch(&headers, &mut want);
            let mut got = Vec::new();
            cached.classify_batch(&headers, &mut got);
            prop_assert_eq!(&got, &want, "batched path diverged on pass {}", pass);
        }
        // The single-packet path consults the same (now warm) cache.
        for header in headers.iter().take(32) {
            prop_assert_eq!(cached.classify(header), plain.classify(header));
        }
    }

    #[test]
    fn cached_classifier_stays_equal_under_scripted_churn(
        seed in 0u64..1_000_000,
        rules in 8usize..150,
        packets in 16usize..300,
        capacity_pick in 0usize..4,
        profile_pick in 0usize..4,
    ) {
        let capacity = [0usize, 1, 32, 512][capacity_pick];
        let profile = [
            ChurnProfile::Burst1,
            ChurnProfile::Deep10,
            ChurnProfile::DeleteHeavy,
            ChurnProfile::Sustained,
        ][profile_pick];
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let headers: Vec<_> = TraceGenerator::new(&rs, seed ^ 0xD00D)
            .generate(packets)
            .headers()
            .copied()
            .collect();

        let inner = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults()).flatten();
        let mut plain = inner.clone();
        let mut cached = CachedClassifier::new(inner, HotCacheConfig::new(capacity, 4));

        // Warm the cache on the pre-churn ruleset so stale entries exist
        // to be invalidated.
        let mut want = Vec::new();
        plain.classify_batch(&headers, &mut want);
        let mut got = Vec::new();
        cached.classify_batch(&headers, &mut got);
        prop_assert_eq!(&got, &want, "pre-churn");

        // Apply the same scripted stream to both copies, re-verifying
        // packet for packet after every burst — a stale cache hit
        // surviving a mutation shows up here immediately.
        let updates = profile.stream(&rs);
        for (burst_no, burst) in updates.chunks(5).enumerate() {
            for update in burst {
                let a = plain.apply(update);
                let b = cached.apply(update);
                prop_assert_eq!(&a, &b, "update outcomes diverged");
            }
            let mut want = Vec::new();
            plain.classify_batch(&headers, &mut want);
            let mut got = Vec::new();
            cached.classify_batch(&headers, &mut got);
            prop_assert_eq!(&got, &want, "burst {} diverged", burst_no);
        }

        // Final state also agrees with linear search over the surviving
        // rules — the cached wrapper did not drift from ground truth.
        let live = cached.live_rules();
        prop_assert_eq!(live.len(), plain.live_rules().len());
        for header in headers.iter().take(64) {
            prop_assert_eq!(cached.classify(header), classify_live_linear(&live, header));
        }
    }
}
