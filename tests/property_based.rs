//! Workspace-level property-based tests: for arbitrary (small) rulesets and
//! arbitrary packets, every classifier in the workspace must agree with the
//! reference linear search, and the hardware program invariants must hold.

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but *valid hardware-encodable* ruleset from a seed:
/// prefix IP fields, range ports, exact-or-any protocol.
fn random_ruleset(seed: u64, rules: usize) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rules);
    for id in 0..rules {
        let mut b = RuleBuilder::new(id as u32);
        if rng.gen_bool(0.8) {
            b = b.src_prefix(rng.gen(), rng.gen_range(0..=32));
        }
        if rng.gen_bool(0.8) {
            b = b.dst_prefix(rng.gen(), rng.gen_range(0..=32));
        }
        if rng.gen_bool(0.5) {
            let lo = rng.gen_range(0u16..60_000);
            b = b.src_port_range(lo, lo.saturating_add(rng.gen_range(0..5_000)));
        }
        if rng.gen_bool(0.7) {
            let lo = rng.gen_range(0u16..60_000);
            b = b.dst_port_range(lo, lo.saturating_add(rng.gen_range(0..5_000)));
        }
        if rng.gen_bool(0.7) {
            b = b.protocol(if rng.gen_bool(0.7) { 6 } else { 17 });
        }
        out.push(b.build());
    }
    RuleSet::new(format!("prop_{seed}"), DimensionSpec::FIVE_TUPLE, out).unwrap()
}

/// Packets biased towards rule boundaries plus pure noise.
fn random_packets(seed: u64, rs: &RuleSet, count: usize) -> Vec<PacketHeader> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if !rs.is_empty() && rng.gen_bool(0.7) {
            let rule = &rs.rules()[rng.gen_range(0..rs.len())];
            let mut fields = [0u32; 5];
            for (i, f) in fields.iter_mut().enumerate() {
                let r = rule.ranges[i];
                *f = match rng.gen_range(0u8..3) {
                    0 => r.lo,
                    1 => r.hi,
                    _ => r.lo + ((r.len() / 2) as u32).min(r.hi - r.lo),
                };
            }
            out.push(PacketHeader::from_fields(fields));
        } else {
            out.push(PacketHeader::five_tuple(
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
                rng.gen(),
            ));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_classifiers_agree(seed in 0u64..10_000, rules in 1usize..60) {
        let rs = random_ruleset(seed, rules);
        let packets = random_packets(seed, &rs, 60);

        let hicuts = HiCutsClassifier::build(&rs, &HiCutsConfig { binth: 4, spfac: 3.0 });
        let hypercuts = HyperCutsClassifier::build(&rs, &HyperCutsConfig {
            binth: 4,
            spfac: 3.0,
            region_compaction: true,
            push_common_rules: true,
        });
        let program = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
            4096,
        ).unwrap();
        let engine = Accelerator::new(&program);
        let rfc = RfcClassifier::build(&rs).unwrap();

        for pkt in &packets {
            let expected = rs.classify_linear(pkt);
            prop_assert_eq!(hicuts.classify(pkt), expected, "hicuts on {}", pkt);
            prop_assert_eq!(hypercuts.classify(pkt), expected, "hypercuts on {}", pkt);
            prop_assert_eq!(engine.classify_packet(pkt).0, expected, "hw on {}", pkt);
            prop_assert_eq!(rfc.classify(pkt), expected, "rfc on {}", pkt);
        }
    }

    #[test]
    fn prop_program_invariants(seed in 0u64..10_000, rules in 1usize..80) {
        let rs = random_ruleset(seed, rules);
        let program = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
            4096,
        ).unwrap();
        let stats = program.stats();
        // Word accounting is exact.
        prop_assert_eq!(stats.total_words, stats.internal_words + stats.leaf_words);
        prop_assert_eq!(stats.memory_bytes, stats.total_words * 600);
        prop_assert_eq!(stats.total_words, program.word_count());
        // Every original rule is stored at least once.
        prop_assert!(stats.stored_rules >= rs.len());
        // Worst case includes the root traversal and at least one leaf word.
        prop_assert!(stats.worst_case_cycles >= 2);
        // The observed accesses of any packet never exceed the static bound.
        let packets = random_packets(seed, &rs, 40);
        let engine = Accelerator::new(&program);
        for pkt in &packets {
            let (_, cycles) = engine.classify_packet(pkt);
            prop_assert!(cycles.memory_accesses() <= stats.worst_case_cycles);
        }
    }

    #[test]
    fn prop_trace_generator_respects_ruleset(seed in 0u64..10_000, rules in 1usize..50) {
        let rs = random_ruleset(seed, rules);
        let trace = TraceGenerator::new(&rs, seed).random_fraction(0.3).generate(100);
        prop_assert_eq!(trace.len(), 100);
        for entry in trace.entries() {
            if let Some(id) = entry.intended_rule {
                prop_assert!(rs.rule(id).unwrap().matches(&entry.header));
            }
        }
    }
}
