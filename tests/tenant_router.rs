//! Property-based equivalence of the multi-tenant serving front end: a
//! `TenantRouter` must be a *transparent* multiplexer over N independent
//! `LiveClassifier`s.
//!
//! Two properties pin that down:
//!
//! * **Degenerate case** — a router with exactly one tenant is
//!   packet-for-packet identical to a `LiveEngine` over the same live
//!   cell, for any worker count and batch size (the router shares the
//!   engine's shard/batch geometry, so even the work split matches).
//! * **Isolation** — under interleaved cross-tenant traffic, the results
//!   projected back out for one tenant equal that tenant's solo run (and
//!   linear-search ground truth): tenants can never observe each other's
//!   rules, whatever the interleaving or worker count.
//!
//! A deterministic churn test closes the loop with the epoch-swap layer:
//! applying updates to one tenant's live cell changes that tenant's
//! decisions (to match a fresh rebuild of its surviving ruleset) while
//! every other tenant's decisions stay bit-identical.
//!
//! Tenants are declared through [`TenantSpec`]s and addressed by the
//! opaque [`TenantId`] handles construction returns (see
//! `tests/tenant_policy.rs` for the runtime admission/eviction
//! lifecycle).

use packet_classifier::prelude::*;
use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Distinct per-tenant workloads: ruleset seeds (and therefore rulesets)
/// differ per tenant, so cross-tenant leakage cannot hide behind equal
/// rulesets.
fn tenant_workloads(seed: u64, tenants: usize, packets: usize) -> Vec<(RuleSet, Trace)> {
    (0..tenants)
        .map(|t| {
            let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed ^ (0x7E57 + t as u64))
                .generate(40 + 20 * t);
            let trace =
                TraceGenerator::new(&rs, seed ^ (0xBEEF + t as u64)).generate(packets.max(1));
            (rs, trace)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N = 1: the router serves exactly like a `LiveEngine` built from the
    /// same config — same results, same packet counts, same shard split.
    #[test]
    fn single_tenant_router_is_a_live_engine(
        seed in 0u64..1_000_000,
        rules in 1usize..120,
        packets in 0usize..300,
        workers in 1usize..5,
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xBEEF).generate(packets);
        let config = EngineConfig::new().workers(workers).batch_size(64);

        let live = Arc::new(LiveClassifier::new(LinearClassifier::new(rs.clone())));
        let engine_run = config.live_engine(Arc::clone(&live)).classify_trace(&trace);

        let router =
            config.tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs))]);
        let ids = router.tenant_ids();
        let tagged = TaggedTrace::interleave("solo", &[(ids[0], &trace)]);
        let run = router.classify_tagged(&tagged);

        prop_assert_eq!(&run.results, &engine_run.results);
        prop_assert_eq!(run.report.pkts, engine_run.report.pkts);
        prop_assert_eq!(run.report.per_worker.len(), workers);
    }

    /// Interleaved cross-tenant traffic: each tenant's projected results
    /// equal its solo run and linear-search ground truth.
    #[test]
    fn interleaved_tenants_match_their_solo_runs(
        seed in 0u64..1_000_000,
        tenants in 1usize..5,
        packets in 1usize..120,
        workers in 1usize..4,
    ) {
        let workloads = tenant_workloads(seed, tenants, packets);
        let router = EngineConfig::new()
            .workers(workers)
            .batch_size(32)
            .tenant_router(workloads.iter().enumerate().map(|(t, (rs, _))| {
                (TenantSpec::new(format!("t{t}")), LinearClassifier::new(rs.clone()))
            }));
        let ids = router.tenant_ids();

        let parts: Vec<(TenantId, &Trace)> = ids
            .iter()
            .zip(&workloads)
            .map(|(&id, (_, trace))| (id, trace))
            .collect();
        let tagged = TaggedTrace::interleave("mixed", &parts);
        let run = router.classify_tagged(&tagged);
        prop_assert_eq!(run.results.len(), tagged.len());

        for (&id, (t, (rs, trace))) in ids.iter().zip(workloads.iter().enumerate()) {
            let projected = tagged.tenant_results(id, &run.results);
            let solo = router.classify_solo(id, trace);
            prop_assert_eq!(&projected, &solo.results, "tenant {} vs its solo run", t);
            prop_assert_eq!(projected, trace.ground_truth(rs), "tenant {} vs ground truth", t);
        }
    }
}

/// Churn isolation end to end: updates applied through one tenant's live
/// cell re-route that tenant onto its surviving ruleset while every other
/// tenant's decisions stay bit-identical.
#[test]
fn churn_on_one_tenant_is_invisible_to_the_others() {
    let workloads = tenant_workloads(20080414, 3, 200);
    let flatten =
        |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
    let router = EngineConfig::new().workers(2).tenant_router(
        workloads
            .iter()
            .enumerate()
            .map(|(t, (rs, _))| (TenantSpec::new(format!("t{t}")), flatten(rs))),
    );
    let ids = router.tenant_ids();
    let traces: Vec<Trace> = workloads.iter().map(|(_, tr)| tr.clone()).collect();
    let parts: Vec<(TenantId, &Trace)> = ids.iter().copied().zip(traces.iter()).collect();
    let tagged = TaggedTrace::interleave("mixed", &parts);
    let before = router.classify_tagged(&tagged);

    // Delete the first quarter of tenant 1's rules through its live cell.
    let (rs1, _) = &workloads[1];
    let victims: Vec<RuleId> = rs1
        .rules()
        .iter()
        .take(rs1.len() / 4)
        .map(|r| r.id)
        .collect();
    let updates: Vec<pclass_algos::update::RuleUpdate> = victims
        .iter()
        .map(|&id| pclass_algos::update::RuleUpdate::Delete(id))
        .collect();
    router
        .live(ids[1])
        .apply_batch(&updates)
        .expect("churn batch applies");

    let after = router.classify_tagged(&tagged);
    for t in [0usize, 2] {
        assert_eq!(
            tagged.tenant_results(ids[t], &before.results),
            tagged.tenant_results(ids[t], &after.results),
            "tenant {t} observed another tenant's churn"
        );
    }
    let survivors: Vec<Rule> = rs1
        .rules()
        .iter()
        .filter(|r| !victims.contains(&r.id))
        .cloned()
        .collect();
    let expected: Vec<MatchResult> = traces[1]
        .headers()
        .map(|h| pclass_algos::update::classify_live_linear(&survivors, h))
        .collect();
    assert_eq!(
        tagged.tenant_results(ids[1], &after.results),
        expected,
        "churned tenant must serve its surviving ruleset"
    );
}
