//! Property-based equivalence of the serving engine: for every classifier
//! in the workspace, `pclass_engine::Engine` must produce exactly the
//! per-packet sequential decisions, for any worker count and any trace
//! length — including the chunk-boundary edge cases (empty trace, trace
//! smaller than the worker count, trace length not divisible by workers).
//!
//! The classifier roster comes from `pclass_bench::serving_roster`, the
//! same single source of truth the `throughput` CI harness uses, so a
//! classifier added to the workspace is automatically covered here.

use packet_classifier::prelude::*;
use pclass_bench::serving_roster;
use proptest::prelude::*;
use std::sync::Arc;

/// All serveable classifiers for one ruleset; small rulesets must never
/// produce build skips.
fn classifiers(rs: &RuleSet) -> Vec<SharedClassifier> {
    let roster = serving_roster(rs);
    assert!(
        roster.skipped.is_empty(),
        "unexpected build skips on a small ruleset: {:?}",
        roster.skipped
    );
    roster.classifiers.into_iter().map(|(_, c)| c).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn engine_matches_sequential_classification(
        seed in 0u64..1_000_000,
        rules in 1usize..120,
        packets in 0usize..300,
    ) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xBEEF).generate(packets);
        for classifier in classifiers(&rs) {
            // Sequential per-packet reference over the same classifier.
            let sequential: Vec<MatchResult> =
                trace.headers().map(|h| classifier.classify(h)).collect();
            for workers in [1usize, 2, 4] {
                let engine = EngineConfig::new().workers(workers).engine(Arc::clone(&classifier));
                let run = engine.classify_trace(&trace);
                prop_assert_eq!(
                    &run.results,
                    &sequential,
                    "{} with {} workers on {} packets",
                    engine.name(),
                    workers,
                    packets
                );
                prop_assert_eq!(run.report.pkts, packets as u64);
                prop_assert_eq!(run.report.per_worker.len(), workers);
            }
        }
    }
}

#[test]
fn engine_handles_empty_trace_for_every_classifier() {
    let rs = ClassBenchGenerator::new(SeedStyle::Acl, 77).generate(40);
    let empty = Trace::from_headers("empty", vec![]);
    for classifier in classifiers(&rs) {
        for workers in [1usize, 2, 4] {
            let run = EngineConfig::new()
                .workers(workers)
                .engine(Arc::clone(&classifier))
                .classify_trace(&empty);
            assert!(run.results.is_empty());
            assert_eq!(run.report.pkts, 0);
        }
    }
}

#[test]
fn engine_handles_trace_smaller_than_worker_count() {
    let rs = ClassBenchGenerator::new(SeedStyle::Ipc, 78).generate(60);
    let trace = TraceGenerator::new(&rs, 79).generate(3);
    let truth = trace.ground_truth(&rs);
    for classifier in classifiers(&rs) {
        let run = EngineConfig::new()
            .workers(4)
            .engine(Arc::clone(&classifier))
            .classify_trace(&trace);
        assert_eq!(run.results, truth);
        // Exactly one result per packet even though one shard is idle.
        let served: u64 = run.report.per_worker.iter().map(|w| w.pkts).sum();
        assert_eq!(served, 3);
    }
}
