//! Firewall/ACL policy scenario.
//!
//! Builds a hand-written enterprise-style policy (the kind of ruleset the
//! paper's introduction motivates: block unwanted traffic, prioritise VoIP,
//! bill by usage class), loads it into the hardware accelerator model and
//! classifies a mixed traffic trace, reporting per-rule hit counts — i.e.
//! the accelerator used as the policy-enforcement stage of a firewall line
//! card.  The same policy is also pushed through the TCAM baseline to show
//! the storage-efficiency gap caused by port ranges.
//!
//! Run with:
//! ```text
//! cargo run --release --example acl_firewall
//! ```

use packet_classifier::prelude::*;
use pclass_tcam::TcamClassifier;
use pclass_types::DimensionSpec;

/// Builds a small but realistic enterprise policy.
fn build_policy() -> RuleSet {
    let mut rules = Vec::new();
    let mut id = 0u32;
    let mut push = |r: Rule| {
        rules.push(r);
    };

    // 1. Protect the management network: only SSH from the admin subnet.
    push(
        RuleBuilder::new(id)
            .src_prefix(0x0A0A_0100, 24)
            .dst_prefix(0x0A00_FF00, 24)
            .dst_port(22)
            .protocol(6)
            .build(),
    );
    id += 1;
    // 2. Drop everything else aimed at the management network (deny rule —
    //    the action table is outside the classifier; the id is what counts).
    push(RuleBuilder::new(id).dst_prefix(0x0A00_FF00, 24).build());
    id += 1;
    // 3. VoIP gets its own class: SIP and RTP towards the PBX.
    push(
        RuleBuilder::new(id)
            .dst_prefix(0x0A01_2000, 24)
            .dst_port(5060)
            .protocol(17)
            .build(),
    );
    id += 1;
    push(
        RuleBuilder::new(id)
            .dst_prefix(0x0A01_2000, 24)
            .dst_port_range(16_384, 32_767)
            .protocol(17)
            .build(),
    );
    id += 1;
    // 4. Web servers in the DMZ.
    push(
        RuleBuilder::new(id)
            .dst_prefix(0x0A02_0000, 16)
            .dst_port(80)
            .protocol(6)
            .build(),
    );
    id += 1;
    push(
        RuleBuilder::new(id)
            .dst_prefix(0x0A02_0000, 16)
            .dst_port(443)
            .protocol(6)
            .build(),
    );
    id += 1;
    // 5. DNS to the resolvers.
    push(
        RuleBuilder::new(id)
            .dst_prefix(0x0A03_0053, 32)
            .dst_port(53)
            .protocol(17)
            .build(),
    );
    id += 1;
    // 6. Outbound mail only from the relay.
    push(
        RuleBuilder::new(id)
            .src_prefix(0x0A04_0019, 32)
            .dst_port(25)
            .protocol(6)
            .build(),
    );
    id += 1;
    // 7. Block known-bad ephemeral range from the guest WLAN.
    push(
        RuleBuilder::new(id)
            .src_prefix(0x0A05_0000, 16)
            .dst_port_range(6_881, 6_999)
            .protocol(6)
            .build(),
    );
    id += 1;
    // 8. Guest WLAN may browse the web.
    push(
        RuleBuilder::new(id)
            .src_prefix(0x0A05_0000, 16)
            .dst_port(80)
            .protocol(6)
            .build(),
    );
    id += 1;
    push(
        RuleBuilder::new(id)
            .src_prefix(0x0A05_0000, 16)
            .dst_port(443)
            .protocol(6)
            .build(),
    );
    id += 1;
    // 9. Default rule: everything else (billing class "best effort").
    push(RuleBuilder::new(id).build());

    RuleSet::new("enterprise_policy", DimensionSpec::FIVE_TUPLE, rules).expect("valid policy")
}

fn main() {
    let policy = build_policy();
    println!("== Enterprise policy ({} rules) ==", policy.len());
    for rule in policy.rules() {
        println!("  {rule}");
    }

    // Traffic mix aimed at the policy plus background noise.
    let trace = TraceGenerator::new(&policy, 2024)
        .random_fraction(0.25)
        .generate(50_000);

    let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
    let program = HardwareProgram::build(&policy, &config).expect("policy fits easily");
    let engine = Accelerator::new(&program);
    let report = engine.classify_trace(&trace);

    // Per-rule hit accounting, validated against linear search.
    let mut hits = vec![0u64; policy.len()];
    let mut misses = 0u64;
    for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
        assert_eq!(*result, policy.classify_linear(&entry.header));
        match result {
            MatchResult::Matched(id) => hits[*id as usize] += 1,
            MatchResult::NoMatch => misses += 1,
        }
    }

    println!("\n== Classification results ({} packets) ==", trace.len());
    for (id, count) in hits.iter().enumerate() {
        println!("  rule R{id:<2}  {count:>7} packets");
    }
    println!("  no match  {misses:>7} packets");
    println!(
        "\n  search structure : {} bytes in {} words",
        program.memory_bytes(),
        program.word_count()
    );
    println!("  worst-case cycles: {}", program.worst_case_cycles());
    println!("  avg cycles/packet: {:.3}", report.avg_cycles_per_packet());

    // TCAM baseline: the port ranges above force range-to-prefix expansion.
    let tcam = TcamClassifier::program(&policy).expect("policy is prefix-expressible");
    let stats = tcam.stats();
    println!("\n== TCAM baseline ==");
    println!(
        "  entries            : {} (for {} rules)",
        stats.entries, stats.rules
    );
    println!(
        "  storage efficiency : {:.1} %",
        stats.storage_efficiency * 100.0
    );
    println!("  storage used       : {} bits", stats.storage_bits);
    for entry in trace.entries().iter().take(5_000) {
        assert_eq!(
            tcam.classify(&entry.header),
            policy.classify_linear(&entry.header)
        );
    }
    println!("  (TCAM decisions verified against linear search on 5,000 packets)");
}
