//! Batched multi-core serving over every classifier.
//!
//! The ROADMAP's north star is a serving system, not a single lookup: this
//! example builds one ruleset, takes the full classifier roster from
//! `pclass_bench::serving_roster` — software baselines, the TCAM model and
//! the hardware accelerator — behind the same `pclass-engine` serving
//! layer, replays a trace across worker shards, and prints the measured
//! throughput, verifying every decision against linear search as it goes.
//!
//! Run with:
//! ```text
//! cargo run --release --example serving_throughput
//! ```

use packet_classifier::prelude::*;
use pclass_bench::serving_roster;
use std::sync::Arc;

fn main() {
    let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(1_000);
    let trace = TraceGenerator::new(&ruleset, 7).generate(10_000);
    let truth = trace.ground_truth(&ruleset);

    println!(
        "serving {} packets against {} ({} rules)\n",
        trace.len(),
        ruleset.name(),
        ruleset.len()
    );
    println!(
        "{:<14} {:>7} | {:>10} {:>8}",
        "classifier", "workers", "wall [ms]", "Mpps"
    );
    let roster = serving_roster(&ruleset);
    for skip in &roster.skipped {
        println!("{:<14} skipped: {}", skip.classifier, skip.reason);
    }
    for (name, classifier) in roster.classifiers {
        for workers in [1usize, 4] {
            let engine = EngineConfig::new()
                .workers(workers)
                .engine(Arc::clone(&classifier));
            let run = engine.classify_trace(&trace);
            assert_eq!(run.results, truth, "{name} disagrees with linear");
            println!(
                "{:<14} {:>7} | {:>10.2} {:>8.3}",
                name,
                workers,
                run.report.wall_ns as f64 / 1e6,
                run.report.mpps
            );
        }
    }
    println!("\nall decisions verified against linear search");
}
