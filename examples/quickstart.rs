//! Quickstart: build the hardware search structure for a synthetic ACL
//! ruleset, run the cycle-accurate accelerator model over a packet trace and
//! compare it with the software baselines.
//!
//! It also reproduces the paper's worked example (Table 1 / Figures 1–3):
//! the HiCuts and HyperCuts decision trees for the 10-rule toy ruleset.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_energy::AcceleratorEnergyModel;
use pclass_types::toy;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's worked example: Table 1 ruleset, binth = 3.
    // ------------------------------------------------------------------
    let table1 = toy::table1_ruleset();
    println!("== Table 1 ruleset ({} rules) ==", table1.len());
    for rule in table1.rules() {
        println!("  {rule}");
    }

    let hicuts = HiCutsClassifier::build(&table1, &HiCutsConfig::figure1());
    println!("\n== Figure 1: HiCuts decision tree (binth 3) ==");
    print!("{}", hicuts.tree().dump());

    let hypercuts = HyperCutsClassifier::build(&table1, &HyperCutsConfig::figure3());
    println!("== Figure 3: HyperCuts decision tree (binth 3) ==");
    print!("{}", hypercuts.tree().dump());

    // ------------------------------------------------------------------
    // 2. A realistic ACL ruleset through the hardware accelerator.
    // ------------------------------------------------------------------
    let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(2_000);
    let trace = TraceGenerator::new(&ruleset, 7).generate(20_000);
    println!(
        "\n== Hardware accelerator on {} ({} rules, {} packets) ==",
        ruleset.name(),
        ruleset.len(),
        trace.len()
    );

    for algorithm in [CutAlgorithm::HiCuts, CutAlgorithm::HyperCuts] {
        let config = BuildConfig::paper_defaults(algorithm);
        let program =
            HardwareProgram::build(&ruleset, &config).expect("structure fits in 1024 words");
        let engine = Accelerator::new(&program);
        let report = engine.classify_trace(&trace);

        // Verify every decision against the reference linear search.
        let mut mismatches = 0usize;
        for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
            if *result != ruleset.classify_linear(&entry.header) {
                mismatches += 1;
            }
        }

        let asic = AcceleratorEnergyModel::asic();
        let fpga = AcceleratorEnergyModel::fpga();
        println!("\n  algorithm          : {}", algorithm.name());
        println!(
            "  memory             : {} bytes ({} words)",
            program.memory_bytes(),
            program.word_count()
        );
        println!("  worst-case cycles  : {}", program.worst_case_cycles());
        println!(
            "  avg cycles/packet  : {:.3}",
            report.avg_cycles_per_packet()
        );
        println!(
            "  ASIC throughput    : {:.1} Mpps",
            asic.packets_per_second(&report) / 1e6
        );
        println!(
            "  FPGA throughput    : {:.1} Mpps",
            fpga.packets_per_second(&report) / 1e6
        );
        println!(
            "  ASIC energy/packet : {:.3e} J",
            asic.energy_per_packet_j(&report)
        );
        println!(
            "  FPGA energy/packet : {:.3e} J",
            fpga.energy_per_packet_j(&report)
        );
        println!("  mismatches vs linear search: {mismatches}");
        assert_eq!(
            mismatches, 0,
            "the accelerator must agree with linear search"
        );
    }

    // ------------------------------------------------------------------
    // 3. Software baselines on the same workload (for perspective).
    // ------------------------------------------------------------------
    println!("\n== Software baselines (StrongARM SA-1100 model) ==");
    let sa1100 = Sa1100Model::new();
    let classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(LinearClassifier::new(ruleset.clone())),
        Box::new(HiCutsClassifier::build(
            &ruleset,
            &HiCutsConfig::paper_defaults(),
        )),
        Box::new(HyperCutsClassifier::build(
            &ruleset,
            &HyperCutsConfig::paper_defaults(),
        )),
    ];
    for classifier in &classifiers {
        let mut total = pclass_algos::LookupStats::new();
        let sample: Vec<_> = trace.entries().iter().take(2_000).collect();
        for entry in &sample {
            classifier.classify_with_stats(&entry.header, &mut total);
        }
        let mut avg = pclass_algos::OpCounters::zero();
        // Average operation mix per packet.
        avg.loads = total.ops.loads / sample.len() as u64;
        avg.stores = total.ops.stores / sample.len() as u64;
        avg.alu = total.ops.alu / sample.len() as u64;
        avg.branches = total.ops.branches / sample.len() as u64;
        avg.muls = total.ops.muls / sample.len() as u64;
        avg.divs = total.ops.divs / sample.len() as u64;
        println!(
            "  {:10}  memory {:>9} bytes   {:>9.0} packets/s   {:.3e} J/packet",
            classifier.name(),
            classifier.memory_bytes(),
            sa1100.packets_per_second(&avg),
            sa1100.normalized_energy_j(&avg),
        );
    }
}
