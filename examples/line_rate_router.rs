//! Line-rate router scenario.
//!
//! The introduction of the paper frames the problem in terms of OC-192 and
//! OC-768 line rates: 31.25 and 125 million minimum-sized packets per second
//! respectively.  This example builds the hardware search structure for the
//! three ClassBench seed styles at several ruleset sizes, asks the
//! cycle-accurate model for its guaranteed (worst-case) and observed
//! (trace-average) throughput on both the ASIC and the FPGA targets, and
//! reports which line rates each configuration can sustain — including the
//! multi-engine deployment of `ParallelAccelerator`.
//!
//! Run with:
//! ```text
//! cargo run --release --example line_rate_router
//! ```

use packet_classifier::prelude::*;
use pclass_core::parallel::ParallelAccelerator;
use pclass_energy::AcceleratorEnergyModel;

/// OC-192 worst-case packet rate (40-byte packets back to back).
const OC192_PPS: f64 = 31.25e6;
/// OC-768 worst-case packet rate.
const OC768_PPS: f64 = 125e6;

fn line_rate_label(pps: f64) -> &'static str {
    if pps >= OC768_PPS {
        "OC-768"
    } else if pps >= OC192_PPS {
        "OC-192"
    } else if pps >= 2.5e6 {
        "OC-48"
    } else {
        "< OC-48"
    }
}

fn main() {
    let asic = AcceleratorEnergyModel::asic();
    let fpga = AcceleratorEnergyModel::fpga();

    println!(
        "{:<12} {:>6} {:>9} {:>7} {:>12} {:>10} {:>12} {:>10}",
        "ruleset",
        "rules",
        "mem [B]",
        "cycles",
        "ASIC [Mpps]",
        "ASIC rate",
        "FPGA [Mpps]",
        "FPGA rate"
    );

    for style in [SeedStyle::Acl, SeedStyle::Ipc, SeedStyle::Fw] {
        for &size in &[500usize, 2_000, 10_000] {
            let ruleset = ClassBenchGenerator::new(style, 11).generate(size);
            let trace = TraceGenerator::new(&ruleset, 13).generate(30_000);
            let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
            // FW-style sets can exceed the 1024-word FPGA budget; use the
            // full 12-bit address space the architecture supports.
            let program =
                match pclass_core::HardwareProgram::build_with_capacity(&ruleset, &config, 4096) {
                    Ok(p) => p,
                    Err(e) => {
                        println!("{:<12} {:>6} build failed: {e}", ruleset.name(), size);
                        continue;
                    }
                };
            let engine = Accelerator::new(&program);
            let report = engine.classify_trace(&trace);

            let asic_pps = asic.packets_per_second(&report);
            let fpga_pps = fpga.packets_per_second(&report);
            println!(
                "{:<12} {:>6} {:>9} {:>7} {:>12.1} {:>10} {:>12.1} {:>10}",
                ruleset.name(),
                size,
                program.memory_bytes(),
                program.worst_case_cycles(),
                asic_pps / 1e6,
                line_rate_label(asic.guaranteed_packets_per_second(program.worst_case_cycles())),
                fpga_pps / 1e6,
                line_rate_label(fpga.guaranteed_packets_per_second(program.worst_case_cycles())),
            );
        }
    }

    // ------------------------------------------------------------------
    // Multi-engine scaling: shard one heavy trace over several engines.
    // ------------------------------------------------------------------
    println!("\n== Multi-engine scaling (ACL, 5,000 rules, 200k packets) ==");
    let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 3).generate(5_000);
    let trace = TraceGenerator::new(&ruleset, 4).generate(200_000);
    let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
    let program = pclass_core::HardwareProgram::build_with_capacity(&ruleset, &config, 4096)
        .expect("ACL structure fits");
    for engines in [1usize, 2, 4, 8] {
        let bank = ParallelAccelerator::new(&program, engines);
        let report = bank.classify_trace(&trace);
        let pps = report.packets_per_second(226e6);
        println!(
            "  {engines} engine(s): {:>8.1} Mpps aggregate at 226 MHz ({} cycles on the critical engine)",
            pps / 1e6,
            report.cycles
        );
    }
}
