//! Energy report: software vs hardware vs TCAM.
//!
//! Generates the paper's headline energy comparison for one ruleset size of
//! the reader's choice (default 1,600 rules): energy to build the search
//! structure (original vs modified algorithms, Table 3), energy per
//! classified packet on the SA-1100 / ASIC / FPGA (Table 6), throughput
//! (Table 7) and the TCAM power comparison of §5.3.
//!
//! Run with:
//! ```text
//! cargo run --release --example energy_report -- [rules]
//! ```

use packet_classifier::prelude::*;
use pclass_algos::hicuts::HiCutsConfig;
use pclass_algos::hypercuts::HyperCutsConfig;
use pclass_algos::{LookupStats, OpCounters};
use pclass_energy::{AcceleratorEnergyModel, SramPart, TcamPart};

fn average_ops(total: &OpCounters, packets: u64) -> OpCounters {
    OpCounters {
        loads: total.loads / packets,
        stores: total.stores / packets,
        alu: total.alu / packets,
        branches: total.branches / packets,
        muls: total.muls / packets,
        divs: total.divs / packets,
    }
}

fn main() {
    let rules: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_600);
    let packets = 20_000usize;

    let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(rules);
    let trace = TraceGenerator::new(&ruleset, 2).generate(packets);
    let sa1100 = Sa1100Model::new();
    let asic = AcceleratorEnergyModel::asic();
    let fpga = AcceleratorEnergyModel::fpga();

    println!(
        "Energy report for {} ({} rules, {} packets)\n",
        ruleset.name(),
        rules,
        packets
    );

    // ---------------- Build energy (Table 3 shape) ----------------------
    println!("== Energy to build the search structure (SA-1100 model) ==");
    let sw_hicuts = HiCutsClassifier::build(&ruleset, &HiCutsConfig::paper_defaults());
    let sw_hyper = HyperCutsClassifier::build(&ruleset, &HyperCutsConfig::paper_defaults());
    let hw_hicuts = HardwareProgram::build_with_capacity(
        &ruleset,
        &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
        4096,
    )
    .unwrap();
    let hw_hyper = HardwareProgram::build_with_capacity(
        &ruleset,
        &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
        4096,
    )
    .unwrap();
    let rows = [
        (
            "HiCuts (original)",
            sa1100.build_energy_j(sw_hicuts.build_stats()),
        ),
        (
            "HyperCuts (original)",
            sa1100.build_energy_j(sw_hyper.build_stats()),
        ),
        (
            "HiCuts (modified)",
            sa1100.build_energy_j(hw_hicuts.build_stats()),
        ),
        (
            "HyperCuts (modified)",
            sa1100.build_energy_j(hw_hyper.build_stats()),
        ),
    ];
    for (name, energy) in rows {
        println!("  {name:<22} {energy:>12.4e} J");
    }
    println!(
        "  modified/original HiCuts build-energy ratio: {:.2}x less",
        sa1100.build_energy_j(sw_hicuts.build_stats())
            / sa1100.build_energy_j(hw_hicuts.build_stats())
    );

    // ---------------- Lookup energy and throughput ----------------------
    println!("\n== Energy per classified packet and throughput ==");
    // Software side.
    for (name, classifier) in [
        ("HiCuts (sw)", &sw_hicuts as &dyn Classifier),
        ("HyperCuts (sw)", &sw_hyper as &dyn Classifier),
    ] {
        let mut total = LookupStats::new();
        for entry in trace.entries() {
            classifier.classify_with_stats(&entry.header, &mut total);
        }
        let avg = average_ops(&total.ops, trace.len() as u64);
        println!(
            "  {name:<16} {:>12.3e} J/packet {:>12.0} packets/s (SA-1100)",
            sa1100.normalized_energy_j(&avg),
            sa1100.packets_per_second(&avg)
        );
    }
    // Hardware side.
    for (name, program) in [("HiCuts (hw)", &hw_hicuts), ("HyperCuts (hw)", &hw_hyper)] {
        let engine = Accelerator::new(program);
        let report = engine.classify_trace(&trace);
        println!(
            "  {name:<16} {:>12.3e} J/packet {:>12.0} packets/s (ASIC 226 MHz)",
            asic.energy_per_packet_j(&report),
            asic.packets_per_second(&report)
        );
        println!(
            "  {name:<16} {:>12.3e} J/packet {:>12.0} packets/s (FPGA 77 MHz)",
            fpga.energy_per_packet_j(&report),
            fpga.packets_per_second(&report)
        );
    }

    // Headline ratio: most efficient software vs ASIC accelerator.
    let mut sw_total = LookupStats::new();
    for entry in trace.entries() {
        sw_hicuts.classify_with_stats(&entry.header, &mut sw_total);
    }
    let sw_energy = sa1100.normalized_energy_j(&average_ops(&sw_total.ops, trace.len() as u64));
    let hw_report = Accelerator::new(&hw_hyper).classify_trace(&trace);
    let hw_energy = asic.energy_per_packet_j(&hw_report);
    println!(
        "\n  energy saving of the ASIC accelerator vs software HiCuts: {:.0}x",
        sw_energy / hw_energy
    );

    // ---------------- TCAM comparison (§5.3) -----------------------------
    println!("\n== TCAM / SRAM comparison ==");
    let ayama_77 = TcamPart::ayama_10128_at_77mhz();
    let ayama_133 = TcamPart::ayama_10512_at_133mhz();
    let sram = SramPart::cy7c1381d();
    println!(
        "  FPGA accelerator @ 77 MHz : {:.2} W",
        fpga.device().power_w
    );
    println!("  {} : {:.2} W", ayama_77.name, ayama_77.power_w);
    println!(
        "  ASIC accelerator @ 133 MHz: {:.2} mW",
        asic.device().power_at_frequency_w(133e6) * 1e3
    );
    println!("  {} : {:.2} W", ayama_133.name, ayama_133.power_w);
    println!(
        "  {} (SRAM alone)    : {:.0} mW",
        sram.name,
        sram.power_w * 1e3
    );
    println!(
        "  TCAM energy per search: {:.2e} J vs ASIC {:.2e} J per packet",
        ayama_133.energy_per_search_j(),
        hw_energy
    );
}
