//! Lane-width sweep over the vectorised flat-arena walk.
//!
//! Builds the flat decision-tree arenas at two ruleset sizes — one
//! cache-resident, one memory-bound — and times the batched walk at every
//! [`LaneWidth`], scalar included, over the same uniform trace.  This is the
//! tuning harness behind the lane-width default and the README's
//! before/after table: the scalar column is the PR 3 walk, the lane columns
//! show what the explicit-lane rewrite adds at each width.
//!
//! Run with:
//! ```text
//! cargo run --release --example lane_sweep
//! ```

use packet_classifier::prelude::*;
use std::time::Instant;

/// Engine sub-batch size; the sweep mirrors it so numbers line up with
/// serving throughput.
const BATCH: usize = 512;

/// Wall time per measurement window; the best of [`WINDOWS`] windows is
/// reported, which filters host-level contention on shared machines.
const WINDOW_NS: u128 = 150_000_000;
const WINDOWS: usize = 5;

fn time_walk(flat: &FlatTree, pkts: &[PacketHeader], lanes: LaneWidth) -> f64 {
    let mut out = Vec::with_capacity(BATCH);
    let mut bestrate = 0.0f64;
    for _ in 0..WINDOWS {
        let mut packets = 0u64;
        let start = Instant::now();
        loop {
            for chunk in pkts.chunks(BATCH) {
                flat.classify_batch_lanes(chunk, &mut out, lanes);
                packets += chunk.len() as u64;
            }
            if start.elapsed().as_nanos() >= WINDOW_NS {
                break;
            }
        }
        let rate = packets as f64 / start.elapsed().as_nanos() as f64 * 1e3;
        bestrate = bestrate.max(rate);
    }
    bestrate
}

fn main() {
    let widths = [
        LaneWidth::Scalar,
        LaneWidth::X4,
        LaneWidth::X8,
        LaneWidth::X16,
    ];
    println!(
        "{:<10} {:<16} | {:>8} {:>8} {:>8} {:>8}  (Mpps, one worker)",
        "rules", "classifier", "scalar", "x4", "x8", "x16"
    );
    for rules in [500usize, 2_000, 64_000] {
        let ruleset = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(rules);
        let trace = TraceGenerator::new(&ruleset, 7).generate(20_000);
        let pkts: Vec<PacketHeader> = trace.headers().copied().collect();
        let hicuts = HiCutsClassifier::build(&ruleset, &Default::default()).flatten();
        let hypercuts = HyperCutsClassifier::build(&ruleset, &Default::default()).flatten();
        for (name, flat) in [("hicuts-flat", &hicuts), ("hypercuts-flat", &hypercuts)] {
            let mpps: Vec<f64> = widths
                .iter()
                .map(|&w| time_walk(flat.flat_tree(), &pkts, w))
                .collect();
            println!(
                "{:<10} {:<16} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                rules, name, mpps[0], mpps[1], mpps[2], mpps[3]
            );
        }
    }
}
