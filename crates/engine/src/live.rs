//! Epoch-based serving of a classifier under live rule updates.
//!
//! The paper's deployment shares one *read-only* memory image between its
//! search engines; real rulesets churn while traffic keeps flowing.
//! [`LiveClassifier`] squares the two with an epoch (snapshot) swap built
//! from `std` primitives only:
//!
//! * the **read path** is an `Arc` snapshot behind an `RwLock` taken for
//!   nanoseconds per batch — workers clone the `Arc` at the start of a
//!   sub-batch and classify the whole batch on that immutable snapshot,
//!   draining in flight while newer generations are published;
//! * the **write path** owns a private writer copy of the classifier
//!   (`Mutex`): updates patch it in place through
//!   [`UpdatableClassifier`]'s rebuild-free `insert`/`delete`, and
//!   [`LiveClassifier::apply_batch`] publishes a clone of the patched
//!   writer as the next snapshot, bumping a generation counter.
//!
//! Serving therefore never blocks on an update (readers hold the lock only
//! to clone the `Arc`), updates never observe a torn structure (they only
//! touch the writer copy), and every served batch is classified by exactly
//! one consistent generation.  [`LiveEngine`] is the multi-worker serving
//! loop over a [`LiveClassifier`]: the trace is sharded like
//! [`crate::Engine`], but each worker re-snapshots per sub-batch, so a
//! ruleset change lands mid-trace without stopping the stream.

use crate::{EngineConfig, EngineRun};
use pclass_algos::update::{RuleUpdate, UpdatableClassifier, UpdateError};
use pclass_algos::Classifier;
use pclass_types::Trace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A classifier served through swappable immutable snapshots while a
/// writer copy absorbs incremental updates.  See the module docs.
pub struct LiveClassifier<C> {
    snapshot: RwLock<Arc<C>>,
    writer: Mutex<C>,
    generation: AtomicU64,
}

impl<C: Classifier + Clone> LiveClassifier<C> {
    /// Wraps a classifier: generation 0 serves its initial state.
    pub fn new(classifier: C) -> LiveClassifier<C> {
        LiveClassifier {
            snapshot: RwLock::new(Arc::new(classifier.clone())),
            writer: Mutex::new(classifier),
            generation: AtomicU64::new(0),
        }
    }

    /// The current immutable snapshot.  Cheap (one `Arc` clone under a
    /// read lock); hold it for at most a batch so the previous arena can
    /// be dropped once all in-flight batches drain.
    pub fn snapshot(&self) -> Arc<C> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    /// The current snapshot together with the generation that published
    /// it, read as one consistent pair (the generation is only ever
    /// advanced while the snapshot write lock is held, so holding the
    /// read lock across both loads rules out a snapshot tagged with a
    /// neighbouring generation's number).  This is the handle a hot-flow
    /// cache needs: tagging cache fills with the pair's generation makes
    /// entries from an older ruleset structurally unreachable the moment
    /// a new one is published.
    pub fn snapshot_tagged(&self) -> (u64, Arc<C>) {
        let guard = self.snapshot.read().expect("snapshot lock poisoned");
        let generation = self.generation.load(Ordering::Acquire);
        (generation, Arc::clone(&guard))
    }

    /// Number of published update generations (0 = never updated).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl<C: UpdatableClassifier + Clone> LiveClassifier<C> {
    /// Applies a burst of updates to the writer copy and publishes the
    /// result as the next snapshot generation.
    ///
    /// The burst is applied atomically with respect to readers: no served
    /// batch ever observes a prefix of it.  On error the failed update and
    /// everything after it are dropped but earlier updates of the burst
    /// are still published (the writer copy has already absorbed them).
    pub fn apply_batch(&self, updates: &[RuleUpdate]) -> Result<u64, UpdateError> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let result = updates.iter().try_for_each(|u| writer.apply(u));
        let published = Arc::new(writer.clone());
        {
            // The generation advances inside the snapshot critical section
            // so that `snapshot_tagged` can never pair a snapshot with the
            // wrong number.  Writers are already serialised by the writer
            // mutex, so a load+store is race-free here.
            let mut snapshot = self.snapshot.write().expect("snapshot lock poisoned");
            *snapshot = published;
            let generation = self.generation.load(Ordering::Relaxed) + 1;
            self.generation.store(generation, Ordering::Release);
            result.map(|()| generation)
        }
    }

    /// Runs a closure against the writer copy without publishing (used to
    /// inspect update statistics mid-stream).
    pub fn with_writer<T>(&self, f: impl FnOnce(&C) -> T) -> T {
        f(&self.writer.lock().expect("writer lock poisoned"))
    }
}

/// A bank of worker shards serving a [`LiveClassifier`], re-snapshotting
/// at every sub-batch boundary so published updates land mid-trace.
///
/// Results are packet-for-packet what the per-batch snapshots decide — for
/// a quiescent classifier (no updates in flight) that is exactly what
/// [`crate::Engine`] over the same classifier produces.
pub struct LiveEngine<C> {
    live: Arc<LiveClassifier<C>>,
    workers: usize,
    batch: usize,
    progress: Option<Arc<AtomicU64>>,
    caches: Vec<Arc<pclass_algos::HotCache>>,
}

impl<C: Classifier + Clone + Send + Sync> LiveEngine<C> {
    /// The canonical constructor, used by [`EngineConfig::live_engine`];
    /// inherits the config's workers, batch size, progress hook and
    /// hot-cache geometry (one private cache per worker, so the hot path
    /// never contends across shards).
    pub(crate) fn from_config(
        config: &EngineConfig,
        live: Arc<LiveClassifier<C>>,
    ) -> LiveEngine<C> {
        let workers = config.worker_count();
        let caches = match config.hot_cache_config() {
            Some(geometry) => (0..workers)
                .map(|_| Arc::new(pclass_algos::HotCache::new(geometry)))
                .collect(),
            None => Vec::new(),
        };
        LiveEngine {
            live,
            workers,
            batch: config.batch(),
            progress: config.progress_counter().cloned(),
            caches,
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared live classifier.
    pub fn live(&self) -> &LiveClassifier<C> {
        &self.live
    }

    /// Aggregated hit/miss/eviction counters of the per-worker hot-flow
    /// caches, or `None` when the engine was built without
    /// [`EngineConfig::hot_cache`].  Counters are cumulative across every
    /// [`LiveEngine::classify_trace`] call.
    pub fn cache_stats(&self) -> Option<pclass_types::CacheStats> {
        if self.caches.is_empty() {
            return None;
        }
        let mut total = pclass_types::CacheStats::default();
        for cache in &self.caches {
            total.merge(&cache.stats());
        }
        Some(total)
    }

    /// Classifies a whole trace, sharding it across the workers; each
    /// sub-batch is served by the snapshot current at its start.  With a
    /// hot cache configured, the worker probes its cache with the
    /// snapshot's generation as the entry tag — a sub-batch therefore
    /// only ever consumes cache entries filled from the exact snapshot
    /// it classifies against, and a published update invalidates every
    /// older entry without touching the cache.
    pub fn classify_trace(&self, trace: &Trace) -> EngineRun {
        crate::run_sharded(
            trace,
            self.workers,
            self.batch,
            |worker, headers, results| {
                // Re-snapshot per sub-batch: a generation published mid-shard
                // serves the remaining batches, while this batch drains on the
                // snapshot it started with.
                let (tag, snap) = self.live.snapshot_tagged();
                match self.caches.get(worker) {
                    Some(cache) => cache.serve_batch(tag, headers, results, |misses, out| {
                        snap.classify_batch(misses, out)
                    }),
                    None => snap.classify_batch(headers, results),
                }
                if let Some(counter) = &self.progress {
                    counter.fetch_add(headers.len() as u64, Ordering::Relaxed);
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_algos::update::classify_live_linear;
    use pclass_algos::{HiCutsClassifier, HiCutsConfig};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use pclass_types::Rule;

    fn workload(rules: usize, packets: usize) -> (pclass_types::RuleSet, Trace) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 77).generate(rules);
        let trace = TraceGenerator::new(&rs, 78).generate(packets);
        (rs, trace)
    }

    fn flat_for(rs: &pclass_types::RuleSet) -> pclass_algos::FlatTreeClassifier {
        HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten()
    }

    #[test]
    fn quiescent_live_engine_matches_ground_truth_at_every_worker_count() {
        let (rs, trace) = workload(200, 900);
        let truth = trace.ground_truth(&rs);
        let live = Arc::new(LiveClassifier::new(flat_for(&rs)));
        for workers in [1usize, 2, 4] {
            let engine = EngineConfig::new()
                .workers(workers)
                .live_engine(Arc::clone(&live));
            let run = engine.classify_trace(&trace);
            assert_eq!(run.results, truth, "x{workers}");
            assert_eq!(run.report.pkts, trace.len() as u64);
            assert_eq!(run.report.per_worker.len(), workers);
        }
        assert_eq!(live.generation(), 0);
    }

    #[test]
    fn apply_batch_publishes_a_new_generation_readers_pick_up() {
        let (rs, trace) = workload(120, 400);
        let live = LiveClassifier::new(flat_for(&rs));
        let old = live.snapshot();
        let spec = *rs.spec();
        let updates = vec![
            RuleUpdate::Delete(3),
            RuleUpdate::Insert(Rule::wildcard(rs.len() as u32 + 5, &spec)),
        ];
        assert_eq!(live.apply_batch(&updates).unwrap(), 1);
        assert_eq!(live.generation(), 1);
        // The pre-update snapshot still serves the old ruleset (drain).
        let pkt = trace.entries()[0].header;
        assert_eq!(old.classify(&pkt), rs.classify_linear(&pkt));
        // A fresh snapshot serves the updated ruleset.
        let snap = live.snapshot();
        let expected = classify_live_linear(&snap.live_rules(), &pkt);
        assert_eq!(snap.classify(&pkt), expected);
        let stats = live.with_writer(|w| w.update_stats());
        assert_eq!((stats.inserts, stats.deletes), (1, 1));
    }

    #[test]
    fn failed_update_keeps_earlier_burst_entries_and_still_publishes() {
        let (rs, _) = workload(60, 1);
        let live = LiveClassifier::new(flat_for(&rs));
        let updates = vec![
            RuleUpdate::Delete(1),
            RuleUpdate::Delete(1), // second delete of the same id fails
            RuleUpdate::Delete(2), // dropped: after the failure
        ];
        assert_eq!(
            live.apply_batch(&updates),
            Err(UpdateError::UnknownRuleId(1))
        );
        assert_eq!(live.generation(), 1);
        let snap = live.snapshot();
        let ids: Vec<u32> = snap.live_rules().iter().map(|r| r.id).collect();
        assert!(!ids.contains(&1), "first delete applied");
        assert!(ids.contains(&2), "post-failure delete dropped");
    }

    #[test]
    fn progress_counter_tracks_served_packets_across_runs() {
        let (rs, trace) = workload(80, 700);
        let live = Arc::new(LiveClassifier::new(flat_for(&rs)));
        let counter = Arc::new(AtomicU64::new(0));
        let engine = EngineConfig::new()
            .workers(3)
            .batch_size(64)
            .progress(Arc::clone(&counter))
            .live_engine(Arc::clone(&live));
        engine.classify_trace(&trace);
        assert_eq!(counter.load(Ordering::Relaxed), trace.len() as u64);
        // The counter is cumulative across calls — that is what lets a
        // sustained updater pace itself over a multi-pass serving window.
        engine.classify_trace(&trace);
        assert_eq!(counter.load(Ordering::Relaxed), 2 * trace.len() as u64);
        // An engine without the hook leaves the counter alone.
        EngineConfig::new()
            .workers(2)
            .live_engine(Arc::clone(&live))
            .classify_trace(&trace);
        assert_eq!(counter.load(Ordering::Relaxed), 2 * trace.len() as u64);
    }

    #[test]
    fn cached_live_engine_matches_truth_and_warm_passes_hit() {
        let (rs, trace) = workload(150, 900);
        let truth = trace.ground_truth(&rs);
        let live = Arc::new(LiveClassifier::new(flat_for(&rs)));
        let engine = EngineConfig::new()
            .workers(2)
            .batch_size(64)
            .hot_cache(pclass_algos::HotCacheConfig::new(512, 4))
            .live_engine(Arc::clone(&live));
        for pass in 0..2 {
            assert_eq!(engine.classify_trace(&trace).results, truth, "pass {pass}");
        }
        let stats = engine.cache_stats().expect("cache configured");
        assert!(stats.hits > 0, "warm pass must hit");
        assert_eq!(stats.hits + stats.misses, 2 * trace.len() as u64);
        // An update invalidates by generation: the next pass still matches
        // the *new* truth packet for packet even though old entries are
        // physically present in the cache.
        live.apply_batch(&[RuleUpdate::Delete(0)]).expect("delete");
        let snap = live.snapshot();
        let final_live = snap.live_rules();
        let run = engine.classify_trace(&trace);
        for (entry, got) in trace.entries().iter().zip(&run.results) {
            assert_eq!(*got, classify_live_linear(&final_live, &entry.header));
        }
    }

    #[test]
    fn snapshot_tagged_pairs_are_consistent_under_churn() {
        // Hammer apply_batch while readers take tagged snapshots; a tag
        // must always identify the snapshot it came with.  The writer
        // inserts a wildcard rule whose id encodes the generation, so a
        // reader can cross-check the pair.
        let (rs, _) = workload(40, 1);
        let spec = *rs.spec();
        let base_rules = rs.len() as u64;
        let live = Arc::new(LiveClassifier::new(flat_for(&rs)));
        std::thread::scope(|scope| {
            let live_ref = &live;
            let writer = scope.spawn(move || {
                for round in 0..200u32 {
                    live_ref
                        .apply_batch(&[RuleUpdate::Insert(Rule::wildcard(10_000 + round, &spec))])
                        .expect("insert");
                }
            });
            for _ in 0..2_000 {
                let (tag, snap) = live.snapshot_tagged();
                // Generation g has exactly base_rules + g live rules.
                assert_eq!(
                    snap.live_rules().len() as u64,
                    base_rules + tag,
                    "tag must match the snapshot it was read with"
                );
            }
            writer.join().expect("writer panicked");
        });
        assert_eq!(live.generation(), 200);
    }

    #[test]
    fn serving_under_concurrent_churn_stays_consistent_per_generation() {
        let (rs, trace) = workload(250, 3_000);
        let spec = *rs.spec();
        let live = Arc::new(LiveClassifier::new(flat_for(&rs)));
        let engine = EngineConfig::new()
            .workers(2)
            .batch_size(64)
            .live_engine(Arc::clone(&live));
        std::thread::scope(|scope| {
            let live_ref = &live;
            let updater = scope.spawn(move || {
                // Delete/insert churn racing the serving loop below.
                for round in 0..20u32 {
                    let id = round % (rs.len() as u32);
                    live_ref
                        .apply_batch(&[RuleUpdate::Delete(id)])
                        .expect("delete");
                    live_ref
                        .apply_batch(&[RuleUpdate::Insert(Rule::wildcard(10_000 + round, &spec))])
                        .expect("insert");
                    std::thread::yield_now();
                }
            });
            // Serving never blocks or panics while updates land.
            for _ in 0..3 {
                let run = engine.classify_trace(&trace);
                assert_eq!(run.results.len(), trace.len());
            }
            updater.join().expect("updater panicked");
        });
        assert_eq!(live.generation(), 40);
        // Quiescent again: the final snapshot agrees with linear search
        // over the final live ruleset, packet for packet.
        let snap = live.snapshot();
        let final_live = snap.live_rules();
        let run = engine.classify_trace(&trace);
        for (entry, got) in trace.entries().iter().zip(&run.results) {
            assert_eq!(*got, classify_live_linear(&final_live, &entry.header));
        }
    }
}
