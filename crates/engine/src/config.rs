//! The unified builder-style construction API of the serving layer.
//!
//! The engine family used to grow one ad-hoc constructor chain per type —
//! `Engine::new` / `Engine::from_shared` / `Engine::with_batch_size`,
//! `LiveEngine::new` / `with_batch_size` / `with_progress` — so every new
//! serving axis multiplied `with_*` methods across three types.
//! [`EngineConfig`] collapses them into one builder that every front end
//! consumes:
//!
//! * [`EngineConfig::engine`] / [`EngineConfig::engine_with`] — a fixed
//!   [`Engine`] over one shared classifier (or one per worker shard);
//! * [`EngineConfig::live_engine`] — a [`LiveEngine`] over an epoch-swap
//!   [`LiveClassifier`];
//! * [`EngineConfig::tenant_router`] — a [`TenantRouter`] over a roster of
//!   per-tenant live classifiers.
//!
//! The builder is the *only* construction path: the old per-type
//! constructors (`Engine::new`, `LiveEngine::with_progress`, …) have been
//! deleted.
//!
//! Knob semantics:
//!
//! * **workers** and **batch size** apply to every front end;
//! * the **progress hook** applies to the live front ends ([`LiveEngine`],
//!   [`TenantRouter`]) — the fixed [`Engine`] has no sustained-pacing use
//!   for it and ignores it;
//! * the **hot cache** ([`EngineConfig::hot_cache`]) puts an exact-match
//!   flow cache in front of the classifier: per worker shard on [`Engine`]
//!   and [`LiveEngine`], per tenant on [`TenantRouter`] (where the entry
//!   budget is sliced across the roster by each tenant's
//!   [`TenantSpec::cache_share`]);
//! * the **memory budget** ([`EngineConfig::memory_budget`]) bounds the
//!   [`TenantRouter`] roster's total classifier + cache bytes — admission
//!   checks against it;
//! * the **lane width** is not consumed by the engines themselves (it
//!   tunes the flat-arena classifiers, not the sharding loop); it rides on
//!   the config so one value can be plumbed from a CLI flag through roster
//!   construction (`pclass_bench::serving_roster_config`) and the engines
//!   alike.
//!
//! Every setter **rejects a double-set with a panic**: two subsystems
//! configuring the same knob on one config is a wiring bug that last-wins
//! semantics would hide (the deprecated `with_*` chains did exactly that
//! with the progress counter).
//!
//! # Example
//!
//! ```
//! use pclass_algos::LinearClassifier;
//! use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
//! use pclass_engine::EngineConfig;
//! use std::sync::Arc;
//!
//! let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(100);
//! let trace = TraceGenerator::new(&rs, 7).generate(512);
//!
//! let engine = EngineConfig::new()
//!     .workers(2)
//!     .batch_size(128)
//!     .engine(Arc::new(LinearClassifier::new(rs.clone())));
//! let run = engine.classify_trace(&trace);
//! assert_eq!(run.results, trace.ground_truth(&rs));
//! ```

use crate::live::{LiveClassifier, LiveEngine};
use crate::tenant::{TenantRouter, TenantSpec};
use crate::{Engine, SharedClassifier, DEFAULT_BATCH_SIZE};
use pclass_algos::{Classifier, HotCacheConfig, LaneWidth};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// The shared builder every serving front end is constructed through.
/// See the [module docs](self) for which front end consumes which knob.
///
/// Unset knobs resolve to their defaults at read time; every setter
/// panics on a double-set (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    workers: Option<usize>,
    batch: Option<usize>,
    progress: Option<Arc<AtomicU64>>,
    lanes: Option<LaneWidth>,
    hot_cache: Option<HotCacheConfig>,
    memory_budget: Option<usize>,
}

impl EngineConfig {
    /// The default configuration: 1 worker, [`DEFAULT_BATCH_SIZE`], no
    /// progress hook, default [`LaneWidth`], no hot cache.
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// Sets the number of worker shards (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if the worker count was already set.
    pub fn workers(mut self, workers: usize) -> EngineConfig {
        assert!(
            self.workers.is_none(),
            "EngineConfig::workers set twice — the worker count is already \
             configured; a second value would silently override the first \
             subsystem's choice"
        );
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the sub-batch size (clamped to at least 1).  Smaller batches
    /// let live front ends pick up published generations sooner.
    ///
    /// # Panics
    ///
    /// Panics if the batch size was already set.
    pub fn batch_size(mut self, batch: usize) -> EngineConfig {
        assert!(
            self.batch.is_none(),
            "EngineConfig::batch_size set twice — the sub-batch size is \
             already configured; a second value would silently override the \
             first subsystem's choice"
        );
        self.batch = Some(batch.max(1));
        self
    }

    /// Attaches a shared serving-progress counter: the live front ends add
    /// the size of each finished sub-batch, across every classify call —
    /// the pacing hook for sustained update streams (an updater spreads
    /// its stream over packets actually served instead of wall-clock
    /// time).
    ///
    /// # Panics
    ///
    /// Panics if a counter is already attached: two subsystems wiring
    /// pacing counters into one config is a bug that silent last-wins
    /// replacement would hide.
    pub fn progress(mut self, counter: Arc<AtomicU64>) -> EngineConfig {
        assert!(
            self.progress.is_none(),
            "EngineConfig::progress set twice — a progress counter is \
             already attached, and replacing it would silently detach the \
             first subscriber's pacing"
        );
        self.progress = Some(counter);
        self
    }

    /// Sets the flat-arena lane width carried by this config (consumed by
    /// roster/classifier construction, not by the engines; see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if the lane width was already set.
    pub fn lane_width(mut self, lanes: LaneWidth) -> EngineConfig {
        assert!(
            self.lanes.is_none(),
            "EngineConfig::lane_width set twice — the lane width is already \
             configured; a second value would silently override the first \
             subsystem's choice"
        );
        self.lanes = Some(lanes);
        self
    }

    /// Puts an exact-match hot-flow cache
    /// ([`pclass_algos::hotcache::HotCache`]) in front of the classifier:
    /// each [`Engine`]/[`LiveEngine`] worker shard gets its own cache with
    /// this geometry, and a [`TenantRouter`] gives every tenant its own
    /// cache with `capacity / tenant_count` entries (the per-tenant entry
    /// budget), so one hot tenant cannot cache-starve its neighbours.
    ///
    /// # Panics
    ///
    /// Panics if a hot-cache geometry was already set.
    pub fn hot_cache(mut self, cache: HotCacheConfig) -> EngineConfig {
        assert!(
            self.hot_cache.is_none(),
            "EngineConfig::hot_cache set twice — a cache geometry is \
             already configured; a second value would silently override the \
             first subsystem's choice"
        );
        self.hot_cache = Some(cache);
        self
    }

    /// Sets the router-wide memory budget in bytes, consumed by
    /// [`TenantRouter`] admission: a tenant whose classifier plus cache
    /// slice would push the roster's total past the budget is rejected
    /// with [`crate::AdmissionError::RouterOverBudget`].  The
    /// single-tenant front ends do not consume it.
    ///
    /// # Panics
    ///
    /// Panics if the budget was already set.
    pub fn memory_budget(mut self, bytes: usize) -> EngineConfig {
        assert!(
            self.memory_budget.is_none(),
            "EngineConfig::memory_budget set twice — a memory budget is \
             already configured; a second value would silently override the \
             first subsystem's choice"
        );
        self.memory_budget = Some(bytes);
        self
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.workers.unwrap_or(1)
    }

    /// Sub-batch size.
    pub fn batch(&self) -> usize {
        self.batch.unwrap_or(DEFAULT_BATCH_SIZE)
    }

    /// The attached progress counter, if any.
    pub fn progress_counter(&self) -> Option<&Arc<AtomicU64>> {
        self.progress.as_ref()
    }

    /// The flat-arena lane width this config carries.
    pub fn lanes(&self) -> LaneWidth {
        self.lanes.unwrap_or_default()
    }

    /// The hot-flow cache geometry, if one is configured.
    pub fn hot_cache_config(&self) -> Option<HotCacheConfig> {
        self.hot_cache
    }

    /// The router-wide memory budget in bytes, if one is configured.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Builds a fixed [`Engine`] whose worker shards all share one
    /// classifier — the common deployment, mirroring the paper's engines
    /// sharing one read-only memory image.
    pub fn engine(&self, classifier: SharedClassifier) -> Engine {
        self.engine_with(|_| Arc::clone(&classifier))
    }

    /// Builds a fixed [`Engine`], calling `factory(worker_index)` once per
    /// shard — for workers that should own their own copy of the search
    /// structure (e.g. to place it in that worker's NUMA domain).
    pub fn engine_with(&self, factory: impl FnMut(usize) -> SharedClassifier) -> Engine {
        Engine::from_config(self, factory)
    }

    /// Builds a [`LiveEngine`] serving an epoch-swap [`LiveClassifier`],
    /// re-snapshotting per sub-batch; inherits this config's progress
    /// hook.
    pub fn live_engine<C: Classifier + Clone + Send + Sync>(
        &self,
        live: Arc<LiveClassifier<C>>,
    ) -> LiveEngine<C> {
        LiveEngine::from_config(self, live)
    }

    /// Builds a [`TenantRouter`] over `(spec, classifier)` pairs — every
    /// tenant is declared through a [`TenantSpec`] (name, scheduling
    /// weight, memory budget, cache share), admitted in iteration order
    /// (handles come back from [`TenantRouter::tenant_ids`] in the same
    /// order), each classifier is wrapped in its own [`LiveClassifier`]
    /// (per-tenant churn isolation), and tagged traffic is served on this
    /// config's shared worker pool; inherits the progress hook, the hot
    /// cache (sliced over the roster by cache share) and the router-wide
    /// [`EngineConfig::memory_budget`].
    ///
    /// # Panics
    ///
    /// Panics if the roster is empty or any declared tenant fails
    /// admission (runtime [`TenantRouter::admit`] returns the error
    /// instead).
    pub fn tenant_router<C: Classifier + Clone + Send + Sync>(
        &self,
        tenants: impl IntoIterator<Item = (TenantSpec, C)>,
    ) -> TenantRouter<C> {
        TenantRouter::from_config(self, tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_algos::LinearClassifier;
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use std::sync::atomic::Ordering;

    fn workload(rules: usize, packets: usize) -> (pclass_types::RuleSet, pclass_types::Trace) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 91).generate(rules);
        let trace = TraceGenerator::new(&rs, 92).generate(packets);
        (rs, trace)
    }

    #[test]
    fn defaults_match_the_historical_constructors() {
        let config = EngineConfig::new();
        assert_eq!(config.worker_count(), 1);
        assert_eq!(config.batch(), DEFAULT_BATCH_SIZE);
        assert!(config.progress_counter().is_none());
        assert_eq!(config.lanes(), LaneWidth::default());
        assert!(config.hot_cache_config().is_none());
        assert!(config.memory_budget_bytes().is_none());
        assert_eq!(EngineConfig::default().batch(), config.batch());
    }

    #[test]
    fn workers_and_batch_clamp_to_one() {
        let config = EngineConfig::new().workers(0).batch_size(0);
        assert_eq!(config.worker_count(), 1);
        assert_eq!(config.batch(), 1);
    }

    #[test]
    fn one_config_builds_every_front_end() {
        let (rs, trace) = workload(80, 400);
        let truth = trace.ground_truth(&rs);
        let config = EngineConfig::new().workers(3).batch_size(64);

        let engine = config.engine(Arc::new(LinearClassifier::new(rs.clone())));
        assert_eq!(engine.workers(), 3);
        assert_eq!(engine.batch_size(), 64);
        assert_eq!(engine.classify_trace(&trace).results, truth);

        let live = Arc::new(LiveClassifier::new(LinearClassifier::new(rs.clone())));
        let live_engine = config.live_engine(Arc::clone(&live));
        assert_eq!(live_engine.workers(), 3);
        assert_eq!(live_engine.classify_trace(&trace).results, truth);

        let router =
            config.tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs.clone()))]);
        assert_eq!(router.workers(), 3);
        assert_eq!(router.batch_size(), 64);
        assert_eq!(router.tenant_count(), 1);
    }

    #[test]
    fn engine_with_calls_the_factory_once_per_shard() {
        let (rs, trace) = workload(40, 120);
        let mut calls = 0usize;
        let engine = EngineConfig::new().workers(3).engine_with(|worker| {
            assert_eq!(worker, calls);
            calls += 1;
            Arc::new(LinearClassifier::new(rs.clone()))
        });
        assert_eq!(calls, 3);
        assert_eq!(
            engine.classify_trace(&trace).results,
            trace.ground_truth(&rs)
        );
    }

    #[test]
    fn progress_counter_is_inherited_by_live_front_ends() {
        let (rs, trace) = workload(60, 300);
        let counter = Arc::new(AtomicU64::new(0));
        let live = Arc::new(LiveClassifier::new(LinearClassifier::new(rs.clone())));
        let engine = EngineConfig::new()
            .workers(2)
            .batch_size(32)
            .progress(Arc::clone(&counter))
            .live_engine(live);
        engine.classify_trace(&trace);
        assert_eq!(counter.load(Ordering::Relaxed), trace.len() as u64);
    }

    #[test]
    #[should_panic(expected = "progress set twice")]
    fn double_set_progress_is_rejected() {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        // The deleted `LiveEngine::with_progress` shim silently replaced
        // the first counter; the builder refuses.
        let _ = EngineConfig::new().progress(a).progress(b);
    }

    #[test]
    #[should_panic(expected = "workers set twice")]
    fn double_set_workers_is_rejected() {
        let _ = EngineConfig::new().workers(2).workers(4);
    }

    #[test]
    #[should_panic(expected = "batch_size set twice")]
    fn double_set_batch_size_is_rejected() {
        let _ = EngineConfig::new().batch_size(64).batch_size(64);
    }

    #[test]
    #[should_panic(expected = "lane_width set twice")]
    fn double_set_lane_width_is_rejected() {
        let _ = EngineConfig::new()
            .lane_width(LaneWidth::X4)
            .lane_width(LaneWidth::X8);
    }

    #[test]
    #[should_panic(expected = "hot_cache set twice")]
    fn double_set_hot_cache_is_rejected() {
        let _ = EngineConfig::new()
            .hot_cache(HotCacheConfig::default())
            .hot_cache(HotCacheConfig::new(64, 2));
    }

    #[test]
    #[should_panic(expected = "memory_budget set twice")]
    fn double_set_memory_budget_is_rejected() {
        let _ = EngineConfig::new()
            .memory_budget(1 << 20)
            .memory_budget(1 << 21);
    }

    #[test]
    fn memory_budget_rides_the_config_into_the_router() {
        let (rs, _) = workload(40, 0);
        let config = EngineConfig::new().memory_budget(64 << 20);
        assert_eq!(config.memory_budget_bytes(), Some(64 << 20));
        let router =
            config.tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs.clone()))]);
        assert_eq!(router.memory_budget(), Some(64 << 20));
        assert!(router.memory_in_use() > 0);
    }

    #[test]
    fn hot_cache_rides_the_config() {
        let config = EngineConfig::new().hot_cache(HotCacheConfig::new(256, 2));
        assert_eq!(config.hot_cache_config(), Some(HotCacheConfig::new(256, 2)));
        // The geometry survives a clone (configs are reused across cells).
        assert_eq!(
            config.clone().hot_cache_config(),
            Some(HotCacheConfig::new(256, 2))
        );
    }

    #[test]
    fn cached_engine_serves_identically_and_reports_cache_stats() {
        let (rs, trace) = workload(120, 600);
        let truth = trace.ground_truth(&rs);
        let engine = EngineConfig::new()
            .workers(2)
            .batch_size(64)
            .hot_cache(HotCacheConfig::new(512, 4))
            .engine(Arc::new(LinearClassifier::new(rs.clone())));
        // First pass fills, second pass hits; decisions never change.
        assert_eq!(engine.classify_trace(&trace).results, truth);
        assert_eq!(engine.classify_trace(&trace).results, truth);
        let stats = engine.cache_stats().expect("cache configured");
        assert!(stats.hits > 0, "second pass must hit");
        assert_eq!(stats.hits + stats.misses, 2 * trace.len() as u64);
        // An uncached engine reports no cache stats.
        let plain = EngineConfig::new().engine(Arc::new(LinearClassifier::new(rs.clone())));
        assert!(plain.cache_stats().is_none());
    }
}
