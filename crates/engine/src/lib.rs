//! Batched, multi-core serving layer over every classifier.
//!
//! The paper's parallel deployment — several search engines sharing one
//! read-only structure, each consuming a shard of the traffic — is not
//! specific to the hardware model: any [`Classifier`] can serve a sharded
//! trace the same way.  This crate generalises the sharding previously
//! hard-coded for the accelerator in `pclass-core::parallel` into an
//! [`Engine`] that
//!
//! * owns one shared classifier handle per worker shard
//!   (`Arc<dyn Classifier + Send + Sync>`),
//! * splits a [`Trace`] into the deterministic balanced chunks of
//!   [`pclass_types::shard_slices`] over `std::thread::scope` workers,
//! * drives each shard through [`Classifier::classify_batch`] in
//!   cache-friendly sub-batches (so classifiers with a batched override —
//!   RFC's phase-major loop, the flat decision-tree arenas'
//!   level-synchronous walk — get their locality win per shard), and
//! * merges the per-worker outputs back in trace order, together with a
//!   machine-readable [`ThroughputReport`].
//!
//! The report serializes to JSON through the workspace serde shim; the
//! `throughput` binary in `pclass-bench` uses that to record the
//! performance trajectory (`BENCH_throughput.json`) in CI.
//!
//! Determinism: results are *always* packet-for-packet identical to a
//! sequential per-packet run of the same classifier — sharding only changes
//! wall-clock time, never decisions.  The integration tests enforce this
//! for every classifier in the workspace.
//!
//! Every serving front end — the fixed [`Engine`], the epoch-swap
//! [`LiveEngine`], and the multi-tenant [`tenant::TenantRouter`] — is
//! built through one [`EngineConfig`] builder (the older per-type
//! constructors are gone).  The builder can also put an exact-match
//! hot-flow cache in front of any of them ([`EngineConfig::hot_cache`]):
//! each worker shard probes its own cache first and falls cache misses
//! through to the classifier as one dense batch.
//!
//! # Example
//!
//! Serve a trace over two workers and check the merged results are
//! packet-for-packet what a sequential linear search produces:
//!
//! ```
//! use pclass_engine::{EngineConfig, SharedClassifier};
//! use pclass_algos::LinearClassifier;
//! use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
//! use std::sync::Arc;
//!
//! let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(100);
//! let trace = TraceGenerator::new(&rs, 7).generate(512);
//!
//! let shared: SharedClassifier = Arc::new(LinearClassifier::new(rs.clone()));
//! let engine = EngineConfig::new().workers(2).batch_size(128).engine(shared);
//! let run = engine.classify_trace(&trace);
//!
//! assert_eq!(run.results, trace.ground_truth(&rs));
//! assert_eq!(run.report.per_worker.len(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod live;
pub mod tenant;

pub use config::EngineConfig;
pub use live::{LiveClassifier, LiveEngine};
pub use tenant::{
    AdmissionError, TaggedPacket, TaggedTrace, TenantId, TenantReport, TenantRouter, TenantRun,
    TenantSpec, UnknownTenant,
};

use pclass_algos::Classifier;
use pclass_types::{MatchResult, PacketHeader, Trace};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// A classifier handle the engine can share across worker threads.
pub type SharedClassifier = Arc<dyn Classifier + Send + Sync>;

/// Default number of packets handed to [`Classifier::classify_batch`] at a
/// time.  Large enough to amortise per-batch overhead and let batched
/// implementations (RFC's phase-major loop) reuse their tables, small
/// enough that the copied header block stays in L1.
pub const DEFAULT_BATCH_SIZE: usize = 512;

/// Throughput of one worker over its shard.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerReport {
    /// Worker index (shard index in trace order).
    pub worker: usize,
    /// Packets this worker classified.
    pub pkts: u64,
    /// Wall-clock nanoseconds the worker spent classifying.
    pub wall_ns: u64,
    /// Millions of packets per second sustained by this worker.
    pub mpps: f64,
}

/// Merged throughput measurement of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThroughputReport {
    /// Total packets classified.
    pub pkts: u64,
    /// Wall-clock nanoseconds for the whole run (slowest worker plus
    /// fork/join overhead).
    pub wall_ns: u64,
    /// Millions of packets per second over the whole run.
    pub mpps: f64,
    /// Per-worker breakdown, one entry per shard.
    pub per_worker: Vec<WorkerReport>,
}

/// Output of [`Engine::classify_trace`]: the merged decisions in trace
/// order plus the throughput measurement.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// One result per trace packet, in arrival order.
    pub results: Vec<MatchResult>,
    /// The throughput measurement of this run.
    pub report: ThroughputReport,
}

pub(crate) fn mpps(pkts: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        return 0.0;
    }
    // pkts / (wall_ns / 1e9) / 1e6
    pkts as f64 * 1e3 / wall_ns as f64
}

/// A bank of worker shards serving one classifier.
///
/// ```
/// use pclass_algos::LinearClassifier;
/// use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
/// use pclass_engine::EngineConfig;
/// use std::sync::Arc;
///
/// let rs = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(200);
/// let trace = TraceGenerator::new(&rs, 2).generate(1_000);
/// let engine = EngineConfig::new()
///     .workers(4)
///     .engine(Arc::new(LinearClassifier::new(rs.clone())));
/// let run = engine.classify_trace(&trace);
/// assert_eq!(run.results, trace.ground_truth(&rs));
/// assert_eq!(run.report.pkts, 1_000);
/// ```
pub struct Engine {
    shards: Vec<SharedClassifier>,
    batch: usize,
    /// Per-shard hot-flow caches when [`EngineConfig::hot_cache`] is set
    /// (kept alongside the type-erased shard handles for stats reporting).
    caches: Vec<Arc<pclass_algos::HotCache>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.shards.len())
            .field("batch", &self.batch)
            .field("classifier", &self.name())
            .finish()
    }
}

impl Engine {
    /// The canonical constructor: used by [`EngineConfig::engine_with`]
    /// (and through it [`EngineConfig::engine`]), which every public
    /// construction path funnels into.
    pub(crate) fn from_config(
        config: &EngineConfig,
        mut factory: impl FnMut(usize) -> SharedClassifier,
    ) -> Engine {
        let mut shards: Vec<SharedClassifier> =
            (0..config.worker_count()).map(&mut factory).collect();
        let mut caches = Vec::new();
        if let Some(geometry) = config.hot_cache_config() {
            // Each worker shard gets its own hot-flow cache in front of its
            // classifier handle: no cross-worker contention, and the shard
            // only ever sees its own slice of the trace anyway.
            shards = shards
                .into_iter()
                .map(|shard| {
                    let cached = pclass_algos::CachedClassifier::new(shard, geometry);
                    caches.push(Arc::clone(cached.cache()));
                    Arc::new(cached) as SharedClassifier
                })
                .collect();
        }
        Engine {
            shards,
            batch: config.batch(),
            caches,
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Current sub-batch size.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Aggregated hit/miss/eviction counters of the per-shard hot-flow
    /// caches, or `None` when the engine was built without
    /// [`EngineConfig::hot_cache`].  Counters are cumulative across every
    /// [`Engine::classify_trace`] call.
    pub fn cache_stats(&self) -> Option<pclass_types::CacheStats> {
        if self.caches.is_empty() {
            return None;
        }
        let mut total = pclass_types::CacheStats::default();
        for cache in &self.caches {
            total.merge(&cache.stats());
        }
        Some(total)
    }

    /// Name reported by the shard classifiers (they are all the same
    /// algorithm by construction; the first shard's name is used).
    pub fn name(&self) -> &'static str {
        self.shards[0].name()
    }

    /// Classifies a whole trace, sharding it across the workers.
    ///
    /// Results are merged in trace order and are identical to what a
    /// sequential per-packet loop over the same classifier would produce.
    pub fn classify_trace(&self, trace: &Trace) -> EngineRun {
        run_sharded(
            trace,
            self.shards.len(),
            self.batch,
            |worker, headers, results| self.shards[worker].classify_batch(headers, results),
        )
    }
}

/// The sharded serving loop shared by [`Engine`] and [`live::LiveEngine`]:
/// splits the trace into deterministic balanced shards, drives each worker
/// through `serve_batch(worker, headers, results)` in `batch`-sized
/// sub-batches, and merges the per-worker outputs back in trace order with
/// per-worker timing.  The engines differ only in how `serve_batch`
/// obtains its classifier (a fixed shard handle vs a fresh epoch snapshot
/// per sub-batch).
pub(crate) fn run_sharded<F>(
    trace: &Trace,
    workers: usize,
    batch: usize,
    serve_batch: F,
) -> EngineRun
where
    F: Fn(usize, &[PacketHeader], &mut Vec<MatchResult>) + Sync,
{
    let started = Instant::now();
    let shards = trace.shards(workers);
    let mut partials: Vec<Option<(Vec<MatchResult>, u64)>> = (0..workers).map(|_| None).collect();

    let serve_shard = |worker: usize, slice: &[pclass_types::TraceEntry]| {
        let worker_started = Instant::now();
        let mut results = Vec::with_capacity(slice.len());
        let mut headers: Vec<PacketHeader> = Vec::with_capacity(batch.min(slice.len()));
        for sub in slice.chunks(batch) {
            headers.clear();
            headers.extend(sub.iter().map(|e| e.header));
            serve_batch(worker, &headers, &mut results);
        }
        let wall_ns = worker_started.elapsed().as_nanos() as u64;
        (results, wall_ns)
    };

    if workers == 1 {
        // Single shard: serve inline on the caller thread.  Spawning a
        // scoped thread costs tens of microseconds — pure overhead that
        // would be charged to every measurement of a fast classifier.
        partials[0] = Some(serve_shard(0, shards[0]));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slice) in shards.into_iter().enumerate() {
                if slice.is_empty() {
                    partials[i] = Some((Vec::new(), 0));
                    continue;
                }
                let serve = &serve_shard;
                handles.push((i, scope.spawn(move || serve(i, slice))));
            }
            for (i, handle) in handles {
                partials[i] = Some(handle.join().expect("engine worker panicked"));
            }
        });
    }

    let mut results = Vec::with_capacity(trace.len());
    let mut per_worker = Vec::with_capacity(workers);
    for (worker, partial) in partials.into_iter().enumerate() {
        let (shard_results, wall_ns) = partial.expect("worker output missing");
        let pkts = shard_results.len() as u64;
        per_worker.push(WorkerReport {
            worker,
            pkts,
            wall_ns,
            mpps: mpps(pkts, wall_ns),
        });
        results.extend(shard_results);
    }
    debug_assert_eq!(results.len(), trace.len());

    let wall_ns = started.elapsed().as_nanos() as u64;
    let pkts = results.len() as u64;
    EngineRun {
        results,
        report: ThroughputReport {
            pkts,
            wall_ns,
            mpps: mpps(pkts, wall_ns),
            per_worker,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_algos::{
        HiCutsClassifier, HiCutsConfig, HyperCutsClassifier, HyperCutsConfig, LinearClassifier,
        RfcClassifier,
    };
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use pclass_core::builder::{BuildConfig, CutAlgorithm};
    use pclass_core::AcceleratorClassifier;
    use pclass_tcam::TcamClassifier;

    fn workload(rules: usize, packets: usize) -> (pclass_types::RuleSet, Trace) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 31).generate(rules);
        let trace = TraceGenerator::new(&rs, 32).generate(packets);
        (rs, trace)
    }

    // Local minimal roster: the canonical `pclass_bench::serving_roster`
    // lives downstream of this crate (pclass-bench depends on pclass-engine),
    // so the unit tests keep their own copy; workspace-level coverage in
    // `tests/engine_equivalence.rs` uses the canonical one.
    fn all_classifiers(rs: &pclass_types::RuleSet) -> Vec<SharedClassifier> {
        let hicuts = HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults());
        let hypercuts = HyperCutsClassifier::build(rs, &HyperCutsConfig::paper_defaults());
        vec![
            Arc::new(LinearClassifier::new(rs.clone())),
            Arc::new(hicuts.flatten()),
            Arc::new(hicuts),
            Arc::new(hypercuts.flatten()),
            Arc::new(hypercuts),
            Arc::new(RfcClassifier::build(rs).expect("RFC fits")),
            Arc::new(TcamClassifier::program(rs).expect("TCAM programs")),
            Arc::new(
                AcceleratorClassifier::build(
                    rs,
                    &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts),
                )
                .expect("program fits"),
            ),
        ]
    }

    #[test]
    fn every_classifier_serves_identically_at_every_worker_count() {
        let (rs, trace) = workload(250, 1_200);
        let truth = trace.ground_truth(&rs);
        for classifier in all_classifiers(&rs) {
            for workers in [1usize, 2, 4, 7] {
                let engine = EngineConfig::new()
                    .workers(workers)
                    .engine(Arc::clone(&classifier));
                assert_eq!(engine.workers(), workers);
                let run = engine.classify_trace(&trace);
                assert_eq!(run.results, truth, "{} x{workers}", engine.name());
                assert_eq!(run.report.pkts, trace.len() as u64);
                assert_eq!(run.report.per_worker.len(), workers);
                let shard_sum: u64 = run.report.per_worker.iter().map(|w| w.pkts).sum();
                assert_eq!(shard_sum, trace.len() as u64);
            }
        }
    }

    #[test]
    fn empty_trace_and_tiny_traces_are_served() {
        let (rs, _) = workload(50, 1);
        let classifier: SharedClassifier = Arc::new(LinearClassifier::new(rs.clone()));
        let engine = EngineConfig::new()
            .workers(4)
            .engine(Arc::clone(&classifier));

        let empty = Trace::from_headers("empty", vec![]);
        let run = engine.classify_trace(&empty);
        assert!(run.results.is_empty());
        assert_eq!(run.report.pkts, 0);
        assert_eq!(run.report.per_worker.len(), 4);
        assert!(run.report.per_worker.iter().all(|w| w.pkts == 0));

        // Fewer packets than workers: trailing shards idle, order preserved.
        let tiny = TraceGenerator::new(&rs, 5).generate(3);
        let run = engine.classify_trace(&tiny);
        assert_eq!(run.results, tiny.ground_truth(&rs));
        assert_eq!(run.report.pkts, 3);
    }

    #[test]
    fn sub_batch_size_does_not_change_results() {
        let (rs, trace) = workload(120, 700);
        let truth = trace.ground_truth(&rs);
        let classifier: SharedClassifier = Arc::new(RfcClassifier::build(&rs).unwrap());
        for batch in [1usize, 3, 64, 512, 10_000] {
            let engine = EngineConfig::new()
                .workers(3)
                .batch_size(batch)
                .engine(Arc::clone(&classifier));
            assert_eq!(engine.batch_size(), batch.max(1));
            assert_eq!(
                engine.classify_trace(&trace).results,
                truth,
                "batch {batch}"
            );
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (rs, trace) = workload(40, 60);
        let engine = EngineConfig::new()
            .workers(0)
            .engine(Arc::new(LinearClassifier::new(rs.clone())));
        assert_eq!(engine.workers(), 1);
        assert_eq!(
            engine.classify_trace(&trace).results,
            trace.ground_truth(&rs)
        );
    }

    #[test]
    fn cached_shards_serve_every_classifier_identically() {
        // The hot cache is a transparent layer: with it in front, every
        // classifier still produces the ground truth at every worker count,
        // on a cold and on a warm cache.
        let (rs, trace) = workload(150, 800);
        let truth = trace.ground_truth(&rs);
        for classifier in all_classifiers(&rs) {
            for workers in [1usize, 3] {
                let engine = EngineConfig::new()
                    .workers(workers)
                    .batch_size(128)
                    .hot_cache(pclass_algos::HotCacheConfig::new(256, 4))
                    .engine(Arc::clone(&classifier));
                assert_eq!(engine.name(), classifier.name(), "name passes through");
                for pass in 0..2 {
                    let run = engine.classify_trace(&trace);
                    assert_eq!(
                        run.results,
                        truth,
                        "{} x{workers} pass {pass}",
                        engine.name()
                    );
                }
                let stats = engine.cache_stats().expect("cache configured");
                assert!(stats.hits > 0, "{}: warm pass must hit", engine.name());
            }
        }
    }

    #[test]
    fn throughput_report_serializes_to_json() {
        let report = ThroughputReport {
            pkts: 2,
            wall_ns: 1_000,
            mpps: 2.0,
            per_worker: vec![WorkerReport {
                worker: 0,
                pkts: 2,
                wall_ns: 900,
                mpps: 2.2,
            }],
        };
        assert_eq!(
            serde::json::to_string(&report),
            r#"{"pkts":2,"wall_ns":1000,"mpps":2.0,"per_worker":[{"worker":0,"pkts":2,"wall_ns":900,"mpps":2.2}]}"#
        );
    }
}
