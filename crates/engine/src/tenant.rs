//! Multi-tenant serving: many isolated rulesets on one shared worker pool,
//! governed by a declarative per-tenant policy layer.
//!
//! The serving stack so far is one process = one ruleset, but the
//! deployment shape the paper's low-power classification setting targets —
//! per-customer ACLs, per-VPC firewalls — serves many *isolated* tenants
//! on shared cores.  [`TenantRouter`] is that front end:
//!
//! * every tenant is declared through a [`TenantSpec`] (name, scheduling
//!   **weight**, per-tenant **memory budget**, hot-cache **slice share**),
//!   the only construction path — there is no positional roster API;
//! * the roster itself is **epoch-swapped**: [`TenantRouter::admit`] and
//!   [`TenantRouter::evict`] publish a new roster snapshot the same way a
//!   [`LiveClassifier`] publishes a new generation, so serving workers
//!   never block on lifecycle changes — they pick the new roster up at the
//!   next sub-batch boundary;
//! * each tenant holds its own [`LiveClassifier`], so **churn is isolated
//!   per tenant**: one tenant's [`LiveClassifier::apply_batch`] touches
//!   only its own writer copy and snapshot slot and never blocks another
//!   tenant's readers;
//! * tagged traffic ([`TaggedTrace`]) is served on a **shared worker
//!   pool** with cross-tenant batching: each worker takes a sub-batch of
//!   the interleaved stream, groups it by tenant, serves the groups in
//!   **descending weight order**, and classifies each group against one
//!   snapshot per (tenant, sub-batch);
//! * every run returns **per-tenant accounting** ([`TenantReport`]:
//!   packets, busy-time mpps, SLO-relative throughput, p50/p95/p99
//!   batch-latency percentiles) plus a [`FairnessSummary`] carrying both
//!   the rate-based and the **weighted** Jain index.
//!
//! # Handles and stale-hit safety
//!
//! A [`TenantId`] is an opaque handle `(slot, admission epoch)` minted by
//! `admit`/construction.  Eviction retires the epoch: packets tagged with
//! a retired handle are counted as *unroutable*
//! ([`TenantRun::unroutable`]) and decided [`MatchResult::NoMatch`],
//! never silently served by the slot's next occupant.  Hot-cache probe
//! tags fold the admission epoch in next to the classifier generation, so
//! even though an evicted tenant's cache slice is **recycled** to a later
//! admission (admission on the datapath must not allocate megabytes), its
//! physically present entries are structurally unreachable — a stale hit
//! across eviction generations is impossible by construction, which the
//! workspace negative tests pin.
//!
//! # Memory budgeting
//!
//! Admission charges each tenant's classifier bytes plus its cache-slice
//! bytes into a [`MemoryReport`].  A spec-level budget
//! ([`TenantSpec::memory_budget`]) bounds one tenant; a router-wide
//! budget ([`crate::EngineConfig::memory_budget`]) bounds the roster —
//! [`TenantRouter::admit`] rejects (it does not panic) when either would
//! be exceeded.
//!
//! Construction goes through [`crate::EngineConfig::tenant_router`], the
//! same builder the single-tenant engines use.
//!
//! Determinism: results are packet-for-packet what each tenant's own
//! classifier decides — a router with one tenant produces exactly the
//! output of a [`crate::LiveEngine`] over that classifier, and under
//! interleaved cross-tenant traffic each tenant's result subsequence
//! equals its solo run.  The workspace property tests enforce both, plus
//! that a mid-trace evict/admit cycle leaves surviving tenants
//! bit-identical.

use crate::live::LiveClassifier;
use crate::{EngineConfig, EngineRun, ThroughputReport, WorkerReport};
use pclass_algos::{Classifier, HotCache, HotCacheConfig};
use pclass_types::{
    shard_slices, CacheStats, FairnessSummary, LatencyPercentiles, MatchResult, MemoryReport,
    PacketHeader, Trace,
};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// An opaque handle to one tenant of a [`TenantRouter`]: the roster slot
/// plus the admission epoch that minted it.  Handles are returned by
/// [`TenantRouter::admit`] (and [`TenantRouter::tenant_ids`] after
/// construction); eviction retires the epoch, so a handle can never
/// alias the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId {
    slot: u32,
    epoch: u32,
}

impl TenantId {
    /// Fabricates a handle from raw parts — useful in tests; a fabricated
    /// handle routes nowhere unless it matches a live `(slot, epoch)`
    /// pair (epochs start at 1, so `epoch: 0` never resolves).
    pub fn new(slot: u32, epoch: u32) -> TenantId {
        TenantId { slot, epoch }
    }

    /// The roster slot this handle addresses.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }

    /// The admission epoch that minted this handle (1-based; each
    /// successful `admit` — including construction — takes the next one).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}@e{}", self.slot, self.epoch)
    }
}

/// Declares one tenant: the only way to put a tenant on a
/// [`TenantRouter`] roster (construction takes `(TenantSpec, classifier)`
/// pairs, [`TenantRouter::admit`] takes one of each at runtime).
///
/// A take-self builder in the [`EngineConfig`] style: unset knobs resolve
/// to their defaults at read time, and every setter **panics on a
/// double-set** — two subsystems configuring the same knob on one spec is
/// a wiring bug that last-wins semantics would hide.
///
/// Defaults: weight 1, no per-tenant memory budget, cache share equal to
/// the weight.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    name: String,
    weight: Option<u32>,
    memory_budget: Option<usize>,
    cache_share: Option<u32>,
}

impl TenantSpec {
    /// Starts a spec for a named tenant.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: None,
            memory_budget: None,
            cache_share: None,
        }
    }

    /// Sets the tenant's scheduling weight (clamped to at least 1): the
    /// weighted-fair interleave offers this tenant `weight / Σ weights`
    /// of the stream, and sub-batch service visits heavier tenants first.
    ///
    /// # Panics
    ///
    /// Panics if the weight was already set.
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        assert!(
            self.weight.is_none(),
            "TenantSpec::weight set twice — the scheduling weight is already \
             configured; a second value would silently override the first \
             subsystem's choice"
        );
        self.weight = Some(weight.max(1));
        self
    }

    /// Sets the tenant's memory budget in bytes: admission fails with
    /// [`AdmissionError::TenantOverBudget`] when the classifier plus the
    /// tenant's cache slice would exceed it.
    ///
    /// # Panics
    ///
    /// Panics if the budget was already set.
    pub fn memory_budget(mut self, bytes: usize) -> TenantSpec {
        assert!(
            self.memory_budget.is_none(),
            "TenantSpec::memory_budget set twice — a memory budget is already \
             configured; a second value would silently override the first \
             subsystem's choice"
        );
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the tenant's share of the router-wide hot-cache entry budget
    /// (relative to the other tenants' shares; 0 means no cache slice).
    /// When unset, the cache share follows the scheduling weight.
    ///
    /// # Panics
    ///
    /// Panics if the share was already set.
    pub fn cache_share(mut self, share: u32) -> TenantSpec {
        assert!(
            self.cache_share.is_none(),
            "TenantSpec::cache_share set twice — a cache share is already \
             configured; a second value would silently override the first \
             subsystem's choice"
        );
        self.cache_share = Some(share);
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheduling weight this spec resolves to (default 1).
    pub fn weight_value(&self) -> u32 {
        self.weight.unwrap_or(1)
    }

    /// The per-tenant memory budget, if one was declared.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The cache share this spec resolves to (default: the weight).
    pub fn cache_share_value(&self) -> u32 {
        self.cache_share.unwrap_or_else(|| self.weight_value())
    }
}

/// Why [`TenantRouter::admit`] (or roster construction, which panics with
/// the same message) refused a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's classifier plus cache slice exceeds its own
    /// [`TenantSpec::memory_budget`].
    TenantOverBudget {
        /// The refused tenant's name.
        name: String,
        /// Bytes the tenant needs (classifier + cache slice).
        needs: usize,
        /// The spec's budget.
        budget: usize,
    },
    /// Admitting the tenant would push the roster past the router-wide
    /// [`crate::EngineConfig::memory_budget`].
    RouterOverBudget {
        /// The refused tenant's name.
        name: String,
        /// Bytes the tenant needs (classifier + cache slice).
        needs: usize,
        /// Bytes already in use (live tenants plus recycled cache slices).
        in_use: usize,
        /// The router-wide budget.
        budget: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantOverBudget {
                name,
                needs,
                budget,
            } => write!(
                f,
                "tenant {name} needs {needs} bytes, over its {budget}-byte budget"
            ),
            AdmissionError::RouterOverBudget {
                name,
                needs,
                in_use,
                budget,
            } => write!(
                f,
                "tenant {name} needs {needs} bytes, but {in_use} of the \
                 router's {budget}-byte budget are in use"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The handle passed to [`TenantRouter::evict`] does not resolve to a
/// live tenant (never admitted, or already evicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownTenant(pub TenantId);

impl std::fmt::Display for UnknownTenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown or evicted tenant {}", self.0)
    }
}

impl std::error::Error for UnknownTenant {}

/// One packet of tagged traffic: the header plus the tenant whose ruleset
/// must classify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPacket {
    /// The tenant this packet belongs to.
    pub tenant: TenantId,
    /// The packet header.
    pub header: PacketHeader,
}

/// A trace of tagged packets — the multi-tenant counterpart of
/// [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedTrace {
    name: String,
    entries: Vec<TaggedPacket>,
}

impl TaggedTrace {
    /// Builds a tagged trace from explicit entries.
    pub fn new(name: impl Into<String>, entries: Vec<TaggedPacket>) -> TaggedTrace {
        TaggedTrace {
            name: name.into(),
            entries,
        }
    }

    /// Deterministically interleaves one trace per tenant handle into a
    /// single proportional-fair tagged stream: at every step the next
    /// packet comes from the tenant whose emitted share *of its own
    /// trace* is furthest behind, ties going to the earliest part — so
    /// every prefix carries each tenant in proportion to its offered
    /// load, and all traces finish together.  Per-tenant packet order is
    /// preserved: [`TaggedTrace::tenant_headers`] reproduces each input
    /// trace exactly.
    pub fn interleave(name: impl Into<String>, parts: &[(TenantId, &Trace)]) -> TaggedTrace {
        let shares: Vec<u128> = parts.iter().map(|(_, t)| t.len() as u128).collect();
        TaggedTrace::interleave_by(name, parts, &shares)
    }

    /// Weighted-fair interleave: the next packet comes from the tenant
    /// whose emitted *weight-normalised* count is furthest behind, so
    /// every prefix offers each tenant `weight / Σ weights` of the stream
    /// while its trace lasts (classic weighted round-robin; exhausted
    /// tenants drop out and the rest continue in weight ratio).
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match `parts` or contains a zero.
    pub fn interleave_weighted(
        name: impl Into<String>,
        parts: &[(TenantId, &Trace)],
        weights: &[u32],
    ) -> TaggedTrace {
        assert_eq!(
            parts.len(),
            weights.len(),
            "one weight per interleaved trace"
        );
        assert!(
            weights.iter().all(|&w| w > 0),
            "interleave weights must be positive"
        );
        let shares: Vec<u128> = weights.iter().map(|&w| w as u128).collect();
        TaggedTrace::interleave_by(name, parts, &shares)
    }

    /// The shared deficit scheduler behind both interleaves: pick the
    /// part minimising `(emitted + 1) / share`, compared by
    /// cross-multiplication to stay exact, ties to the earliest part.
    fn interleave_by(
        name: impl Into<String>,
        parts: &[(TenantId, &Trace)],
        shares: &[u128],
    ) -> TaggedTrace {
        let total: usize = parts.iter().map(|(_, t)| t.len()).sum();
        let mut next = vec![0usize; parts.len()];
        let mut entries = Vec::with_capacity(total);
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (t, (_, trace)) in parts.iter().enumerate() {
                if next[t] >= trace.len() {
                    continue;
                }
                best = Some(match best {
                    None => t,
                    Some(b) => {
                        // t is further behind than b iff
                        // (next[t]+1)/shares[t] < (next[b]+1)/shares[b].
                        let t_share = (next[t] as u128 + 1) * shares[b];
                        let b_share = (next[b] as u128 + 1) * shares[t];
                        if t_share < b_share {
                            t
                        } else {
                            b
                        }
                    }
                });
            }
            let t = best.expect("fewer emitted packets than counted total");
            entries.push(TaggedPacket {
                tenant: parts[t].0,
                header: parts[t].1.entries()[next[t]].header,
            });
            next[t] += 1;
        }
        TaggedTrace {
            name: name.into(),
            entries,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tagged packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tagged packets in arrival order.
    pub fn entries(&self) -> &[TaggedPacket] {
        &self.entries
    }

    /// Number of distinct tenant handles the trace addresses.
    pub fn tenant_count(&self) -> usize {
        let mut seen: Vec<TenantId> = Vec::new();
        for p in &self.entries {
            if !seen.contains(&p.tenant) {
                seen.push(p.tenant);
            }
        }
        seen.len()
    }

    /// The headers of one tenant's packets, in arrival order.
    pub fn tenant_headers(&self, tenant: TenantId) -> Vec<PacketHeader> {
        self.entries
            .iter()
            .filter(|p| p.tenant == tenant)
            .map(|p| p.header)
            .collect()
    }

    /// Projects a full-trace result vector (as returned by
    /// [`TenantRouter::classify_tagged`]) down to one tenant's results, in
    /// that tenant's arrival order — the subsequence to compare against a
    /// solo run over [`TaggedTrace::tenant_headers`].
    ///
    /// # Panics
    ///
    /// Panics if `results` is not exactly one result per trace packet.
    pub fn tenant_results(&self, tenant: TenantId, results: &[MatchResult]) -> Vec<MatchResult> {
        assert_eq!(
            results.len(),
            self.entries.len(),
            "results must cover the whole tagged trace"
        );
        self.entries
            .iter()
            .zip(results)
            .filter(|(p, _)| p.tenant == tenant)
            .map(|(_, r)| *r)
            .collect()
    }
}

/// Per-tenant accounting of one [`TenantRouter::classify_tagged`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant's handle.
    pub tenant: TenantId,
    /// The tenant's roster name.
    pub name: String,
    /// The tenant's scheduling weight.
    pub weight: u32,
    /// Packets classified for this tenant.
    pub pkts: u64,
    /// Nanoseconds workers spent inside this tenant's classifier (summed
    /// over tenant groups; excludes grouping/scatter overhead).
    pub busy_ns: u64,
    /// Millions of packets per second over the tenant's busy time — the
    /// tenant's service rate while it was actually being served.
    pub mpps: f64,
    /// SLO-relative throughput: the tenant's share of the run's served
    /// packets divided by its share of the served tenants' weights.  1.0
    /// means the tenant received exactly its weighted fair share; 0.0
    /// when it received no traffic.
    pub slo_rel: f64,
    /// Latency percentiles over this tenant's per-sub-batch classify
    /// calls (one sample per tenant group actually served).
    pub batch_latency: LatencyPercentiles,
    /// Hit/miss/eviction counters of this tenant's hot-flow cache over
    /// *this run only* (the cumulative counters are deltaed per call), or
    /// `None` when the router was built without
    /// [`crate::EngineConfig::hot_cache`].
    pub cache: Option<CacheStats>,
}

/// Output of [`TenantRouter::classify_tagged`]: merged decisions in trace
/// order, the shared-pool throughput report, and per-tenant accounting.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// One result per tagged packet, in arrival order.
    pub results: Vec<MatchResult>,
    /// Whole-run throughput over the shared worker pool.
    pub report: ThroughputReport,
    /// Per-tenant accounting, in slot order (every tenant live at the end
    /// of the run, plus any tenant that was served and then evicted
    /// mid-run).
    pub tenants: Vec<TenantReport>,
    /// Jain fairness (rate-based and weighted) over the tenants that
    /// received traffic.
    pub fairness: FairnessSummary,
    /// Packets whose handle resolved to no live tenant (evicted mid-run,
    /// or fabricated): decided [`MatchResult::NoMatch`], never served by
    /// a slot's next occupant.
    pub unroutable: u64,
}

struct TenantEntry<C> {
    id: TenantId,
    name: String,
    weight: u32,
    cache_share: u32,
    live: Arc<LiveClassifier<C>>,
    cache: Option<Arc<HotCache>>,
    /// The cache's cumulative counters at admission time — the delta
    /// baseline for a recycled slice (its counters carry over from the
    /// previous occupant).
    cache_admitted: CacheStats,
    memory: MemoryReport,
}

impl<C> TenantEntry<C> {
    /// The probe tag for this tenant at one classifier generation: the
    /// admission epoch in the high bits next to the generation, so a
    /// recycled cache slice can never serve an entry filled under a
    /// previous occupant (or an earlier generation) — distinct for every
    /// (epoch, generation) pair with generations below 2³².
    fn cache_tag(&self, generation: u64) -> u64 {
        ((self.id.epoch as u64) << 32).wrapping_add(generation)
    }
}

/// One published roster snapshot; readers hold it by `Arc` exactly like a
/// [`LiveClassifier`] snapshot.
struct Roster<C> {
    slots: Vec<Option<Arc<TenantEntry<C>>>>,
}

impl<C> Roster<C> {
    fn get(&self, id: TenantId) -> Option<&Arc<TenantEntry<C>>> {
        self.slots
            .get(id.slot as usize)
            .and_then(|s| s.as_ref())
            .filter(|e| e.id == id)
    }

    fn live_entries(&self) -> impl Iterator<Item = &Arc<TenantEntry<C>>> {
        self.slots.iter().flatten()
    }

    /// Occupied slots in service order: descending weight, ties to the
    /// lower slot — heavier tenants are served first within a sub-batch.
    fn service_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.slots.len())
            .filter(|&s| self.slots[s].is_some())
            .collect();
        order.sort_by_key(|&s| {
            let weight = self.slots[s].as_ref().expect("filtered occupied").weight;
            (std::cmp::Reverse(weight), s)
        });
        order
    }
}

/// Lifecycle state serialised behind one lock: admit/evict are rare
/// control-plane operations, so a plain mutex (never touched by the
/// serving path) is the right tool.
struct AdmissionState {
    next_epoch: u32,
    /// Cache slices of evicted tenants, kept allocated for recycling —
    /// admission on the datapath should not allocate megabytes.  Their
    /// bytes stay charged against the budgets until reused.
    free_caches: Vec<Arc<HotCache>>,
    admitted: u64,
    evicted: u64,
}

#[derive(Clone, Default)]
struct TenantAccum {
    pkts: u64,
    busy_ns: u64,
    latencies: Vec<u64>,
}

/// A multi-tenant serving front end: [`TenantId`] → [`LiveClassifier`],
/// served on a shared worker pool with cross-tenant batching, weighted
/// fair scheduling, per-tenant memory budgets and runtime
/// admission/eviction.  See the [module docs](self); construct through
/// [`crate::EngineConfig::tenant_router`] from `(TenantSpec, classifier)`
/// pairs.
pub struct TenantRouter<C> {
    roster: RwLock<Arc<Roster<C>>>,
    admission: Mutex<AdmissionState>,
    workers: usize,
    batch: usize,
    progress: Option<Arc<std::sync::atomic::AtomicU64>>,
    cache_geometry: Option<HotCacheConfig>,
    memory_budget: Option<usize>,
}

impl<C: Classifier + Clone + Send + Sync> TenantRouter<C> {
    pub(crate) fn from_config(
        config: &EngineConfig,
        tenants: impl IntoIterator<Item = (TenantSpec, C)>,
    ) -> TenantRouter<C> {
        let specs: Vec<(TenantSpec, C)> = tenants.into_iter().collect();
        assert!(!specs.is_empty(), "TenantRouter needs at least one tenant");
        let router = TenantRouter {
            roster: RwLock::new(Arc::new(Roster { slots: Vec::new() })),
            admission: Mutex::new(AdmissionState {
                next_epoch: 1,
                free_caches: Vec::new(),
                admitted: 0,
                evicted: 0,
            }),
            workers: config.worker_count(),
            batch: config.batch(),
            progress: config.progress_counter().cloned(),
            cache_geometry: config.hot_cache_config(),
            memory_budget: config.memory_budget_bytes(),
        };
        // Construction slices the cache budget over the *whole* declared
        // roster (capacity × share / Σ shares), so the initial slices are
        // exactly proportional; runtime admissions compute their share
        // against the then-live roster instead.
        let total_shares: usize = specs
            .iter()
            .map(|(spec, _)| spec.cache_share_value() as usize)
            .sum();
        for (spec, classifier) in specs {
            let name = spec.name().to_string();
            router
                .admit_inner(spec, classifier, Some(total_shares))
                .unwrap_or_else(|e| {
                    panic!("TenantRouter construction rejected tenant {name}: {e}")
                });
        }
        router
    }

    fn roster_snapshot(&self) -> Arc<Roster<C>> {
        Arc::clone(&self.roster.read().expect("roster lock poisoned"))
    }

    fn entry(&self, tenant: TenantId) -> Arc<TenantEntry<C>> {
        self.roster_snapshot()
            .get(tenant)
            .cloned()
            .unwrap_or_else(|| panic!("unknown or evicted tenant {tenant}"))
    }

    /// Admits a tenant at runtime: wraps the classifier in a fresh
    /// [`LiveClassifier`], grants it a hot-cache slice (recycling an
    /// evicted tenant's slice when one fits, else allocating from the
    /// unused remainder of the router-wide entry budget), checks the
    /// spec's and the router's memory budgets, and publishes a new roster
    /// snapshot — serving workers pick it up at their next sub-batch
    /// boundary, without ever blocking on the admission.
    ///
    /// Returns the new tenant's handle; its slot reuses the lowest
    /// evicted slot, its epoch is globally fresh.
    pub fn admit(&self, spec: TenantSpec, classifier: C) -> Result<TenantId, AdmissionError> {
        self.admit_inner(spec, classifier, None)
    }

    /// `fixed_total_shares` is `Some` during construction, where the
    /// slice denominator covers the whole declared roster rather than
    /// the tenants admitted so far.
    fn admit_inner(
        &self,
        spec: TenantSpec,
        classifier: C,
        fixed_total_shares: Option<usize>,
    ) -> Result<TenantId, AdmissionError> {
        let mut admission = self.admission.lock().expect("admission lock poisoned");
        let roster = self.roster_snapshot();
        let share = spec.cache_share_value() as usize;

        // Decide the cache grant first so its bytes can be charged.
        let mut reused = false;
        let cache: Option<Arc<HotCache>> = self.cache_geometry.map(|geometry| {
            let total_shares = fixed_total_shares.unwrap_or_else(|| {
                roster
                    .live_entries()
                    .map(|e| e.cache_share as usize)
                    .sum::<usize>()
                    + share
            });
            let desired = geometry.capacity * share / total_shares.max(1);
            // Recycle the largest freed slice that fits the grant.
            let best_free = admission
                .free_caches
                .iter()
                .enumerate()
                .filter(|(_, c)| c.slot_count() <= desired)
                .max_by_key(|(_, c)| c.slot_count())
                .map(|(i, _)| i);
            match best_free {
                Some(i) => {
                    reused = true;
                    admission.free_caches.swap_remove(i)
                }
                None => {
                    // Fresh allocation, bounded by the un-allocated
                    // remainder of the entry budget (live slices plus the
                    // free pool); a grant rounding to zero slots degrades
                    // the tenant to pass-through, never to over-budget.
                    let allocated: usize = roster
                        .live_entries()
                        .filter_map(|e| e.cache.as_ref())
                        .map(|c| c.slot_count())
                        .chain(admission.free_caches.iter().map(|c| c.slot_count()))
                        .sum();
                    let remaining = geometry.capacity.saturating_sub(allocated);
                    Arc::new(HotCache::new(HotCacheConfig::new(
                        desired.min(remaining),
                        geometry.assoc,
                    )))
                }
            }
        });

        let classifier_bytes = classifier.memory_bytes();
        let cache_bytes = cache.as_ref().map(|c| c.memory_bytes()).unwrap_or(0);
        let memory = MemoryReport {
            classifier_bytes,
            cache_bytes,
            total_bytes: classifier_bytes + cache_bytes,
            budget_bytes: spec.memory_budget_bytes(),
            arena: classifier.arena_stats(),
        };
        let reject = |admission: &mut AdmissionState, error: AdmissionError| {
            // Return a recycled slice to the pool; a fresh one is simply
            // dropped (its allocation was never published).
            if reused {
                if let Some(cache) = &cache {
                    admission.free_caches.push(Arc::clone(cache));
                }
            }
            Err(error)
        };
        if let Some(budget) = memory.budget_bytes {
            if memory.total_bytes > budget {
                return reject(
                    &mut admission,
                    AdmissionError::TenantOverBudget {
                        name: spec.name().to_string(),
                        needs: memory.total_bytes,
                        budget,
                    },
                );
            }
        }
        if let Some(budget) = self.memory_budget {
            let in_use: usize = roster
                .live_entries()
                .map(|e| e.memory.total_bytes)
                .chain(admission.free_caches.iter().map(|c| c.memory_bytes()))
                .sum();
            if in_use + memory.total_bytes > budget {
                return reject(
                    &mut admission,
                    AdmissionError::RouterOverBudget {
                        name: spec.name().to_string(),
                        needs: memory.total_bytes,
                        in_use,
                        budget,
                    },
                );
            }
        }

        let slot = roster
            .slots
            .iter()
            .position(|s| s.is_none())
            .unwrap_or(roster.slots.len());
        let id = TenantId {
            slot: slot as u32,
            epoch: admission.next_epoch,
        };
        admission.next_epoch += 1;
        admission.admitted += 1;
        let cache_admitted = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        let entry = Arc::new(TenantEntry {
            id,
            name: spec.name().to_string(),
            weight: spec.weight_value(),
            cache_share: spec.cache_share_value(),
            live: Arc::new(LiveClassifier::new(classifier)),
            cache,
            cache_admitted,
            memory,
        });
        let mut slots = roster.slots.clone();
        if slot == slots.len() {
            slots.push(Some(entry));
        } else {
            slots[slot] = Some(entry);
        }
        *self.roster.write().expect("roster lock poisoned") = Arc::new(Roster { slots });
        Ok(id)
    }

    /// Evicts a tenant: publishes a roster snapshot without it (serving
    /// workers drop it at their next sub-batch boundary; in-flight groups
    /// drain on their held snapshot) and retires its handle — packets
    /// still tagged with it become [unroutable](TenantRun::unroutable).
    /// The tenant's cache slice is kept allocated for recycling by a
    /// later [`TenantRouter::admit`]; its entries are unreachable there
    /// because probe tags fold in the admission epoch.
    pub fn evict(&self, tenant: TenantId) -> Result<(), UnknownTenant> {
        let mut admission = self.admission.lock().expect("admission lock poisoned");
        let roster = self.roster_snapshot();
        if roster.get(tenant).is_none() {
            return Err(UnknownTenant(tenant));
        }
        let mut slots = roster.slots.clone();
        let entry = slots[tenant.slot as usize].take().expect("resolved above");
        if let Some(cache) = &entry.cache {
            if cache.slot_count() > 0 {
                admission.free_caches.push(Arc::clone(cache));
            }
        }
        admission.evicted += 1;
        *self.roster.write().expect("roster lock poisoned") = Arc::new(Roster { slots });
        Ok(())
    }

    /// Number of live tenants on the roster.
    pub fn tenant_count(&self) -> usize {
        self.roster_snapshot().live_entries().count()
    }

    /// The live tenants' handles, in slot order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.roster_snapshot()
            .live_entries()
            .map(|e| e.id)
            .collect()
    }

    /// Number of worker shards in the shared pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sub-batch size of the shared pool.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Total admissions and evictions over the router's lifetime
    /// (construction admits every initial tenant).
    pub fn admission_counts(&self) -> (u64, u64) {
        let admission = self.admission.lock().expect("admission lock poisoned");
        (admission.admitted, admission.evicted)
    }

    /// The roster name of one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn name(&self, tenant: TenantId) -> String {
        self.entry(tenant).name.clone()
    }

    /// One tenant's scheduling weight.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn weight(&self, tenant: TenantId) -> u32 {
        self.entry(tenant).weight
    }

    /// One tenant's memory accounting, as charged at admission time.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn memory_report(&self, tenant: TenantId) -> MemoryReport {
        self.entry(tenant).memory
    }

    /// Bytes currently charged against the router-wide memory budget:
    /// every live tenant's classifier and cache slice, plus the freed
    /// cache slices kept allocated for recycling.
    pub fn memory_in_use(&self) -> usize {
        let admission = self.admission.lock().expect("admission lock poisoned");
        let roster = self.roster_snapshot();
        roster
            .live_entries()
            .map(|e| e.memory.total_bytes)
            .chain(admission.free_caches.iter().map(|c| c.memory_bytes()))
            .sum()
    }

    /// The router-wide memory budget admission checks against, if one was
    /// configured ([`crate::EngineConfig::memory_budget`]).
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Cumulative hit/miss/eviction counters of one tenant's hot-flow
    /// cache, or `None` when the router was built without
    /// [`crate::EngineConfig::hot_cache`].
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn cache_stats(&self, tenant: TenantId) -> Option<CacheStats> {
        self.entry(tenant).cache.as_ref().map(|c| c.stats())
    }

    /// Total cache slots actually allocated — live tenants' slices plus
    /// freed slices awaiting recycling — always within the
    /// [`crate::EngineConfig::hot_cache`] capacity budget (0 when no
    /// cache is configured).
    pub fn cache_slot_total(&self) -> usize {
        let admission = self.admission.lock().expect("admission lock poisoned");
        let roster = self.roster_snapshot();
        roster
            .live_entries()
            .filter_map(|e| e.cache.as_ref())
            .map(|c| c.slot_count())
            .chain(admission.free_caches.iter().map(|c| c.slot_count()))
            .sum()
    }

    /// One tenant's live classifier — the handle for that tenant's churn
    /// ([`LiveClassifier::apply_batch`]) and for solo-baseline serving.
    /// Updates through it publish a new snapshot for this tenant only;
    /// other tenants' readers are untouched (separate locks per tenant).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn live(&self, tenant: TenantId) -> Arc<LiveClassifier<C>> {
        Arc::clone(&self.entry(tenant).live)
    }

    /// Interleaves per-tenant traffic with this router's scheduling
    /// weights ([`TaggedTrace::interleave_weighted`] over the roster's
    /// declared weights) — the stream shape the router's weighted fair
    /// service is measured under.
    ///
    /// # Panics
    ///
    /// Panics if a handle does not resolve to a live tenant.
    pub fn interleave(
        &self,
        name: impl Into<String>,
        traffic: &[(TenantId, &Trace)],
    ) -> TaggedTrace {
        let weights: Vec<u32> = traffic
            .iter()
            .map(|(id, _)| self.entry(*id).weight)
            .collect();
        TaggedTrace::interleave_weighted(name, traffic, &weights)
    }

    /// Classifies a tagged trace on the shared worker pool.
    ///
    /// The trace is split into the same deterministic balanced shards as
    /// the single-tenant engines; each worker walks its shard in
    /// `batch`-sized sub-batches, re-reads the published roster at every
    /// sub-batch boundary (so admissions and evictions land mid-run
    /// without blocking serving), groups the sub-batch by tenant, serves
    /// the groups in descending weight order, and classifies every
    /// non-empty group against one fresh snapshot of that tenant — so a
    /// generation published mid-run lands at the next (tenant, sub-batch)
    /// boundary, exactly like [`crate::LiveEngine`].
    ///
    /// Packets whose handle resolves to no live tenant are decided
    /// [`MatchResult::NoMatch`] and counted in
    /// [`TenantRun::unroutable`] — a slot's next occupant never serves a
    /// retired handle's traffic.
    ///
    /// Results come back in trace order; [`TaggedTrace::tenant_results`]
    /// projects them per tenant.
    pub fn classify_tagged(&self, trace: &TaggedTrace) -> TenantRun {
        let started = Instant::now();
        // Per-tenant cache counters are cumulative; snapshot the run-start
        // roster's counters so the reports below can carry this run's
        // delta (tenants admitted mid-run fall back to their
        // admission-time baseline).
        let start_roster = self.roster_snapshot();
        let cache_before: Vec<(TenantId, CacheStats)> = start_roster
            .live_entries()
            .filter_map(|e| e.cache.as_ref().map(|c| (e.id, c.stats())))
            .collect();
        let workers = self.workers;
        let shards = shard_slices(trace.entries(), workers);
        type Partial<C> = (
            Vec<MatchResult>,
            u64,
            Vec<(Arc<TenantEntry<C>>, TenantAccum)>,
            u64,
        );
        let mut partials: Vec<Option<Partial<C>>> = (0..workers).map(|_| None).collect();

        let serve_shard = |slice: &[TaggedPacket]| -> Partial<C> {
            let worker_started = Instant::now();
            let mut results = Vec::with_capacity(slice.len());
            let mut headers: Vec<PacketHeader> = Vec::new();
            let mut tenant_results: Vec<MatchResult> = Vec::new();
            let mut accums: Vec<(Arc<TenantEntry<C>>, TenantAccum)> = Vec::new();
            let mut unroutable = 0u64;
            let mut roster = self.roster_snapshot();
            let mut order = roster.service_order();
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); roster.slots.len()];
            for sub in slice.chunks(self.batch) {
                // Pick up lifecycle changes at the sub-batch boundary —
                // the roster analogue of the per-sub-batch classifier
                // snapshot below.
                let current = self.roster_snapshot();
                if !Arc::ptr_eq(&current, &roster) {
                    roster = current;
                    order = roster.service_order();
                    groups.resize_with(roster.slots.len(), Vec::new);
                }
                for group in &mut groups {
                    group.clear();
                }
                // Placeholder slots, then scatter each tenant group's
                // results back to their arrival positions; unroutable
                // packets keep the NoMatch placeholder.
                let base = results.len();
                results.resize(base + sub.len(), MatchResult::NoMatch);
                for (i, pkt) in sub.iter().enumerate() {
                    match roster.get(pkt.tenant) {
                        Some(_) => groups[pkt.tenant.slot as usize].push(i),
                        None => unroutable += 1,
                    }
                }
                for &slot in &order {
                    let group = &groups[slot];
                    if group.is_empty() {
                        continue;
                    }
                    let entry = roster.slots[slot]
                        .as_ref()
                        .expect("service order is occupied");
                    headers.clear();
                    headers.extend(group.iter().map(|&i| sub[i].header));
                    // One snapshot per (tenant, sub-batch): the whole
                    // group drains on a single consistent generation.
                    // With a hot cache, the probe tag folds the admission
                    // epoch in next to the generation, so the group only
                    // consumes entries filled from this exact generation
                    // of this exact tenant.
                    let (generation, snapshot) = entry.live.snapshot_tagged();
                    let tag = entry.cache_tag(generation);
                    let group_started = Instant::now();
                    tenant_results.clear();
                    match &entry.cache {
                        Some(cache) => {
                            cache.serve_batch(tag, &headers, &mut tenant_results, |misses, out| {
                                snapshot.classify_batch(misses, out)
                            });
                        }
                        None => snapshot.classify_batch(&headers, &mut tenant_results),
                    }
                    let busy_ns = group_started.elapsed().as_nanos() as u64;
                    debug_assert_eq!(tenant_results.len(), group.len());
                    for (&i, &result) in group.iter().zip(tenant_results.iter()) {
                        results[base + i] = result;
                    }
                    let accum = match accums.iter_mut().find(|(e, _)| e.id == entry.id) {
                        Some((_, accum)) => accum,
                        None => {
                            accums.push((Arc::clone(entry), TenantAccum::default()));
                            &mut accums.last_mut().expect("just pushed").1
                        }
                    };
                    accum.pkts += group.len() as u64;
                    accum.busy_ns += busy_ns;
                    accum.latencies.push(busy_ns);
                }
                if let Some(counter) = &self.progress {
                    counter.fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
            }
            let wall_ns = worker_started.elapsed().as_nanos() as u64;
            (results, wall_ns, accums, unroutable)
        };

        if workers == 1 {
            // Single shard: serve inline, matching `run_sharded`'s policy
            // of not charging thread-spawn overhead to one-worker runs.
            partials[0] = Some(serve_shard(shards[0]));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, slice) in shards.into_iter().enumerate() {
                    if slice.is_empty() {
                        partials[i] = Some((Vec::new(), 0, Vec::new(), 0));
                        continue;
                    }
                    let serve = &serve_shard;
                    handles.push((i, scope.spawn(move || serve(slice))));
                }
                for (i, handle) in handles {
                    partials[i] = Some(handle.join().expect("tenant router worker panicked"));
                }
            });
        }

        let mut results = Vec::with_capacity(trace.len());
        let mut per_worker = Vec::with_capacity(workers);
        let mut merged: Vec<(Arc<TenantEntry<C>>, TenantAccum)> = Vec::new();
        let mut unroutable = 0u64;
        for (worker, partial) in partials.into_iter().enumerate() {
            let (shard_results, wall_ns, accums, shard_unroutable) =
                partial.expect("worker output missing");
            let pkts = shard_results.len() as u64;
            per_worker.push(WorkerReport {
                worker,
                pkts,
                wall_ns,
                mpps: crate::mpps(pkts, wall_ns),
            });
            results.extend(shard_results);
            unroutable += shard_unroutable;
            for (entry, from) in accums {
                match merged.iter_mut().find(|(e, _)| e.id == entry.id) {
                    Some((_, into)) => {
                        into.pkts += from.pkts;
                        into.busy_ns += from.busy_ns;
                        into.latencies.extend(from.latencies);
                    }
                    None => merged.push((entry, from)),
                }
            }
        }
        debug_assert_eq!(results.len(), trace.len());

        // Report every tenant live at the end of the run plus any tenant
        // that was served and then evicted mid-run, in slot order.
        let end_roster = self.roster_snapshot();
        let mut entries: Vec<Arc<TenantEntry<C>>> =
            end_roster.live_entries().map(Arc::clone).collect();
        for (entry, _) in &merged {
            if !entries.iter().any(|e| e.id == entry.id) {
                entries.push(Arc::clone(entry));
            }
        }
        entries.sort_by_key(|e| e.id);

        let served_pkts: u64 = merged.iter().map(|(_, a)| a.pkts).sum();
        let served_weight: u64 = entries
            .iter()
            .filter(|e| {
                merged
                    .iter()
                    .any(|(m, accum)| m.id == e.id && accum.pkts > 0)
            })
            .map(|e| e.weight as u64)
            .sum();
        let tenants: Vec<TenantReport> = entries
            .iter()
            .map(|entry| {
                let mut accum = merged
                    .iter()
                    .find(|(e, _)| e.id == entry.id)
                    .map(|(_, a)| a.clone())
                    .unwrap_or_default();
                let slo_rel = if accum.pkts == 0 || served_pkts == 0 || served_weight == 0 {
                    0.0
                } else {
                    let pkt_share = accum.pkts as f64 / served_pkts as f64;
                    let weight_share = entry.weight as f64 / served_weight as f64;
                    pkt_share / weight_share
                };
                let before = cache_before
                    .iter()
                    .find(|(id, _)| *id == entry.id)
                    .map(|(_, stats)| *stats)
                    .unwrap_or(entry.cache_admitted);
                TenantReport {
                    tenant: entry.id,
                    name: entry.name.clone(),
                    weight: entry.weight,
                    pkts: accum.pkts,
                    busy_ns: accum.busy_ns,
                    mpps: crate::mpps(accum.pkts, accum.busy_ns),
                    slo_rel,
                    batch_latency: LatencyPercentiles::from_samples(&mut accum.latencies),
                    cache: entry.cache.as_ref().map(|c| c.stats().delta_since(&before)),
                }
            })
            .collect();
        let served: Vec<&TenantReport> = tenants.iter().filter(|t| t.pkts > 0).collect();
        let rates: Vec<f64> = served.iter().map(|t| t.mpps).collect();
        let slo_rels: Vec<f64> = served.iter().map(|t| t.slo_rel).collect();
        let fairness = FairnessSummary::over_rates(&rates).weighted_over(&slo_rels);

        let wall_ns = started.elapsed().as_nanos() as u64;
        let pkts = results.len() as u64;
        TenantRun {
            results,
            report: ThroughputReport {
                pkts,
                wall_ns,
                mpps: crate::mpps(pkts, wall_ns),
                per_worker,
            },
            tenants,
            fairness,
            unroutable,
        }
    }

    /// Serves one tenant's headers solo through the shared-pool geometry
    /// (same workers/batch), as a plain [`Trace`] — the baseline the
    /// tenant-cell benchmark compares cross-tenant batching against.
    /// Takes the tenant's [`TenantId`] handle (from
    /// `admit`/construction), so solo baselines and router runs are
    /// guaranteed like-for-like on the same live classifier.  Always
    /// uncached, so the baseline measures the classifier itself and the
    /// solo run neither warms nor perturbs the tenant's cache.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not resolve to a live tenant.
    pub fn classify_solo(&self, tenant: TenantId, trace: &Trace) -> EngineRun {
        let live = self.live(tenant);
        crate::run_sharded(trace, self.workers, self.batch, |_, headers, results| {
            live.snapshot().classify_batch(headers, results);
        })
    }
}

impl<C> std::fmt::Debug for TenantRouter<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let roster = self.roster.read().expect("roster lock poisoned");
        f.debug_struct("TenantRouter")
            .field("tenants", &roster.live_entries().count())
            .field("workers", &self.workers)
            .field("batch", &self.batch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
    use pclass_algos::update::{classify_live_linear, RuleUpdate};
    use pclass_algos::{FlatTreeClassifier, LinearClassifier};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use pclass_types::{Rule, RuleSet};
    use std::sync::atomic::AtomicU64;

    fn workload(seed: u64, rules: usize, packets: usize) -> (RuleSet, Trace) {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules);
        let trace = TraceGenerator::new(&rs, seed ^ 0xBEEF).generate(packets);
        (rs, trace)
    }

    /// Distinct per-tenant workloads so cross-tenant leakage cannot hide
    /// behind equal rulesets.
    fn workloads(tenants: usize, packets: usize) -> Vec<(RuleSet, Trace)> {
        (0..tenants)
            .map(|t| workload(400 + 37 * t as u64, 40 + 20 * t, packets))
            .collect()
    }

    fn flatten(rs: &RuleSet) -> FlatTreeClassifier {
        HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten()
    }

    #[test]
    fn spec_defaults_follow_the_weight() {
        let spec = TenantSpec::new("t");
        assert_eq!(spec.name(), "t");
        assert_eq!(spec.weight_value(), 1);
        assert_eq!(spec.cache_share_value(), 1);
        assert!(spec.memory_budget_bytes().is_none());
        // Weight 0 clamps to 1; the cache share follows the weight unless
        // set explicitly (0 is a legal explicit share: no cache slice).
        assert_eq!(TenantSpec::new("t").weight(0).weight_value(), 1);
        assert_eq!(TenantSpec::new("t").weight(4).cache_share_value(), 4);
        let spec = TenantSpec::new("t").weight(4).cache_share(0);
        assert_eq!(spec.cache_share_value(), 0);
        assert_eq!(
            TenantSpec::new("t")
                .memory_budget(4096)
                .memory_budget_bytes(),
            Some(4096)
        );
    }

    #[test]
    #[should_panic(expected = "weight set twice")]
    fn spec_double_set_weight_is_rejected() {
        let _ = TenantSpec::new("t").weight(2).weight(3);
    }

    #[test]
    #[should_panic(expected = "memory_budget set twice")]
    fn spec_double_set_memory_budget_is_rejected() {
        let _ = TenantSpec::new("t").memory_budget(1).memory_budget(2);
    }

    #[test]
    #[should_panic(expected = "cache_share set twice")]
    fn spec_double_set_cache_share_is_rejected() {
        let _ = TenantSpec::new("t").cache_share(1).cache_share(2);
    }

    #[test]
    fn interleave_is_proportional_and_order_preserving() {
        let (rs_a, trace_a) = workload(11, 30, 100);
        let (rs_b, trace_b) = workload(12, 50, 300);
        let (a, b) = (TenantId::new(0, 1), TenantId::new(1, 2));
        let tagged = TaggedTrace::interleave("mix", &[(a, &trace_a), (b, &trace_b)]);
        assert_eq!(tagged.len(), 400);
        assert_eq!(tagged.tenant_count(), 2);
        // Per-tenant order is preserved exactly.
        assert_eq!(
            tagged.tenant_headers(a),
            trace_a.headers().copied().collect::<Vec<_>>()
        );
        assert_eq!(
            tagged.tenant_headers(b),
            trace_b.headers().copied().collect::<Vec<_>>()
        );
        // Every prefix carries the tenants near their offered 1:3 ratio.
        let mut seen_a = 0usize;
        for (i, pkt) in tagged.entries().iter().enumerate() {
            if pkt.tenant == a {
                seen_a += 1;
            }
            let expected = (i + 1) as f64 / 4.0;
            assert!(
                (seen_a as f64 - expected).abs() <= 1.0,
                "prefix {} carries {} packets of the 1/4-share tenant",
                i + 1,
                seen_a
            );
        }
        let _ = (rs_a, rs_b);
    }

    #[test]
    fn weighted_interleave_offers_weight_shares() {
        // Equal offered ratio to the weights (300:100 at weights 3:1), so
        // both traces drain together and every prefix tracks 3/4 : 1/4.
        let (_, trace_a) = workload(13, 30, 300);
        let (_, trace_b) = workload(14, 30, 100);
        let (a, b) = (TenantId::new(0, 1), TenantId::new(1, 2));
        let tagged =
            TaggedTrace::interleave_weighted("wrr", &[(a, &trace_a), (b, &trace_b)], &[3, 1]);
        let mut seen_a = 0usize;
        for (i, pkt) in tagged.entries().iter().enumerate() {
            if pkt.tenant == a {
                seen_a += 1;
            }
            let expected = 3.0 * (i + 1) as f64 / 4.0;
            assert!(
                (seen_a as f64 - expected).abs() <= 1.0 + f64::EPSILON,
                "prefix {} carries {} packets of the weight-3 tenant",
                i + 1,
                seen_a
            );
        }
        // A lighter tenant keeps flowing after the heavy one drains.
        let (_, short) = workload(15, 30, 8);
        let wrr = TaggedTrace::interleave_weighted("drain", &[(a, &short), (b, &trace_b)], &[7, 1]);
        assert_eq!(wrr.len(), 108);
        assert_eq!(wrr.tenant_headers(b).len(), 100);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_interleave_weight_is_rejected() {
        let (_, trace) = workload(16, 20, 10);
        let _ = TaggedTrace::interleave_weighted("bad", &[(TenantId::new(0, 1), &trace)], &[0]);
    }

    #[test]
    fn single_tenant_router_matches_live_engine_packet_for_packet() {
        let (rs, trace) = workload(21, 80, 500);
        let counter = Arc::new(AtomicU64::new(0));
        let config = EngineConfig::new()
            .workers(2)
            .batch_size(64)
            .progress(Arc::clone(&counter));
        let live = Arc::new(LiveClassifier::new(LinearClassifier::new(rs.clone())));
        let engine_run = config.live_engine(Arc::clone(&live)).classify_trace(&trace);

        let router = config.tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs))]);
        let ids = router.tenant_ids();
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].slot(), 0);
        assert_eq!(ids[0].epoch(), 1);
        let tagged = TaggedTrace::interleave("solo", &[(ids[0], &trace)]);
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.results, engine_run.results);
        assert_eq!(run.report.pkts, engine_run.report.pkts);
        assert_eq!(run.unroutable, 0);
        // Both live front ends feed the same progress hook.
        assert_eq!(counter.load(Ordering::Relaxed), 2 * trace.len() as u64);
    }

    #[test]
    fn interleaved_tenants_each_get_their_own_solo_results() {
        let workloads = workloads(3, 150);
        let router = EngineConfig::new().workers(2).batch_size(32).tenant_router(
            workloads.iter().enumerate().map(|(t, (rs, _))| {
                (
                    TenantSpec::new(format!("t{t}")),
                    LinearClassifier::new(rs.clone()),
                )
            }),
        );
        let ids = router.tenant_ids();
        let parts: Vec<(TenantId, &Trace)> = ids
            .iter()
            .zip(&workloads)
            .map(|(&id, (_, trace))| (id, trace))
            .collect();
        let tagged = TaggedTrace::interleave("mixed", &parts);
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.results.len(), tagged.len());
        assert_eq!(run.unroutable, 0);
        for (&id, (rs, trace)) in ids.iter().zip(&workloads) {
            let projected = tagged.tenant_results(id, &run.results);
            assert_eq!(projected, router.classify_solo(id, trace).results);
            assert_eq!(projected, trace.ground_truth(rs));
        }
        assert!(run.fairness.weighted_jain > 0.0 && run.fairness.weighted_jain <= 1.0);
    }

    #[test]
    fn weighted_service_meets_slo_relative_shares() {
        let (rs_a, trace_a) = workload(31, 60, 300);
        let (rs_b, trace_b) = workload(32, 40, 100);
        let router = EngineConfig::new()
            .workers(2)
            .batch_size(16)
            .tenant_router([
                (
                    TenantSpec::new("heavy").weight(3),
                    LinearClassifier::new(rs_a),
                ),
                (
                    TenantSpec::new("light").weight(1),
                    LinearClassifier::new(rs_b),
                ),
            ]);
        let ids = router.tenant_ids();
        assert_eq!(router.weight(ids[0]), 3);
        assert_eq!(router.weight(ids[1]), 1);
        // The router interleaves by its own declared weights.
        let tagged = router.interleave("wrr", &[(ids[0], &trace_a), (ids[1], &trace_b)]);
        let run = router.classify_tagged(&tagged);
        // Offered load matches the weights exactly, so every tenant's
        // SLO-relative throughput is exactly its fair share.
        for report in &run.tenants {
            assert!(
                (report.slo_rel - 1.0).abs() < 1e-9,
                "tenant {} slo_rel {}",
                report.name,
                report.slo_rel
            );
        }
        assert!((run.fairness.weighted_jain - 1.0).abs() < 1e-9);
        assert_eq!(run.tenants[0].weight, 3);
        assert_eq!(run.tenants[0].pkts, 300);
        assert_eq!(run.tenants[1].pkts, 100);
    }

    #[test]
    fn accounting_covers_only_tenants_with_traffic() {
        let workloads = workloads(2, 120);
        let router =
            EngineConfig::new().tenant_router(workloads.iter().enumerate().map(|(t, (rs, _))| {
                (
                    TenantSpec::new(format!("t{t}")),
                    LinearClassifier::new(rs.clone()),
                )
            }));
        let ids = router.tenant_ids();
        let tagged = TaggedTrace::interleave("only-t0", &[(ids[0], &workloads[0].1)]);
        let run = router.classify_tagged(&tagged);
        // Both tenants are reported, but only the served one has counts;
        // an idle tenant has no SLO-relative share, and fairness covers
        // the served set only.
        assert_eq!(run.tenants.len(), 2);
        assert_eq!(run.tenants[0].pkts, 120);
        assert!((run.tenants[0].slo_rel - 1.0).abs() < 1e-9);
        assert_eq!(run.tenants[1].pkts, 0);
        assert_eq!(run.tenants[1].slo_rel, 0.0);
        assert_eq!(run.fairness.min_mpps, run.fairness.max_mpps);
        assert!((run.fairness.weighted_jain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tagged_trace_is_served() {
        let (rs, _) = workload(41, 30, 0);
        let router =
            EngineConfig::new().tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs))]);
        let run = router.classify_tagged(&TaggedTrace::new("empty", Vec::new()));
        assert!(run.results.is_empty());
        assert_eq!(run.unroutable, 0);
        assert_eq!(run.tenants.len(), 1);
        assert_eq!(run.tenants[0].pkts, 0);
    }

    #[test]
    fn retired_or_fabricated_handles_are_unroutable() {
        let (rs, trace) = workload(51, 50, 200);
        let truth = trace.ground_truth(&rs);
        let router = EngineConfig::new()
            .workers(2)
            .batch_size(32)
            .tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs))]);
        let id = router.tenant_ids()[0];
        let ghost = TenantId::new(5, 99);
        // Alternate live and fabricated tags through one trace.
        let entries: Vec<TaggedPacket> = trace
            .headers()
            .enumerate()
            .map(|(i, h)| TaggedPacket {
                tenant: if i % 2 == 0 { id } else { ghost },
                header: *h,
            })
            .collect();
        let tagged = TaggedTrace::new("mixed", entries);
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.unroutable, 100);
        for (i, (result, expected)) in run.results.iter().zip(&truth).enumerate() {
            if i % 2 == 0 {
                assert_eq!(result, expected);
            } else {
                assert_eq!(*result, MatchResult::NoMatch);
            }
        }
        // After eviction the tenant's own handle is retired too: nothing
        // is served, nothing panics — the traffic is just unroutable.
        router.evict(id).expect("live tenant evicts");
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.unroutable, tagged.len() as u64);
        assert!(run.results.iter().all(|r| *r == MatchResult::NoMatch));
    }

    #[test]
    fn admit_and_evict_cycle_reuses_slots_with_fresh_epochs() {
        let workloads = workloads(2, 100);
        let router =
            EngineConfig::new().tenant_router(workloads.iter().enumerate().map(|(t, (rs, _))| {
                (
                    TenantSpec::new(format!("t{t}")),
                    LinearClassifier::new(rs.clone()),
                )
            }));
        let ids = router.tenant_ids();
        assert_eq!(router.admission_counts(), (2, 0));
        router.evict(ids[0]).expect("live tenant evicts");
        assert_eq!(router.tenant_count(), 1);
        assert_eq!(router.evict(ids[0]), Err(UnknownTenant(ids[0])));

        let (rs2, trace2) = workload(777, 30, 100);
        let id2 = router
            .admit(
                TenantSpec::new("t2").weight(2),
                LinearClassifier::new(rs2.clone()),
            )
            .expect("admission fits");
        // The freed slot is reused, the epoch is globally fresh — the old
        // handle can never alias the new tenant.
        assert_eq!(id2.slot(), ids[0].slot());
        assert!(id2.epoch() > ids[1].epoch());
        assert_ne!(id2, ids[0]);
        assert_eq!(router.admission_counts(), (3, 1));
        assert_eq!(router.name(id2), "t2");
        assert_eq!(router.weight(id2), 2);
        let tagged = TaggedTrace::interleave("solo", &[(id2, &trace2)]);
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.results, trace2.ground_truth(&rs2));
    }

    #[test]
    fn cache_slices_follow_shares_within_the_entry_budget() {
        let workloads = workloads(3, 10);
        let router = EngineConfig::new()
            .hot_cache(HotCacheConfig::new(1024, 4))
            .tenant_router(workloads.iter().enumerate().map(|(t, (rs, _))| {
                (
                    TenantSpec::new(format!("t{t}")).cache_share(if t == 0 { 2 } else { 1 }),
                    LinearClassifier::new(rs.clone()),
                )
            }));
        let ids = router.tenant_ids();
        // Shares 2:1:1 over 1024 entries → 512/256/256, all allocated.
        assert_eq!(router.cache_slot_total(), 1024);
        let big = router.memory_report(ids[0]).cache_bytes;
        let small = router.memory_report(ids[1]).cache_bytes;
        assert!(
            big > small,
            "share-2 slice ({big}) must out-size share-1 ({small})"
        );
        assert_eq!(
            router.memory_report(ids[1]).cache_bytes,
            router.memory_report(ids[2]).cache_bytes
        );
    }

    #[test]
    fn recycled_cache_slices_cannot_serve_stale_hits() {
        let (rs, trace) = workload(61, 60, 400);
        let truth = trace.ground_truth(&rs);
        let router = EngineConfig::new()
            .batch_size(64)
            .hot_cache(HotCacheConfig::new(1024, 4))
            .tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs.clone()))]);
        let id = router.tenant_ids()[0];
        let tagged = TaggedTrace::interleave("solo", &[(id, &trace)]);
        // Warm the slice: the second pass hits on every flow.
        let first = router.classify_tagged(&tagged);
        assert_eq!(first.results, truth);
        let first_cache = first.tenants[0].cache.expect("cache configured");
        let warm = router.classify_tagged(&tagged);
        assert_eq!(warm.results, truth);
        let warm_cache = warm.tenants[0].cache.expect("cache configured");
        assert!(
            warm_cache.hits > first_cache.hits,
            "second pass must hit the warm slice"
        );
        assert_eq!(warm_cache.misses, 0);

        // Evict and readmit the *same* ruleset: the freed slice (still
        // physically holding the old tenant's entries) is recycled, but
        // the new admission epoch changes every probe tag — identical
        // headers must all miss on the first pass.
        router.evict(id).expect("live tenant evicts");
        let id2 = router
            .admit(TenantSpec::new("t0b"), LinearClassifier::new(rs))
            .expect("admission fits");
        assert_eq!(
            router.cache_slot_total(),
            1024,
            "the slice is recycled, not reallocated"
        );
        let tagged2 = TaggedTrace::interleave("solo2", &[(id2, &trace)]);
        let cold = router.classify_tagged(&tagged2);
        assert_eq!(cold.results, truth);
        let cold_cache = cold.tenants[0].cache.expect("cache configured");
        // Behaviourally indistinguishable from the original fresh slice:
        // the same intra-run hits on repeated flows, the same misses —
        // none of the previous epoch's warm entries are reachable (they
        // would have turned the misses into hits, as the warm pass did).
        assert_eq!(
            cold_cache, first_cache,
            "a recycled slice must never serve a previous epoch's entries"
        );
        assert_eq!(cold_cache.misses, first_cache.misses);
        // ... and it warms again under the new epoch.
        let rewarm = router.classify_tagged(&tagged2);
        assert_eq!(rewarm.tenants[0].cache.expect("cache configured").misses, 0);
    }

    #[test]
    fn cached_router_serves_identically_and_isolates_churn() {
        let workloads = workloads(2, 300);
        let router = EngineConfig::new()
            .workers(2)
            .batch_size(32)
            .hot_cache(HotCacheConfig::new(2048, 4))
            .tenant_router(
                workloads
                    .iter()
                    .enumerate()
                    .map(|(t, (rs, _))| (TenantSpec::new(format!("t{t}")), flatten(rs))),
            );
        let ids = router.tenant_ids();
        let parts: Vec<(TenantId, &Trace)> = ids
            .iter()
            .zip(&workloads)
            .map(|(&id, (_, trace))| (id, trace))
            .collect();
        let tagged = TaggedTrace::interleave("mixed", &parts);
        for _ in 0..2 {
            let run = router.classify_tagged(&tagged);
            for (&id, (rs, trace)) in ids.iter().zip(&workloads) {
                assert_eq!(
                    tagged.tenant_results(id, &run.results),
                    trace.ground_truth(rs)
                );
            }
        }
        // Churn tenant 0: its cache is invalidated by the generation tag,
        // tenant 1 keeps serving (and hitting) untouched.
        let victims: Vec<Rule> = workloads[0].0.rules().to_vec();
        let updates: Vec<RuleUpdate> = victims
            .iter()
            .take(victims.len() / 2)
            .map(|r| RuleUpdate::Delete(r.id))
            .collect();
        router
            .live(ids[0])
            .apply_batch(&updates)
            .expect("churn batch applies");
        let run = router.classify_tagged(&tagged);
        let survivors: Vec<Rule> = victims.iter().skip(victims.len() / 2).cloned().collect();
        let expected: Vec<MatchResult> = workloads[0]
            .1
            .headers()
            .map(|h| classify_live_linear(&survivors, h))
            .collect();
        assert_eq!(tagged.tenant_results(ids[0], &run.results), expected);
        assert_eq!(
            tagged.tenant_results(ids[1], &run.results),
            workloads[1].1.ground_truth(&workloads[1].0)
        );
        assert!(
            run.tenants[1].cache.expect("cache configured").hits > 0,
            "the untouched tenant keeps hitting its warm slice"
        );
    }

    #[test]
    fn per_tenant_memory_budget_rejects_oversized_tenants() {
        let (rs, _) = workload(71, 50, 0);
        let classifier = LinearClassifier::new(rs.clone());
        let bytes = classifier.memory_bytes();
        let router =
            EngineConfig::new().tenant_router([(TenantSpec::new("t0"), classifier.clone())]);
        let err = router
            .admit(
                TenantSpec::new("tiny").memory_budget(bytes - 1),
                classifier.clone(),
            )
            .expect_err("budget below the classifier size must reject");
        assert_eq!(
            err,
            AdmissionError::TenantOverBudget {
                name: "tiny".to_string(),
                needs: bytes,
                budget: bytes - 1,
            }
        );
        assert!(err.to_string().contains("over its"));
        assert_eq!(
            router.tenant_count(),
            1,
            "a rejected tenant is not admitted"
        );
        // A sufficient budget admits and is recorded in the report.
        let id = router
            .admit(TenantSpec::new("fits").memory_budget(bytes), classifier)
            .expect("budget at the classifier size admits");
        let report = router.memory_report(id);
        assert_eq!(report.classifier_bytes, bytes);
        assert_eq!(report.cache_bytes, 0);
        assert_eq!(report.total_bytes, bytes);
        assert_eq!(report.budget_bytes, Some(bytes));
    }

    #[test]
    fn router_wide_memory_budget_bounds_the_roster() {
        let (rs, _) = workload(72, 50, 0);
        let classifier = LinearClassifier::new(rs);
        let bytes = classifier.memory_bytes();
        // Room for one tenant and a half: the first admission fits, the
        // second must be refused with the roster's usage in the error.
        let router = EngineConfig::new()
            .memory_budget(bytes + bytes / 2)
            .tenant_router([(TenantSpec::new("t0"), classifier.clone())]);
        assert_eq!(router.memory_in_use(), bytes);
        let err = router
            .admit(TenantSpec::new("t1"), classifier)
            .expect_err("the roster budget is exhausted");
        assert_eq!(
            err,
            AdmissionError::RouterOverBudget {
                name: "t1".to_string(),
                needs: bytes,
                in_use: bytes,
                budget: bytes + bytes / 2,
            }
        );
        assert!(err.to_string().contains("router"));
        assert_eq!(router.tenant_count(), 1);
    }

    #[test]
    #[should_panic(expected = "rejected tenant")]
    fn construction_panics_on_over_budget_declarations() {
        let (rs, _) = workload(73, 40, 0);
        let _ = EngineConfig::new().tenant_router([(
            TenantSpec::new("t0").memory_budget(1),
            LinearClassifier::new(rs),
        )]);
    }

    #[test]
    fn classify_solo_matches_ground_truth() {
        let workloads = workloads(2, 200);
        let router = EngineConfig::new().workers(3).batch_size(16).tenant_router(
            workloads.iter().enumerate().map(|(t, (rs, _))| {
                (
                    TenantSpec::new(format!("t{t}")),
                    LinearClassifier::new(rs.clone()),
                )
            }),
        );
        for (&id, (rs, trace)) in router.tenant_ids().iter().zip(&workloads) {
            let run = router.classify_solo(id, trace);
            assert_eq!(run.results, trace.ground_truth(rs));
            assert_eq!(run.report.per_worker.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "unknown or evicted tenant")]
    fn solo_serving_a_retired_handle_panics() {
        let (rs, trace) = workload(81, 30, 50);
        let router =
            EngineConfig::new().tenant_router([(TenantSpec::new("t0"), LinearClassifier::new(rs))]);
        let id = router.tenant_ids()[0];
        router.evict(id).expect("live tenant evicts");
        let _ = router.classify_solo(id, &trace);
    }
}
