//! Multi-tenant serving: many isolated rulesets on one shared worker pool.
//!
//! The serving stack so far is one process = one ruleset, but the
//! deployment shape the paper's low-power classification setting targets —
//! per-customer ACLs, per-VPC firewalls — serves many *isolated* tenants
//! on shared cores.  [`TenantRouter`] is that front end:
//!
//! * it holds a roster of N [`LiveClassifier`]s (tenant id → live
//!   classifier), so **churn is isolated per tenant**: one tenant's
//!   [`LiveClassifier::apply_batch`] touches only its own writer copy and
//!   snapshot slot and never blocks another tenant's readers;
//! * tagged traffic ([`TaggedTrace`]) is served on a **shared worker
//!   pool** with cross-tenant batching: each worker takes a sub-batch of
//!   the interleaved stream, groups it by tenant, and classifies each
//!   tenant group against **one snapshot per (tenant, sub-batch)** —
//!   reusing the epoch-swap machinery, so a 500-rule tenant coalesces
//!   into the same sub-batch as its neighbours instead of wasting a core;
//! * every run returns **per-tenant accounting** ([`TenantReport`]:
//!   packets, busy-time mpps, p50/p95/p99 batch-latency percentiles) plus
//!   a [`FairnessSummary`] over the per-tenant rates.
//!
//! Construction goes through [`crate::EngineConfig::tenant_router`], the
//! same builder the single-tenant engines use.
//!
//! Determinism: results are packet-for-packet what each tenant's own
//! classifier decides — a router with one tenant produces exactly the
//! output of a [`crate::LiveEngine`] over that classifier, and under
//! interleaved cross-tenant traffic each tenant's result subsequence
//! equals its solo run.  The workspace property tests enforce both.

use crate::live::LiveClassifier;
use crate::{EngineConfig, EngineRun, ThroughputReport, WorkerReport};
use pclass_algos::{Classifier, HotCache, HotCacheConfig};
use pclass_types::{
    shard_slices, CacheStats, FairnessSummary, LatencyPercentiles, MatchResult, PacketHeader, Trace,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Identifies a tenant within one [`TenantRouter`] (dense, assigned in
/// roster order starting at 0).
pub type TenantId = u32;

/// One packet of tagged traffic: the header plus the tenant whose ruleset
/// must classify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPacket {
    /// The tenant this packet belongs to.
    pub tenant: TenantId,
    /// The packet header.
    pub header: PacketHeader,
}

/// A trace of tagged packets — the multi-tenant counterpart of
/// [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedTrace {
    name: String,
    entries: Vec<TaggedPacket>,
}

impl TaggedTrace {
    /// Builds a tagged trace from explicit entries.
    pub fn new(name: impl Into<String>, entries: Vec<TaggedPacket>) -> TaggedTrace {
        TaggedTrace {
            name: name.into(),
            entries,
        }
    }

    /// Deterministically interleaves one per-tenant trace per tenant id
    /// (index in `traces` = tenant id) into a single proportional-fair
    /// tagged stream: at every step the next packet comes from the tenant
    /// whose emitted share of its own trace is furthest behind, ties going
    /// to the lowest tenant id.  Per-tenant packet order is preserved, so
    /// [`TaggedTrace::tenant_headers`] reproduces each input trace exactly.
    pub fn interleave(name: impl Into<String>, traces: &[Trace]) -> TaggedTrace {
        let lens: Vec<u128> = traces.iter().map(|t| t.len() as u128).collect();
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let mut next = vec![0usize; traces.len()];
        let mut entries = Vec::with_capacity(total);
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (t, trace) in traces.iter().enumerate() {
                if next[t] >= trace.len() {
                    continue;
                }
                best = Some(match best {
                    None => t,
                    Some(b) => {
                        // t is further behind than b iff
                        // (next[t]+1)/lens[t] < (next[b]+1)/lens[b],
                        // compared by cross-multiplication to stay exact.
                        let t_share = (next[t] as u128 + 1) * lens[b];
                        let b_share = (next[b] as u128 + 1) * lens[t];
                        if t_share < b_share {
                            t
                        } else {
                            b
                        }
                    }
                });
            }
            let t = best.expect("fewer emitted packets than counted total");
            entries.push(TaggedPacket {
                tenant: t as TenantId,
                header: traces[t].entries()[next[t]].header,
            });
            next[t] += 1;
        }
        TaggedTrace {
            name: name.into(),
            entries,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tagged packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tagged packets in arrival order.
    pub fn entries(&self) -> &[TaggedPacket] {
        &self.entries
    }

    /// Number of distinct tenant slots the trace addresses (highest tagged
    /// tenant id + 1; 0 for an empty trace).
    pub fn tenant_count(&self) -> usize {
        self.entries
            .iter()
            .map(|p| p.tenant as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// The headers of one tenant's packets, in arrival order.
    pub fn tenant_headers(&self, tenant: TenantId) -> Vec<PacketHeader> {
        self.entries
            .iter()
            .filter(|p| p.tenant == tenant)
            .map(|p| p.header)
            .collect()
    }

    /// Projects a full-trace result vector (as returned by
    /// [`TenantRouter::classify_tagged`]) down to one tenant's results, in
    /// that tenant's arrival order — the subsequence to compare against a
    /// solo run over [`TaggedTrace::tenant_headers`].
    ///
    /// # Panics
    ///
    /// Panics if `results` is not exactly one result per trace packet.
    pub fn tenant_results(&self, tenant: TenantId, results: &[MatchResult]) -> Vec<MatchResult> {
        assert_eq!(
            results.len(),
            self.entries.len(),
            "results must cover the whole tagged trace"
        );
        self.entries
            .iter()
            .zip(results)
            .filter(|(p, _)| p.tenant == tenant)
            .map(|(_, r)| *r)
            .collect()
    }
}

/// Per-tenant accounting of one [`TenantRouter::classify_tagged`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// The tenant id.
    pub tenant: TenantId,
    /// The tenant's roster name.
    pub name: String,
    /// Packets classified for this tenant.
    pub pkts: u64,
    /// Nanoseconds workers spent inside this tenant's classifier (summed
    /// over tenant groups; excludes grouping/scatter overhead).
    pub busy_ns: u64,
    /// Millions of packets per second over the tenant's busy time — the
    /// tenant's service rate while it was actually being served.
    pub mpps: f64,
    /// Latency percentiles over this tenant's per-sub-batch classify
    /// calls (one sample per tenant group actually served).
    pub batch_latency: LatencyPercentiles,
    /// Hit/miss/eviction counters of this tenant's hot-flow cache over
    /// *this run only* (the cumulative counters are deltaed per call), or
    /// `None` when the router was built without
    /// [`crate::EngineConfig::hot_cache`].
    pub cache: Option<CacheStats>,
}

/// Output of [`TenantRouter::classify_tagged`]: merged decisions in trace
/// order, the shared-pool throughput report, and per-tenant accounting.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// One result per tagged packet, in arrival order.
    pub results: Vec<MatchResult>,
    /// Whole-run throughput over the shared worker pool.
    pub report: ThroughputReport,
    /// Per-tenant accounting, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Jain fairness over the busy-time rates of tenants that received
    /// traffic.
    pub fairness: FairnessSummary,
}

struct TenantEntry<C> {
    name: String,
    live: Arc<LiveClassifier<C>>,
    cache: Option<Arc<HotCache>>,
}

#[derive(Clone, Default)]
struct TenantAccum {
    pkts: u64,
    busy_ns: u64,
    latencies: Vec<u64>,
}

/// A multi-tenant serving front end: tenant id → [`LiveClassifier`],
/// served on a shared worker pool with cross-tenant batching.  See the
/// [module docs](self); construct through
/// [`crate::EngineConfig::tenant_router`].
pub struct TenantRouter<C> {
    tenants: Vec<TenantEntry<C>>,
    workers: usize,
    batch: usize,
    progress: Option<Arc<std::sync::atomic::AtomicU64>>,
}

impl<C: Classifier + Clone + Send + Sync> TenantRouter<C> {
    pub(crate) fn from_config(
        config: &EngineConfig,
        tenants: impl IntoIterator<Item = (String, C)>,
    ) -> TenantRouter<C> {
        let mut tenants: Vec<TenantEntry<C>> = tenants
            .into_iter()
            .map(|(name, classifier)| TenantEntry {
                name,
                live: Arc::new(LiveClassifier::new(classifier)),
                cache: None,
            })
            .collect();
        assert!(
            !tenants.is_empty(),
            "TenantRouter needs at least one tenant"
        );
        if let Some(geometry) = config.hot_cache_config() {
            // The configured capacity is a *router-wide* entry budget:
            // every tenant gets an equal slice, so one tenant's hot flows
            // can never crowd a neighbour out of cache (the same isolation
            // story as the per-tenant snapshots).  A slice rounding to
            // zero entries degrades that tenant to pure pass-through,
            // never to over-budget.
            let per_tenant = HotCacheConfig::new(geometry.capacity / tenants.len(), geometry.assoc);
            for entry in &mut tenants {
                entry.cache = Some(Arc::new(HotCache::new(per_tenant)));
            }
        }
        TenantRouter {
            tenants,
            workers: config.worker_count(),
            batch: config.batch(),
            progress: config.progress_counter().cloned(),
        }
    }

    /// Number of tenants in the roster.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Number of worker shards in the shared pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sub-batch size of the shared pool.
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// The roster name of one tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not in the roster.
    pub fn name(&self, tenant: TenantId) -> &str {
        &self.tenants[tenant as usize].name
    }

    /// Cumulative hit/miss/eviction counters of one tenant's hot-flow
    /// cache, or `None` when the router was built without
    /// [`crate::EngineConfig::hot_cache`].
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not in the roster.
    pub fn cache_stats(&self, tenant: TenantId) -> Option<CacheStats> {
        self.tenants[tenant as usize]
            .cache
            .as_ref()
            .map(|c| c.stats())
    }

    /// Total cache slots actually allocated across all tenants — always
    /// within the [`crate::EngineConfig::hot_cache`] capacity budget
    /// (0 when no cache is configured).
    pub fn cache_slot_total(&self) -> usize {
        self.tenants
            .iter()
            .filter_map(|e| e.cache.as_ref())
            .map(|c| c.slot_count())
            .sum()
    }

    /// One tenant's live classifier — the handle for that tenant's churn
    /// ([`LiveClassifier::apply_batch`]) and for solo-baseline serving.
    /// Updates through it publish a new snapshot for this tenant only;
    /// other tenants' readers are untouched (separate locks per tenant).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not in the roster.
    pub fn live(&self, tenant: TenantId) -> &Arc<LiveClassifier<C>> {
        &self.tenants[tenant as usize].live
    }

    /// Classifies a tagged trace on the shared worker pool.
    ///
    /// The trace is split into the same deterministic balanced shards as
    /// the single-tenant engines; each worker walks its shard in
    /// `batch`-sized sub-batches, groups each sub-batch by tenant, and
    /// classifies every non-empty tenant group against one fresh snapshot
    /// of that tenant — so a generation published mid-run lands at the
    /// next (tenant, sub-batch) boundary, exactly like
    /// [`crate::LiveEngine`].
    ///
    /// Results come back in trace order; [`TaggedTrace::tenant_results`]
    /// projects them per tenant.
    ///
    /// # Panics
    ///
    /// Panics if the trace tags a tenant id outside the roster.
    pub fn classify_tagged(&self, trace: &TaggedTrace) -> TenantRun {
        let started = Instant::now();
        let n_tenants = self.tenants.len();
        // Per-tenant cache counters are cumulative; snapshot them here so
        // the reports below can carry this run's delta.
        let cache_before: Vec<Option<CacheStats>> = self
            .tenants
            .iter()
            .map(|e| e.cache.as_ref().map(|c| c.stats()))
            .collect();
        let workers = self.workers;
        let shards = shard_slices(trace.entries(), workers);
        type Partial = (Vec<MatchResult>, u64, Vec<TenantAccum>);
        let mut partials: Vec<Option<Partial>> = (0..workers).map(|_| None).collect();

        let serve_shard = |slice: &[TaggedPacket]| -> Partial {
            let worker_started = Instant::now();
            let mut results = Vec::with_capacity(slice.len());
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_tenants];
            let mut headers: Vec<PacketHeader> = Vec::new();
            let mut tenant_results: Vec<MatchResult> = Vec::new();
            let mut accums = vec![TenantAccum::default(); n_tenants];
            for sub in slice.chunks(self.batch) {
                for group in &mut groups {
                    group.clear();
                }
                for (i, pkt) in sub.iter().enumerate() {
                    let t = pkt.tenant as usize;
                    assert!(
                        t < n_tenants,
                        "tagged packet for unknown tenant {} (roster has {n_tenants})",
                        pkt.tenant
                    );
                    groups[t].push(i);
                }
                // Placeholder slots, then scatter each tenant group's
                // results back to their arrival positions.
                let base = results.len();
                results.resize(base + sub.len(), MatchResult::NoMatch);
                for (t, group) in groups.iter().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    headers.clear();
                    headers.extend(group.iter().map(|&i| sub[i].header));
                    // One snapshot per (tenant, sub-batch): the whole
                    // group drains on a single consistent generation.
                    // With a hot cache, the snapshot's generation tags the
                    // probe, so the group only consumes entries filled from
                    // this exact generation of this tenant's ruleset.
                    let entry = &self.tenants[t];
                    let (tag, snapshot) = entry.live.snapshot_tagged();
                    let group_started = Instant::now();
                    tenant_results.clear();
                    match &entry.cache {
                        Some(cache) => {
                            cache.serve_batch(tag, &headers, &mut tenant_results, |misses, out| {
                                snapshot.classify_batch(misses, out)
                            });
                        }
                        None => snapshot.classify_batch(&headers, &mut tenant_results),
                    }
                    let busy_ns = group_started.elapsed().as_nanos() as u64;
                    debug_assert_eq!(tenant_results.len(), group.len());
                    for (&i, &result) in group.iter().zip(tenant_results.iter()) {
                        results[base + i] = result;
                    }
                    let accum = &mut accums[t];
                    accum.pkts += group.len() as u64;
                    accum.busy_ns += busy_ns;
                    accum.latencies.push(busy_ns);
                }
                if let Some(counter) = &self.progress {
                    counter.fetch_add(sub.len() as u64, Ordering::Relaxed);
                }
            }
            let wall_ns = worker_started.elapsed().as_nanos() as u64;
            (results, wall_ns, accums)
        };

        if workers == 1 {
            // Single shard: serve inline, matching `run_sharded`'s policy
            // of not charging thread-spawn overhead to one-worker runs.
            partials[0] = Some(serve_shard(shards[0]));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (i, slice) in shards.into_iter().enumerate() {
                    if slice.is_empty() {
                        partials[i] =
                            Some((Vec::new(), 0, vec![TenantAccum::default(); n_tenants]));
                        continue;
                    }
                    let serve = &serve_shard;
                    handles.push((i, scope.spawn(move || serve(slice))));
                }
                for (i, handle) in handles {
                    partials[i] = Some(handle.join().expect("tenant router worker panicked"));
                }
            });
        }

        let mut results = Vec::with_capacity(trace.len());
        let mut per_worker = Vec::with_capacity(workers);
        let mut merged = vec![TenantAccum::default(); n_tenants];
        for (worker, partial) in partials.into_iter().enumerate() {
            let (shard_results, wall_ns, accums) = partial.expect("worker output missing");
            let pkts = shard_results.len() as u64;
            per_worker.push(WorkerReport {
                worker,
                pkts,
                wall_ns,
                mpps: crate::mpps(pkts, wall_ns),
            });
            results.extend(shard_results);
            for (into, from) in merged.iter_mut().zip(accums) {
                into.pkts += from.pkts;
                into.busy_ns += from.busy_ns;
                into.latencies.extend(from.latencies);
            }
        }
        debug_assert_eq!(results.len(), trace.len());

        let tenants: Vec<TenantReport> = merged
            .into_iter()
            .enumerate()
            .map(|(t, mut accum)| TenantReport {
                tenant: t as TenantId,
                name: self.tenants[t].name.clone(),
                pkts: accum.pkts,
                busy_ns: accum.busy_ns,
                mpps: crate::mpps(accum.pkts, accum.busy_ns),
                batch_latency: LatencyPercentiles::from_samples(&mut accum.latencies),
                cache: self.tenants[t].cache.as_ref().map(|c| {
                    c.stats()
                        .delta_since(cache_before[t].as_ref().expect("snapshotted above"))
                }),
            })
            .collect();
        let rates: Vec<f64> = tenants
            .iter()
            .filter(|t| t.pkts > 0)
            .map(|t| t.mpps)
            .collect();
        let fairness = FairnessSummary::over_rates(&rates);

        let wall_ns = started.elapsed().as_nanos() as u64;
        let pkts = results.len() as u64;
        TenantRun {
            results,
            report: ThroughputReport {
                pkts,
                wall_ns,
                mpps: crate::mpps(pkts, wall_ns),
                per_worker,
            },
            tenants,
            fairness,
        }
    }

    /// Serves one tenant's headers solo through the shared-pool geometry
    /// (same workers/batch), as a plain [`Trace`] — the baseline the
    /// tenant-cell benchmark compares cross-tenant batching against.
    /// Always uncached, so the baseline measures the classifier itself
    /// and the solo run neither warms nor perturbs the tenant's cache.
    pub fn classify_solo(&self, tenant: TenantId, trace: &Trace) -> EngineRun {
        let live = Arc::clone(&self.tenants[tenant as usize].live);
        crate::run_sharded(trace, self.workers, self.batch, |_, headers, results| {
            live.snapshot().classify_batch(headers, results);
        })
    }
}

impl<C> std::fmt::Debug for TenantRouter<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRouter")
            .field("tenants", &self.tenants.len())
            .field("workers", &self.workers)
            .field("batch", &self.batch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_algos::update::RuleUpdate;
    use pclass_algos::{HiCutsClassifier, HiCutsConfig, LinearClassifier};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use pclass_types::RuleSet;

    fn ruleset(rules: usize, seed: u64) -> RuleSet {
        ClassBenchGenerator::new(SeedStyle::Acl, seed).generate(rules)
    }

    fn trace_for(rs: &RuleSet, seed: u64, packets: usize) -> Trace {
        TraceGenerator::new(rs, seed).generate(packets)
    }

    #[test]
    fn interleave_is_proportional_and_order_preserving() {
        let a = ruleset(30, 1);
        let b = ruleset(30, 2);
        let ta = trace_for(&a, 3, 300);
        let tb = trace_for(&b, 4, 100);
        let tagged = TaggedTrace::interleave("mix", &[ta.clone(), tb.clone()]);
        assert_eq!(tagged.len(), 400);
        assert_eq!(tagged.tenant_count(), 2);
        // Per-tenant order is preserved exactly.
        let headers_a: Vec<_> = ta.entries().iter().map(|e| e.header).collect();
        let headers_b: Vec<_> = tb.entries().iter().map(|e| e.header).collect();
        assert_eq!(tagged.tenant_headers(0), headers_a);
        assert_eq!(tagged.tenant_headers(1), headers_b);
        // Proportional-fair: every prefix carries each tenant's share to
        // within one packet of exact proportionality.
        let mut seen = [0usize; 2];
        for (i, pkt) in tagged.entries().iter().enumerate() {
            seen[pkt.tenant as usize] += 1;
            let expect_a = (i + 1) as f64 * 300.0 / 400.0;
            assert!(
                (seen[0] as f64 - expect_a).abs() <= 1.0,
                "prefix {} has {} tenant-0 packets, expected ~{expect_a}",
                i + 1,
                seen[0]
            );
        }
        // Deterministic.
        assert_eq!(tagged, TaggedTrace::interleave("mix", &[ta, tb]));
    }

    #[test]
    fn single_tenant_router_matches_live_engine_packet_for_packet() {
        let rs = ruleset(120, 11);
        let trace = trace_for(&rs, 12, 900);
        let tagged = TaggedTrace::interleave("solo", std::slice::from_ref(&trace));
        for workers in [1usize, 3] {
            let config = EngineConfig::new().workers(workers).batch_size(128);
            let router =
                config.tenant_router([("only".to_string(), LinearClassifier::new(rs.clone()))]);
            let live = Arc::new(LiveClassifier::new(LinearClassifier::new(rs.clone())));
            let engine = config.live_engine(live);
            let run = router.classify_tagged(&tagged);
            assert_eq!(run.results, engine.classify_trace(&trace).results);
            assert_eq!(run.tenants.len(), 1);
            assert_eq!(run.tenants[0].pkts, trace.len() as u64);
            assert_eq!(run.fairness.jain_index, 1.0);
        }
    }

    #[test]
    fn interleaved_tenants_each_get_their_own_solo_results() {
        let rulesets: Vec<RuleSet> = (0..4)
            .map(|t| ruleset(60 + 10 * t, 20 + t as u64))
            .collect();
        let traces: Vec<Trace> = rulesets
            .iter()
            .enumerate()
            .map(|(t, rs)| trace_for(rs, 30 + t as u64, 250))
            .collect();
        let tagged = TaggedTrace::interleave("quad", &traces);
        let router = EngineConfig::new().workers(2).batch_size(64).tenant_router(
            rulesets
                .iter()
                .enumerate()
                .map(|(t, rs)| (format!("t{t}"), LinearClassifier::new(rs.clone()))),
        );
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.results.len(), tagged.len());
        for (t, rs) in rulesets.iter().enumerate() {
            let got = tagged.tenant_results(t as TenantId, &run.results);
            let expected = traces[t].ground_truth(rs);
            assert_eq!(got, expected, "tenant {t}");
            assert_eq!(run.tenants[t].pkts, 250);
            assert_eq!(router.name(t as TenantId), format!("t{t}"));
        }
        let total: u64 = run.tenants.iter().map(|t| t.pkts).sum();
        assert_eq!(total, tagged.len() as u64);
    }

    #[test]
    fn churn_on_one_tenant_leaves_the_others_untouched() {
        let rs0 = ruleset(80, 41);
        let rs1 = ruleset(80, 42);
        let flat_for =
            |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
        let router = EngineConfig::new().workers(2).tenant_router([
            ("churny".to_string(), flat_for(&rs0)),
            ("steady".to_string(), flat_for(&rs1)),
        ]);
        router
            .live(0)
            .apply_batch(&[RuleUpdate::Delete(5)])
            .expect("delete applies");
        assert_eq!(router.live(0).generation(), 1);
        assert_eq!(router.live(1).generation(), 0, "tenant 1 never updated");
        // Tenant 1 still serves its original ruleset; tenant 0 serves the
        // post-delete one.
        let t0 = trace_for(&rs0, 43, 200);
        let t1 = trace_for(&rs1, 44, 200);
        let tagged = TaggedTrace::interleave("pair", &[t0.clone(), t1.clone()]);
        let run = router.classify_tagged(&tagged);
        assert_eq!(
            tagged.tenant_results(1, &run.results),
            t1.ground_truth(&rs1)
        );
        let live0 = router.live(0).snapshot();
        for (header, got) in t0
            .entries()
            .iter()
            .map(|e| e.header)
            .zip(tagged.tenant_results(0, &run.results))
        {
            assert_eq!(got, live0.classify(&header));
        }
    }

    #[test]
    fn accounting_covers_only_tenants_with_traffic() {
        let rs = ruleset(50, 51);
        let trace = trace_for(&rs, 52, 300);
        let router = EngineConfig::new().tenant_router([
            ("busy".to_string(), LinearClassifier::new(rs.clone())),
            ("idle".to_string(), LinearClassifier::new(rs.clone())),
        ]);
        // All traffic tagged for tenant 0.
        let tagged = TaggedTrace::interleave("one-sided", std::slice::from_ref(&trace));
        let run = router.classify_tagged(&tagged);
        assert_eq!(run.tenants[0].pkts, 300);
        assert_eq!(run.tenants[1].pkts, 0);
        assert_eq!(run.tenants[1].batch_latency, LatencyPercentiles::default());
        // Fairness is over served tenants only — one busy tenant is fair.
        assert_eq!(run.fairness.jain_index, 1.0);
        assert!(run.tenants[0].busy_ns > 0);
    }

    #[test]
    fn empty_tagged_trace_is_served() {
        let rs = ruleset(20, 61);
        let router = EngineConfig::new()
            .workers(4)
            .tenant_router([("only".to_string(), LinearClassifier::new(rs))]);
        let run = router.classify_tagged(&TaggedTrace::new("empty", vec![]));
        assert!(run.results.is_empty());
        assert_eq!(run.report.pkts, 0);
        assert_eq!(run.tenants[0].pkts, 0);
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn unknown_tenant_id_panics() {
        let rs = ruleset(20, 71);
        let router = EngineConfig::new()
            .tenant_router([("only".to_string(), LinearClassifier::new(rs.clone()))]);
        let header = trace_for(&rs, 72, 1).entries()[0].header;
        let tagged = TaggedTrace::new("bad", vec![TaggedPacket { tenant: 7, header }]);
        router.classify_tagged(&tagged);
    }

    #[test]
    fn per_tenant_caches_stay_within_the_router_entry_budget() {
        let rs = ruleset(30, 91);
        let make = |n: usize| {
            EngineConfig::new()
                .hot_cache(pclass_algos::HotCacheConfig::new(1024, 4))
                .tenant_router((0..n).map(|t| (format!("t{t}"), LinearClassifier::new(rs.clone()))))
        };
        for n in [1usize, 3, 5] {
            let router = make(n);
            assert!(
                router.cache_slot_total() <= 1024,
                "{n} tenants allocated {} slots over the 1024 budget",
                router.cache_slot_total()
            );
            for t in 0..n {
                assert_eq!(
                    router.cache_stats(t as TenantId),
                    Some(pclass_types::CacheStats::default()),
                    "fresh cache, tenant {t}"
                );
            }
        }
        // A budget smaller than the roster degrades to pass-through, never
        // to over-budget.
        let starved = EngineConfig::new()
            .hot_cache(pclass_algos::HotCacheConfig::new(1, 4))
            .tenant_router((0..3).map(|t| (format!("t{t}"), LinearClassifier::new(rs.clone()))));
        assert_eq!(starved.cache_slot_total(), 0);
        // No cache configured: no slots, no stats.
        let uncached = EngineConfig::new()
            .tenant_router([("only".to_string(), LinearClassifier::new(rs.clone()))]);
        assert_eq!(uncached.cache_slot_total(), 0);
        assert_eq!(uncached.cache_stats(0), None);
    }

    #[test]
    fn cached_router_serves_identically_and_isolates_churn() {
        let rs0 = ruleset(80, 95);
        let rs1 = ruleset(80, 96);
        let flat_for =
            |rs: &RuleSet| HiCutsClassifier::build(rs, &HiCutsConfig::paper_defaults()).flatten();
        let router = EngineConfig::new()
            .workers(2)
            .batch_size(64)
            .hot_cache(pclass_algos::HotCacheConfig::new(1024, 4))
            .tenant_router([
                ("churny".to_string(), flat_for(&rs0)),
                ("steady".to_string(), flat_for(&rs1)),
            ]);
        let t0 = trace_for(&rs0, 97, 400);
        let t1 = trace_for(&rs1, 98, 400);
        let tagged = TaggedTrace::interleave("pair", &[t0.clone(), t1.clone()]);
        // Cold pass and warm pass both match ground truth; the warm pass
        // reports hits in the per-run delta.
        for pass in 0..2 {
            let run = router.classify_tagged(&tagged);
            assert_eq!(
                tagged.tenant_results(0, &run.results),
                t0.ground_truth(&rs0),
                "tenant 0, pass {pass}"
            );
            assert_eq!(
                tagged.tenant_results(1, &run.results),
                t1.ground_truth(&rs1),
                "tenant 1, pass {pass}"
            );
            for report in &run.tenants {
                let cache = report.cache.expect("cache configured");
                assert_eq!(
                    cache.hits + cache.misses,
                    report.pkts,
                    "per-run delta covers exactly this run's packets"
                );
                if pass == 1 {
                    assert!(cache.hits > 0, "warm pass must hit ({})", report.name);
                }
            }
        }
        // Churn tenant 0: its stale entries die by generation, tenant 1's
        // warm cache keeps serving the same (still correct) results.
        router
            .live(0)
            .apply_batch(&[RuleUpdate::Delete(5)])
            .expect("delete applies");
        let run = router.classify_tagged(&tagged);
        let live0 = router.live(0).snapshot();
        for (header, got) in t0
            .entries()
            .iter()
            .map(|e| e.header)
            .zip(tagged.tenant_results(0, &run.results))
        {
            assert_eq!(got, live0.classify(&header), "post-churn tenant 0");
        }
        assert_eq!(
            tagged.tenant_results(1, &run.results),
            t1.ground_truth(&rs1),
            "tenant 1 untouched by tenant 0 churn"
        );
        let steady = run.tenants[1].cache.expect("cache configured");
        assert!(steady.hits > 0, "tenant 1 cache stays warm across churn");
    }

    #[test]
    fn classify_solo_matches_ground_truth() {
        let rs = ruleset(90, 81);
        let trace = trace_for(&rs, 82, 400);
        let router = EngineConfig::new()
            .workers(2)
            .tenant_router([("only".to_string(), LinearClassifier::new(rs.clone()))]);
        let run = router.classify_solo(0, &trace);
        assert_eq!(run.results, trace.ground_truth(&rs));
    }
}
