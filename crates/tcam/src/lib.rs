//! Functional TCAM packet classifier baseline.
//!
//! The paper positions its accelerator against the prevailing hardware
//! solution, Ternary Content Addressable Memory: a TCAM compares a 144-bit
//! search key against every stored entry in parallel and returns the first
//! (highest-priority) match in O(1) clock cycles, at the cost of high power
//! and poor storage efficiency for rules containing ranges (each port range
//! has to be expanded into multiple prefixes, and real-world databases reach
//! only 16–53 % storage efficiency, §1 of the paper).
//!
//! This crate provides:
//!
//! * [`TcamClassifier`] — a functional model: rules are expanded into
//!   ternary entries (value/mask pairs per field), lookups scan the entries
//!   in priority order (modelling the parallel match + priority encoder) and
//!   report a single-cycle match, so its decisions can be validated against
//!   linear search and its entry count drives the storage-efficiency and
//!   power comparisons.
//! * [`TcamStats`] — entry counts, expansion factor and storage efficiency.
//!
//! Datasheet power/throughput figures of the Cypress parts the paper quotes
//! live in `pclass-energy::tcam_datasheet`.

//!
//! # Example
//!
//! Program the toy ruleset into the TCAM model and validate a lookup
//! against linear search:
//!
//! ```
//! use pclass_tcam::TcamClassifier;
//! use pclass_types::{DimensionSpec, PacketHeader, RuleBuilder, RuleSet};
//!
//! // "Allow TCP 10.0.0.0/8 to any web port, then drop that subnet."
//! let rules = vec![
//!     RuleBuilder::new(0)
//!         .src_prefix(0x0A00_0000, 8)
//!         .dst_port_range(80, 88)
//!         .protocol(6)
//!         .build(),
//!     RuleBuilder::new(1).src_prefix(0x0A00_0000, 8).build(),
//! ];
//! let rs = RuleSet::new("web", DimensionSpec::FIVE_TUPLE, rules).unwrap();
//! let tcam = TcamClassifier::program(&rs).unwrap();
//!
//! let pkt = PacketHeader::five_tuple(0x0A01_0203, 0, 4000, 84, 6);
//! assert_eq!(tcam.classify(&pkt), rs.classify_linear(&pkt));
//!
//! // The 80–88 port range is not prefix-aligned, so it expands into
//! // several ternary entries — the storage-efficiency cost the paper
//! // holds against TCAMs.
//! assert!(tcam.stats().entries > rs.len());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pclass_types::{
    Dimension, FieldRange, MatchResult, PacketHeader, Prefix, Rule, RuleId, RuleSet, FIELD_COUNT,
};

/// One ternary entry: a (value, care-mask) pair per field.  A packet matches
/// the entry when `(packet_field & mask) == value` for every field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamEntry {
    /// Field values (bits outside the mask are stored as 0).
    pub value: [u32; FIELD_COUNT],
    /// Care masks (1 bits are compared, 0 bits are "don't care").
    pub mask: [u32; FIELD_COUNT],
    /// The rule this entry belongs to.
    pub rule: RuleId,
}

impl TcamEntry {
    /// `true` if the packet matches this entry.
    #[inline]
    pub fn matches(&self, pkt: &PacketHeader) -> bool {
        for d in 0..FIELD_COUNT {
            if pkt.fields[d] & self.mask[d] != self.value[d] {
                return false;
            }
        }
        true
    }
}

/// Storage statistics of a programmed TCAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcamStats {
    /// Rules in the original ruleset.
    pub rules: usize,
    /// Ternary entries after range-to-prefix expansion.
    pub entries: usize,
    /// Average entries per rule.
    pub expansion_factor: f64,
    /// Storage efficiency (`rules / entries`) — the paper quotes 16–53 %
    /// with an average of 34 % for real databases.
    pub storage_efficiency: f64,
    /// Bits of TCAM storage used, at the standard 144-bit slot width.
    pub storage_bits: usize,
}

/// Width of one TCAM slot in bits (the 144-bit quad-word the Ayama parts and
/// the paper use for a 5-tuple key).
pub const TCAM_SLOT_BITS: usize = 144;

/// Errors raised while programming the TCAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcamError {
    /// A rule's IP field is neither a prefix nor expressible as one, so it
    /// cannot be converted to ternary form.
    UnsupportedIpRange {
        /// The offending rule.
        rule: RuleId,
        /// The offending dimension.
        dimension: Dimension,
    },
}

impl std::fmt::Display for TcamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcamError::UnsupportedIpRange { rule, dimension } => {
                write!(
                    f,
                    "rule {rule}: {dimension} range cannot be expressed as a prefix set"
                )
            }
        }
    }
}

impl std::error::Error for TcamError {}

/// The functional TCAM model.
#[derive(Debug, Clone)]
pub struct TcamClassifier {
    entries: Vec<TcamEntry>,
    rules: usize,
}

impl TcamClassifier {
    /// Programs the TCAM with a ruleset, expanding every range field into
    /// prefixes.  Entries retain ruleset priority order (entries of rule *k*
    /// come before entries of rule *k + 1*), which is how a real TCAM's
    /// priority encoder resolves multiple matches.
    pub fn program(ruleset: &RuleSet) -> Result<TcamClassifier, TcamError> {
        let mut entries = Vec::new();
        for rule in ruleset.rules() {
            for entry in expand_rule(rule, ruleset)? {
                entries.push(entry);
            }
        }
        Ok(TcamClassifier {
            entries,
            rules: ruleset.len(),
        })
    }

    /// The programmed entries.
    pub fn entries(&self) -> &[TcamEntry] {
        &self.entries
    }

    /// Classifies a packet: all entries are compared in parallel in hardware;
    /// the model scans in priority order and returns the first match, which
    /// is the same answer the priority encoder gives.
    pub fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        for entry in &self.entries {
            if entry.matches(pkt) {
                return MatchResult::Matched(entry.rule);
            }
        }
        MatchResult::NoMatch
    }

    /// Storage statistics.
    pub fn stats(&self) -> TcamStats {
        let entries = self.entries.len();
        let rules = self.rules;
        TcamStats {
            rules,
            entries,
            expansion_factor: if rules == 0 {
                0.0
            } else {
                entries as f64 / rules as f64
            },
            storage_efficiency: if entries == 0 {
                0.0
            } else {
                rules as f64 / entries as f64
            },
            storage_bits: entries * TCAM_SLOT_BITS,
        }
    }
}

impl pclass_algos::Classifier for TcamClassifier {
    fn name(&self) -> &'static str {
        "tcam"
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        TcamClassifier::classify(self, pkt)
    }

    fn classify_with_stats(
        &self,
        pkt: &PacketHeader,
        stats: &mut pclass_algos::LookupStats,
    ) -> MatchResult {
        // A real TCAM compares every entry against the key in one clock and
        // priority-encodes the result: one memory access for the lookup, all
        // entries compared in parallel.  The comparator work is charged to
        // the ALU column so energy models see the match fabric's activity.
        stats.memory_accesses += 1;
        stats.rules_compared += self.entries.len() as u64;
        stats.ops.loads += 1;
        stats.ops.alu += self.entries.len() as u64;
        TcamClassifier::classify(self, pkt)
    }

    fn memory_bytes(&self) -> usize {
        self.stats().storage_bits.div_ceil(8)
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        // The parallel match makes every lookup a single access.
        Some(1)
    }
}

/// Expands one rule into ternary entries: the cross product of the prefix
/// expansions of its two port ranges (IP fields are prefixes already;
/// protocol is exact or wildcard).
fn expand_rule(rule: &Rule, ruleset: &RuleSet) -> Result<Vec<TcamEntry>, TcamError> {
    let ip = |dim: Dimension| -> Result<(u32, u32), TcamError> {
        let range = rule.range(dim);
        let width = ruleset.spec().width(dim);
        match Prefix::from_range(range, width) {
            Some(p) => {
                let mask = mask_of(p.length, width);
                Ok((p.value & mask, mask))
            }
            None => Err(TcamError::UnsupportedIpRange {
                rule: rule.id,
                dimension: dim,
            }),
        }
    };
    let (src_v, src_m) = ip(Dimension::SrcIp)?;
    let (dst_v, dst_m) = ip(Dimension::DstIp)?;

    let port_prefixes = |dim: Dimension| -> Vec<(u32, u32)> {
        let width = ruleset.spec().width(dim);
        Prefix::expand_range(rule.range(dim), width)
            .into_iter()
            .map(|p| {
                let mask = mask_of(p.length, width);
                (p.value & mask, mask)
            })
            .collect()
    };
    let sports = port_prefixes(Dimension::SrcPort);
    let dports = port_prefixes(Dimension::DstPort);

    let proto_range = rule.range(Dimension::Protocol);
    let proto_width = ruleset.spec().width(Dimension::Protocol);
    let protos: Vec<(u32, u32)> = Prefix::expand_range(proto_range, proto_width)
        .into_iter()
        .map(|p| {
            let mask = mask_of(p.length, proto_width);
            (p.value & mask, mask)
        })
        .collect();

    let mut out = Vec::with_capacity(sports.len() * dports.len() * protos.len());
    for &(sp_v, sp_m) in &sports {
        for &(dp_v, dp_m) in &dports {
            for &(pr_v, pr_m) in &protos {
                out.push(TcamEntry {
                    value: [src_v, dst_v, sp_v, dp_v, pr_v],
                    mask: [src_m, dst_m, sp_m, dp_m, pr_m],
                    rule: rule.id,
                });
            }
        }
    }
    Ok(out)
}

/// Care mask of a prefix of `length` bits over a `width`-bit field.
fn mask_of(length: u8, width: u8) -> u32 {
    if length == 0 {
        0
    } else {
        let full = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        if length >= width {
            full
        } else {
            full & !((1u32 << (width - length)) - 1)
        }
    }
}

/// Expands a full range into `(value, mask)` ternary pairs directly
/// (convenience wrapper used by the storage-efficiency analysis and tests).
pub fn range_to_ternary(range: FieldRange, width: u8) -> Vec<(u32, u32)> {
    Prefix::expand_range(range, width)
        .into_iter()
        .map(|p| (p.value & mask_of(p.length, width), mask_of(p.length, width)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::{DimensionSpec, RuleBuilder};

    fn sample_set() -> RuleSet {
        let rules = vec![
            RuleBuilder::new(0)
                .src_prefix(0x0A00_0000, 8)
                .dst_prefix(0xC0A8_0100, 24)
                .dst_port(80)
                .protocol(6)
                .build(),
            RuleBuilder::new(1)
                .src_port_range(1024, 65535) // expands to 6 prefixes
                .protocol(17)
                .build(),
            RuleBuilder::new(2).build(),
        ];
        RuleSet::new("tcam_test", DimensionSpec::FIVE_TUPLE, rules).unwrap()
    }

    #[test]
    fn classification_matches_linear_search() {
        let rs = sample_set();
        let tcam = TcamClassifier::program(&rs).unwrap();
        let packets = [
            PacketHeader::five_tuple(0x0A01_0101, 0xC0A8_0105, 4000, 80, 6),
            PacketHeader::five_tuple(0x0A01_0101, 0xC0A8_0105, 4000, 81, 6),
            PacketHeader::five_tuple(0x0B01_0101, 0x01020304, 2048, 53, 17),
            PacketHeader::five_tuple(0x0B01_0101, 0x01020304, 80, 53, 17),
            PacketHeader::five_tuple(0, 0, 0, 0, 0),
        ];
        for pkt in packets {
            assert_eq!(
                tcam.classify(&pkt),
                rs.classify_linear(&pkt),
                "packet {pkt}"
            );
        }
    }

    #[test]
    fn range_expansion_counts() {
        let rs = sample_set();
        let tcam = TcamClassifier::program(&rs).unwrap();
        let stats = tcam.stats();
        assert_eq!(stats.rules, 3);
        // Rule 0: 1 entry; rule 1: 6 (ephemeral range) entries; rule 2: 1.
        assert_eq!(stats.entries, 8);
        assert!((stats.expansion_factor - 8.0 / 3.0).abs() < 1e-9);
        assert!((stats.storage_efficiency - 3.0 / 8.0).abs() < 1e-9);
        assert_eq!(stats.storage_bits, 8 * TCAM_SLOT_BITS);
    }

    #[test]
    fn ephemeral_range_expands_to_six_prefixes() {
        let pairs = range_to_ternary(FieldRange::new(1024, 65535), 16);
        assert_eq!(pairs.len(), 6);
        // The pairs exactly cover [1024, 65535].
        for v in [0u32, 1023, 1024, 2048, 65535] {
            let covered = pairs.iter().any(|&(val, mask)| v & mask == val);
            assert_eq!(covered, v >= 1024, "value {v}");
        }
    }

    #[test]
    fn storage_efficiency_degrades_with_arbitrary_ranges() {
        let rules = vec![
            RuleBuilder::new(0).dst_port_range(123, 7777).build(),
            RuleBuilder::new(1)
                .src_port_range(5, 60_000)
                .dst_port_range(3, 60_001)
                .build(),
        ];
        let rs = RuleSet::new("ranges", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let tcam = TcamClassifier::program(&rs).unwrap();
        let stats = tcam.stats();
        assert!(
            stats.storage_efficiency < 0.05,
            "efficiency {}",
            stats.storage_efficiency
        );
        // Correctness is preserved regardless of the expansion.
        for (sp, dp) in [(5u16, 3u16), (100, 123), (60_000, 7_777), (60_001, 60_002)] {
            let pkt = PacketHeader::five_tuple(1, 2, sp, dp, 6);
            assert_eq!(tcam.classify(&pkt), rs.classify_linear(&pkt));
        }
    }

    #[test]
    fn non_prefix_ip_is_rejected() {
        let rules = vec![RuleBuilder::new(0).src_ip_range(3, 9).build()];
        let rs = RuleSet::new("bad", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let err = TcamClassifier::program(&rs).unwrap_err();
        assert!(matches!(
            err,
            TcamError::UnsupportedIpRange {
                rule: 0,
                dimension: Dimension::SrcIp
            }
        ));
    }

    #[test]
    fn empty_ruleset() {
        let rs = RuleSet::new("empty", DimensionSpec::FIVE_TUPLE, vec![]).unwrap();
        let tcam = TcamClassifier::program(&rs).unwrap();
        assert_eq!(
            tcam.classify(&PacketHeader::five_tuple(1, 2, 3, 4, 5)),
            MatchResult::NoMatch
        );
        let stats = tcam.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.storage_efficiency, 0.0);
    }

    #[test]
    fn classifier_trait_impl_matches_inherent_lookup() {
        use pclass_algos::Classifier;
        let rs = sample_set();
        let tcam = TcamClassifier::program(&rs).unwrap();
        assert_eq!(Classifier::name(&tcam), "tcam");
        assert_eq!(tcam.worst_case_memory_accesses(), Some(1));
        assert_eq!(tcam.memory_bytes(), tcam.stats().storage_bits.div_ceil(8));
        let pkts: Vec<PacketHeader> = (0u32..40)
            .map(|i| PacketHeader::five_tuple(0x0A01_0101 ^ i, 0xC0A8_0105, 4000, 80, 6))
            .collect();
        let mut batched = Vec::new();
        tcam.classify_batch(&pkts, &mut batched);
        for (pkt, got) in pkts.iter().zip(&batched) {
            assert_eq!(*got, TcamClassifier::classify(&tcam, pkt));
        }
        let mut stats = pclass_algos::LookupStats::new();
        tcam.classify_with_stats(&pkts[0], &mut stats);
        assert_eq!(stats.memory_accesses, 1);
        assert_eq!(stats.rules_compared, tcam.entries().len() as u64);
    }

    #[test]
    fn priority_resolution_prefers_lower_rule_id() {
        let rules = vec![
            RuleBuilder::new(0).protocol(6).build(),
            RuleBuilder::new(1).build(),
        ];
        let rs = RuleSet::new("prio", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let tcam = TcamClassifier::program(&rs).unwrap();
        let tcp = PacketHeader::five_tuple(1, 2, 3, 4, 6);
        assert_eq!(tcam.classify(&tcp), MatchResult::Matched(0));
        let udp = PacketHeader::five_tuple(1, 2, 3, 4, 17);
        assert_eq!(tcam.classify(&udp), MatchResult::Matched(1));
    }
}
