//! Datasheet figures for the commercial TCAM and SRAM parts the paper
//! compares against in §5.3.

use crate::device::{normalize_power, TechnologyNode};

/// A commercial TCAM-based network search engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TcamPart {
    /// Part name.
    pub name: &'static str,
    /// Clock frequency in hertz at the quoted operating point.
    pub frequency_hz: f64,
    /// Power at that operating point, in watts.
    pub power_w: f64,
    /// Searchable memory in bytes.
    pub memory_bytes: usize,
    /// Maximum 144-bit searches per second.
    pub searches_per_second: f64,
}

impl TcamPart {
    /// Cypress Ayama 10128 operating at 77 MHz with 576,000 bytes — the
    /// "most energy efficient commercial TCAM solution" the FPGA is compared
    /// with (2.9 W vs the FPGA's 1.8 W).
    pub fn ayama_10128_at_77mhz() -> TcamPart {
        TcamPart {
            name: "Cypress Ayama 10128 @ 77 MHz",
            frequency_hz: 77e6,
            power_w: 2.9,
            memory_bytes: 576_000,
            searches_per_second: 77e6,
        }
    }

    /// Cypress Ayama 10512 at its top speed: 133 million searches per second
    /// with 2.304 MB of memory, consuming 19.14 W.
    pub fn ayama_10512_at_133mhz() -> TcamPart {
        TcamPart {
            name: "Cypress Ayama 10512 @ 133 MHz",
            frequency_hz: 133e6,
            power_w: 19.14,
            memory_bytes: 2_304_000,
            searches_per_second: 133e6,
        }
    }

    /// The low end of the Ayama 10000 family power range quoted in §1
    /// (4.86 W – 19.14 W depending on TCAM size).
    pub fn ayama_family_min() -> TcamPart {
        TcamPart {
            name: "Cypress Ayama 10000 (smallest)",
            frequency_hz: 133e6,
            power_w: 4.86,
            memory_bytes: 576_000,
            searches_per_second: 133e6,
        }
    }

    /// Energy per search (joules per classified packet).
    pub fn energy_per_search_j(&self) -> f64 {
        self.power_w / self.searches_per_second
    }
}

/// A commercial synchronous SRAM (used alongside TCAMs to hold associated
/// data; the paper uses them as the memory-power yardstick for the ASIC
/// comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct SramPart {
    /// Part name.
    pub name: &'static str,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Power at that frequency, in watts.
    pub power_w: f64,
    /// Core voltage in volts.
    pub voltage_v: f64,
    /// Capacity in bytes.
    pub memory_bytes: usize,
}

impl SramPart {
    /// Cypress CY7C1381D: 2.304 MB, 693 mW at 133 MHz, 3.3 V core.
    pub fn cy7c1381d() -> SramPart {
        SramPart {
            name: "Cypress CY7C1381D",
            frequency_hz: 133e6,
            power_w: 0.693,
            voltage_v: 3.3,
            memory_bytes: 2_304_000,
        }
    }

    /// Cypress CY7C1370DV25: 2.304 MB, 875 mW at 250 MHz, 2.5 V core.
    pub fn cy7c1370dv25() -> SramPart {
        SramPart {
            name: "Cypress CY7C1370DV25",
            frequency_hz: 250e6,
            power_w: 0.875,
            voltage_v: 2.5,
            memory_bytes: 2_304_000,
        }
    }

    /// Power normalised to the 65 nm / 1 V reference (Eq. 8), treating the
    /// part's lithography as 90 nm-class (the generation those parts ship
    /// in); used only for qualitative comparisons.
    pub fn normalized_power_w(&self, process_nm: f64) -> f64 {
        normalize_power(
            self.power_w,
            TechnologyNode {
                process_nm,
                voltage_v: self.voltage_v,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;

    #[test]
    fn fpga_beats_the_most_efficient_tcam_at_the_same_clock() {
        // §5.3: the FPGA accelerator with 614,400 bytes draws 1.8 W at
        // 77 MHz versus 2.9 W for the Ayama 10128 with 576,000 bytes.
        let fpga = DeviceModel::fpga_virtex5();
        let tcam = TcamPart::ayama_10128_at_77mhz();
        assert!(fpga.power_w < tcam.power_w);
        assert!((tcam.frequency_hz - fpga.frequency_hz).abs() < 1.0);
    }

    #[test]
    fn asic_beats_the_tcam_by_orders_of_magnitude() {
        // §5.3: ASIC 11.65 mW at 133 MHz vs 19.14 W for the Ayama 10512,
        // and even adding the 693 mW SRAM leaves a huge gap.
        let asic = DeviceModel::asic_65nm();
        let asic_133 = asic.power_at_frequency_w(133e6);
        let tcam = TcamPart::ayama_10512_at_133mhz();
        let sram = SramPart::cy7c1381d();
        assert!(asic_133 * 100.0 < tcam.power_w);
        assert!(asic_133 < sram.power_w);
        // ASIC at 226 MHz still draws less than the 250 MHz SRAM alone.
        assert!(asic.power_w < SramPart::cy7c1370dv25().power_w);
    }

    #[test]
    fn tcam_energy_per_search() {
        let tcam = TcamPart::ayama_10512_at_133mhz();
        let e = tcam.energy_per_search_j();
        // 19.14 W / 133 Mpps ≈ 1.44e-7 J per packet — three orders of
        // magnitude above the ASIC accelerator's Table 6 figures.
        assert!(e > 1e-7 && e < 2e-7);
        let asic_per_packet = DeviceModel::asic_65nm().normalized_energy_j(2);
        assert!(e > 100.0 * asic_per_packet);
    }

    #[test]
    fn family_power_range_matches_the_introduction() {
        let lo = TcamPart::ayama_family_min();
        let hi = TcamPart::ayama_10512_at_133mhz();
        assert!(lo.power_w >= 4.8 && lo.power_w <= 5.0);
        assert!(hi.power_w >= 19.0 && hi.power_w <= 19.2);
    }

    #[test]
    fn sram_normalisation_is_monotonic_in_process() {
        let sram = SramPart::cy7c1381d();
        assert!(sram.normalized_power_w(90.0) < sram.normalized_power_w(65.0));
        assert!(sram.normalized_power_w(90.0) < sram.power_w);
    }
}
