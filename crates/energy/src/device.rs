//! Device models and technology normalisation (Table 5 and Eq. 8).

/// Process/voltage description of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyNode {
    /// Feature size in nanometres.
    pub process_nm: f64,
    /// Core supply voltage in volts.
    pub voltage_v: f64,
}

impl TechnologyNode {
    /// The 65 nm / 1 V reference point the paper normalises to.
    pub const REFERENCE: TechnologyNode = TechnologyNode {
        process_nm: 65.0,
        voltage_v: 1.0,
    };
}

/// Normalises a power figure to the reference technology using Eq. 8 of the
/// paper: `P' = P * S^2 * U`, where `S` is the process scaling factor and
/// `U` the voltage scaling factor.
pub fn normalize_power(power_w: f64, node: TechnologyNode) -> f64 {
    let s = TechnologyNode::REFERENCE.process_nm / node.process_nm;
    let u = TechnologyNode::REFERENCE.voltage_v / node.voltage_v;
    power_w * s * s * u
}

/// A device running one of the classification engines (Table 5).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Technology node.
    pub node: TechnologyNode,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// Power drawn by the modelled logic at `frequency_hz`, in watts,
    /// *before* normalisation (the FPGA figure includes its block RAMs, the
    /// ASIC and StrongARM figures cover the datapath logic only, exactly as
    /// in the paper).
    pub power_w: f64,
    /// Equivalent 2-input NAND gate count, when reported.
    pub area_gates: Option<u64>,
    /// FPGA slices used, when applicable.
    pub slices: Option<(u32, f64)>,
    /// FPGA block RAMs used, when applicable.
    pub block_rams: Option<(u32, f64)>,
}

impl DeviceModel {
    /// The 65 nm ASIC implementation of the accelerator: 226 MHz, 19.79 mW
    /// raw (18.32 mW normalised), 51,488 gates.
    pub fn asic_65nm() -> DeviceModel {
        DeviceModel {
            name: "ASIC (65 nm)",
            node: TechnologyNode {
                process_nm: 65.0,
                voltage_v: 1.08,
            },
            frequency_hz: 226e6,
            power_w: 0.019_79,
            area_gates: Some(51_488),
            slices: None,
            block_rams: None,
        }
    }

    /// The Virtex-5 SX95T FPGA implementation: 77 MHz, 1.811 W including the
    /// 134 block RAMs that hold the search structure, 3,280 slices.
    pub fn fpga_virtex5() -> DeviceModel {
        DeviceModel {
            name: "FPGA (Virtex5SX95T)",
            node: TechnologyNode {
                process_nm: 65.0,
                voltage_v: 1.0,
            },
            frequency_hz: 77e6,
            power_w: 1.811,
            area_gates: None,
            slices: Some((3_280, 0.22)),
            block_rams: Some((134, 0.54)),
        }
    }

    /// The StrongARM SA-1100 network-processor engine the software
    /// algorithms run on: 180 nm, 1.8 V, 200 MHz.  The raw power figure is
    /// chosen so that its Eq.-8 normalisation reproduces the 42.45 mW entry
    /// of Table 5.
    pub fn strongarm_sa1100() -> DeviceModel {
        DeviceModel {
            name: "StrongARM SA-1100",
            node: TechnologyNode {
                process_nm: 180.0,
                voltage_v: 1.8,
            },
            frequency_hz: 200e6,
            power_w: 0.586,
            area_gates: Some(17_600_998),
            slices: None,
            block_rams: None,
        }
    }

    /// Power normalised to 65 nm / 1 V (Eq. 8) — the asterisked column of
    /// Table 5.
    pub fn normalized_power_w(&self) -> f64 {
        normalize_power(self.power_w, self.node)
    }

    /// Power when the device is clocked at a different frequency, assuming
    /// dynamic power scales linearly with frequency (how the paper derives
    /// the 11.65 mW @ 133 MHz ASIC figure from the 226 MHz characterisation).
    pub fn power_at_frequency_w(&self, frequency_hz: f64) -> f64 {
        self.power_w * frequency_hz / self.frequency_hz
    }

    /// Energy of running for `cycles` clock cycles at the nominal frequency,
    /// using the *normalised* power (joules).
    pub fn normalized_energy_j(&self, cycles: u64) -> f64 {
        self.normalized_power_w() * cycles as f64 / self.frequency_hz
    }

    /// Energy of running for `cycles` clock cycles using the raw power.
    pub fn raw_energy_j(&self, cycles: u64) -> f64 {
        self.power_w * cycles as f64 / self.frequency_hz
    }

    /// Seconds taken by `cycles` clock cycles.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_matches_table5() {
        // ASIC: 19.79 mW at 1.08 V, 65 nm -> 18.32 mW normalised.
        let asic = DeviceModel::asic_65nm();
        assert!((asic.normalized_power_w() * 1e3 - 18.32).abs() < 0.05);
        // StrongARM: 586 mW at 1.8 V, 180 nm -> ~42.45 mW normalised.
        let arm = DeviceModel::strongarm_sa1100();
        assert!((arm.normalized_power_w() * 1e3 - 42.45).abs() < 0.5);
        // FPGA is already at the reference point, so normalisation is a
        // no-op.
        let fpga = DeviceModel::fpga_virtex5();
        assert!((fpga.normalized_power_w() - fpga.power_w).abs() < 1e-12);
    }

    #[test]
    fn frequency_scaling_reproduces_paper_figures() {
        // §5.3: the ASIC consumes 11.65 mW at 133 MHz.
        let asic = DeviceModel::asic_65nm();
        let at_133 = asic.power_at_frequency_w(133e6);
        assert!((at_133 * 1e3 - 11.65).abs() < 0.1, "got {at_133}");
    }

    #[test]
    fn energy_per_packet_matches_table6_order_of_magnitude() {
        // Table 6: ASIC ~7.6e-11 J per packet for the small rulesets (1–2
        // cycles per packet), FPGA ~2.4e-8 J.
        let asic = DeviceModel::asic_65nm();
        let e = asic.normalized_energy_j(1);
        assert!(e > 5e-11 && e < 2e-10, "asic energy {e}");
        let fpga = DeviceModel::fpga_virtex5();
        let e = fpga.normalized_energy_j(1);
        assert!(e > 1e-8 && e < 5e-8, "fpga energy {e}");
    }

    #[test]
    fn seconds_and_raw_energy() {
        let asic = DeviceModel::asic_65nm();
        assert!((asic.seconds(226_000_000) - 1.0).abs() < 1e-9);
        assert!((asic.raw_energy_j(226_000_000) - 0.019_79).abs() < 1e-6);
    }

    #[test]
    fn eq8_is_quadratic_in_process_and_linear_in_voltage() {
        let p = normalize_power(
            1.0,
            TechnologyNode {
                process_nm: 130.0,
                voltage_v: 2.0,
            },
        );
        let expected = (65.0f64 / 130.0).powi(2) * (1.0 / 2.0);
        assert!((p - expected).abs() < 1e-12);
    }
}
