//! Energy accounting for the hardware accelerator (ASIC and FPGA targets).

use crate::device::DeviceModel;
use pclass_core::hw::ClassificationReport;

/// Wraps a [`DeviceModel`] with the accelerator-specific accounting used by
/// Tables 6 and 7: energy per classified packet and packets per second at
/// the device's clock.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorEnergyModel {
    device: DeviceModel,
}

impl AcceleratorEnergyModel {
    /// Model for the 65 nm ASIC implementation (226 MHz).
    pub fn asic() -> AcceleratorEnergyModel {
        AcceleratorEnergyModel {
            device: DeviceModel::asic_65nm(),
        }
    }

    /// Model for the Virtex-5 FPGA implementation (77 MHz).
    pub fn fpga() -> AcceleratorEnergyModel {
        AcceleratorEnergyModel {
            device: DeviceModel::fpga_virtex5(),
        }
    }

    /// Model over an arbitrary device description.
    pub fn with_device(device: DeviceModel) -> AcceleratorEnergyModel {
        AcceleratorEnergyModel { device }
    }

    /// The device description.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Total normalised energy to classify the whole trace of a report.
    pub fn trace_energy_j(&self, report: &ClassificationReport) -> f64 {
        self.device.normalized_energy_j(report.cycles)
    }

    /// Average normalised energy per classified packet (Table 6).
    pub fn energy_per_packet_j(&self, report: &ClassificationReport) -> f64 {
        if report.packets() == 0 {
            return 0.0;
        }
        self.trace_energy_j(report) / report.packets() as f64
    }

    /// Packets classified per second at the device clock (Table 7).
    pub fn packets_per_second(&self, report: &ClassificationReport) -> f64 {
        report.packets_per_second(self.device.frequency_hz)
    }

    /// The line rate in packets per second a given worst-case cycle count
    /// guarantees (minimum bandwidth under worst-case traffic, §5.2): the
    /// pipeline hides the root cycle, so the steady-state inter-packet gap
    /// is `worst_case_cycles - 1` clocks (minimum 1).
    pub fn guaranteed_packets_per_second(&self, worst_case_cycles: u32) -> f64 {
        let gap = worst_case_cycles.saturating_sub(1).max(1);
        self.device.frequency_hz / f64::from(gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_core::hw::{ClassificationReport, PacketCycles};
    use pclass_types::MatchResult;

    fn fake_report(packets: usize, cycles_per_packet: u32) -> ClassificationReport {
        ClassificationReport {
            results: vec![MatchResult::NoMatch; packets],
            per_packet: vec![
                PacketCycles {
                    internal_fetches: cycles_per_packet.saturating_sub(1),
                    leaf_fetches: 1,
                    rules_examined: 1,
                };
                packets
            ],
            cycles: 1 + u64::from(cycles_per_packet) * packets as u64,
            memory_accesses: u64::from(cycles_per_packet) * packets as u64,
        }
    }

    #[test]
    fn asic_energy_per_packet_matches_table6_band() {
        // One to two cycles per packet -> ~0.8e-10 to 1.6e-10 J (Table 6
        // reports 7.6e-11 to 2.1e-10 for the ASIC).
        let model = AcceleratorEnergyModel::asic();
        let report = fake_report(1000, 1);
        let e = model.energy_per_packet_j(&report);
        assert!(e > 5e-11 && e < 3e-10, "asic energy {e}");
    }

    #[test]
    fn fpga_energy_per_packet_matches_table6_band() {
        let model = AcceleratorEnergyModel::fpga();
        let report = fake_report(1000, 1);
        let e = model.energy_per_packet_j(&report);
        assert!(e > 1e-8 && e < 6e-8, "fpga energy {e}");
    }

    #[test]
    fn throughput_reaches_line_rate_for_two_cycle_worst_case() {
        let asic = AcceleratorEnergyModel::asic();
        // Worst case 2 cycles -> one packet per cycle -> 226 Mpps, above the
        // 125 Mpps OC-768 requirement quoted in the introduction.
        assert!(asic.guaranteed_packets_per_second(2) >= 226e6);
        assert!(
            asic.guaranteed_packets_per_second(5) >= 31.25e6,
            "must still beat OC-192"
        );
        let fpga = AcceleratorEnergyModel::fpga();
        assert!(fpga.guaranteed_packets_per_second(2) >= 77e6);
    }

    #[test]
    fn trace_energy_and_pps_are_consistent() {
        let model = AcceleratorEnergyModel::asic();
        let report = fake_report(500, 2);
        let total = model.trace_energy_j(&report);
        let per_packet = model.energy_per_packet_j(&report);
        assert!((total / 500.0 - per_packet).abs() < 1e-18);
        assert!(model.packets_per_second(&report) > 0.0);
        let empty = fake_report(0, 1);
        assert_eq!(model.energy_per_packet_j(&empty), 0.0);
    }

    #[test]
    fn custom_device_is_used() {
        let device = DeviceModel::asic_65nm();
        let model = AcceleratorEnergyModel::with_device(device.clone());
        assert_eq!(model.device(), &device);
    }
}
