//! Energy and power models for the packet-classification study.
//!
//! The paper compares three very different execution substrates:
//!
//! * the unmodified software algorithms running on a **StrongARM SA-1100**
//!   (180 nm, 1.8 V, 200 MHz), with energy obtained from Sim-Panalyzer;
//! * the hardware accelerator synthesised for a **65 nm ASIC** (1.08 V,
//!   226 MHz) with power from Synopsys PrimePower;
//! * the hardware accelerator on a **Xilinx Virtex-5 SX95T FPGA** (1.0 V,
//!   77 MHz) with power from XPower;
//!
//! plus commercial **TCAM** and **SRAM** parts from Cypress datasheets.
//!
//! Because the devices are built in different technologies, the paper
//! normalises power to a common 65 nm / 1 V point with Eq. 8
//! (`P' = P · S² · U`); [`device::normalize_power`] implements exactly that
//! and [`device::DeviceModel`] carries both the raw and the normalised
//! figures of Table 5.
//!
//! The software side replaces the micro-architectural simulator with an
//! *operation-level* model: [`sa1100::Sa1100Model`] converts the operation
//! counters emitted by the instrumented classifiers and tree builders
//! (`pclass-algos::counters`) into cycles and joules.  The absolute constants
//! are calibrated to the SA-1100's published characteristics, not to the
//! authors' exact Sim-Panalyzer setup, so EXPERIMENTS.md compares *shapes and
//! ratios* (who wins, by roughly what factor) rather than absolute joules.

//!
//! # Example
//!
//! Convert an operation count into SA-1100 joules and compare device
//! power at the paper's common 65 nm / 1 V normalisation point:
//!
//! ```
//! use pclass_algos::OpCounters;
//! use pclass_energy::device::DeviceModel;
//! use pclass_energy::sa1100::Sa1100Model;
//!
//! let sa1100 = Sa1100Model::new();
//! let ops = OpCounters { loads: 1_000, alu: 500, branches: 200, ..Default::default() };
//! assert!(sa1100.normalized_energy_j(&ops) > 0.0);
//!
//! // Normalisation (Eq. 8) makes the 65 nm ASIC directly comparable to
//! // the 180 nm StrongARM.
//! let asic = DeviceModel::asic_65nm();
//! let arm = DeviceModel::strongarm_sa1100();
//! assert!(asic.normalized_power_w() < arm.normalized_power_w());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod device;
pub mod sa1100;
pub mod tcam_datasheet;

pub use accelerator::AcceleratorEnergyModel;
pub use device::{normalize_power, DeviceModel, TechnologyNode};
pub use sa1100::{CycleCosts, Sa1100Model};
pub use tcam_datasheet::{SramPart, TcamPart};
