//! Operation-level energy model of the StrongARM SA-1100.
//!
//! The paper obtains its software energy figures by simulating the
//! algorithms on a StrongARM SA-1100 with Sim-Panalyzer (reference \[17\]
//! of the paper).  Reproducing a
//! micro-architectural power simulator is out of scope, so this module uses
//! an operation-level substitute: every instrumented classifier and builder
//! reports how many loads, stores, ALU operations, branches, multiplies and
//! divides it executed ([`pclass_algos::counters::OpCounters`]), and this
//! model converts those counts into SA-1100 cycles and joules.
//!
//! The per-operation cycle costs bundle the architectural realities that
//! dominate on this core: a packet-classification working set misses the
//! 8 KB data cache most of the time, so loads carry a large average memory
//! penalty; SWP-style multiplies take a few cycles; divisions are library
//! calls.  The absolute joule figures therefore differ from the authors'
//! exact setup, but both the original and the modified algorithms are
//! charged by the same tariff, so the ratios the paper reports (the ×11.84
//! build-energy saving in Table 3, the ×7,773 lookup-energy saving in §5.3)
//! are reproduced in shape.

use crate::device::DeviceModel;
use pclass_algos::counters::{BuildStats, LookupStats, OpCounters};

/// Cycle cost of each operation class on the SA-1100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleCosts {
    /// Average cycles per word load (includes the expected cache-miss
    /// penalty of a pointer-chasing workload).
    pub load: f64,
    /// Average cycles per word store.
    pub store: f64,
    /// Cycles per ALU operation.
    pub alu: f64,
    /// Average cycles per branch (includes misprediction refill).
    pub branch: f64,
    /// Cycles per multiply.
    pub mul: f64,
    /// Cycles per divide (software routine on ARMv4).
    pub div: f64,
}

impl Default for CycleCosts {
    fn default() -> Self {
        CycleCosts {
            load: 12.0,
            store: 6.0,
            alu: 1.0,
            branch: 2.5,
            mul: 3.0,
            div: 22.0,
        }
    }
}

/// The StrongARM SA-1100 energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct Sa1100Model {
    device: DeviceModel,
    costs: CycleCosts,
}

impl Default for Sa1100Model {
    fn default() -> Self {
        Sa1100Model::new()
    }
}

impl Sa1100Model {
    /// Model with the default cycle tariff and the Table 5 device figures.
    pub fn new() -> Sa1100Model {
        Sa1100Model {
            device: DeviceModel::strongarm_sa1100(),
            costs: CycleCosts::default(),
        }
    }

    /// Model with a custom cycle tariff (used by sensitivity tests).
    pub fn with_costs(costs: CycleCosts) -> Sa1100Model {
        Sa1100Model {
            device: DeviceModel::strongarm_sa1100(),
            costs,
        }
    }

    /// The underlying device description.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The cycle tariff in use.
    pub fn costs(&self) -> &CycleCosts {
        &self.costs
    }

    /// Estimated cycles for a set of operation counters.
    pub fn cycles(&self, ops: &OpCounters) -> f64 {
        ops.loads as f64 * self.costs.load
            + ops.stores as f64 * self.costs.store
            + ops.alu as f64 * self.costs.alu
            + ops.branches as f64 * self.costs.branch
            + ops.muls as f64 * self.costs.mul
            + ops.divs as f64 * self.costs.div
    }

    /// Wall-clock seconds for a set of operation counters at 200 MHz.
    pub fn seconds(&self, ops: &OpCounters) -> f64 {
        self.cycles(ops) / self.device.frequency_hz
    }

    /// Energy in joules using the *normalised* (65 nm / 1 V) power — the
    /// figure comparable with the accelerator columns of Tables 3 and 6.
    pub fn normalized_energy_j(&self, ops: &OpCounters) -> f64 {
        self.device.normalized_power_w() * self.seconds(ops)
    }

    /// Energy in joules using the raw device power.
    pub fn raw_energy_j(&self, ops: &OpCounters) -> f64 {
        self.device.power_w * self.seconds(ops)
    }

    /// Energy to execute one classification whose work is described by
    /// `stats` (normalised power).
    pub fn lookup_energy_j(&self, stats: &LookupStats) -> f64 {
        self.normalized_energy_j(&stats.ops)
    }

    /// Energy to build a search structure whose work is described by
    /// `stats` (normalised power) — the quantity of Table 3.
    pub fn build_energy_j(&self, stats: &BuildStats) -> f64 {
        self.normalized_energy_j(&stats.ops)
    }

    /// Packets per second the SA-1100 sustains when the average
    /// classification costs `avg_ops` operations.
    pub fn packets_per_second(&self, avg_ops: &OpCounters) -> f64 {
        let cycles = self.cycles(avg_ops);
        if cycles <= 0.0 {
            return 0.0;
        }
        self.device.frequency_hz / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(loads: u64, alu: u64) -> OpCounters {
        OpCounters {
            loads,
            stores: 0,
            alu,
            branches: loads / 2,
            muls: 0,
            divs: 0,
        }
    }

    #[test]
    fn cycles_are_weighted_sums() {
        let model = Sa1100Model::new();
        let o = OpCounters {
            loads: 10,
            stores: 2,
            alu: 100,
            branches: 20,
            muls: 4,
            divs: 1,
        };
        let expected = 10.0 * 12.0 + 2.0 * 6.0 + 100.0 + 20.0 * 2.5 + 4.0 * 3.0 + 22.0;
        assert!((model.cycles(&o) - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly_with_work() {
        let model = Sa1100Model::new();
        let one = model.normalized_energy_j(&ops(100, 200));
        let ten = model.normalized_energy_j(&ops(1000, 2000));
        assert!((ten / one - 10.0).abs() < 1e-9);
        assert!(
            model.raw_energy_j(&ops(100, 200)) > one,
            "raw power exceeds normalised power"
        );
    }

    #[test]
    fn software_lookup_energy_matches_table6_order_of_magnitude() {
        // Table 6 reports roughly 0.5–2 µJ per packet for the software
        // algorithms.  A typical tree lookup on a couple of thousand rules
        // performs a few hundred loads; check that such a lookup lands in
        // the same decade.
        let model = Sa1100Model::new();
        let lookup = ops(300, 900);
        let e = model.normalized_energy_j(&lookup);
        assert!(e > 5e-8 && e < 5e-6, "lookup energy {e}");
    }

    #[test]
    fn throughput_matches_table7_order_of_magnitude() {
        // Table 7: tens of thousands of packets per second in software.
        let model = Sa1100Model::new();
        let lookup = ops(300, 900);
        let pps = model.packets_per_second(&lookup);
        assert!(pps > 10_000.0 && pps < 300_000.0, "pps {pps}");
        assert_eq!(model.packets_per_second(&OpCounters::zero()), 0.0);
    }

    #[test]
    fn custom_costs_are_respected() {
        let costs = CycleCosts {
            load: 1.0,
            ..CycleCosts::default()
        };
        let cheap = Sa1100Model::with_costs(costs);
        let expensive = Sa1100Model::new();
        let o = ops(1000, 0);
        assert!(cheap.cycles(&o) < expensive.cycles(&o));
        assert_eq!(cheap.costs().load, 1.0);
        assert_eq!(cheap.device().name, "StrongARM SA-1100");
    }
}
