//! Seed styles and their structural parameters.

use serde::{Deserialize, Serialize};

/// The three ClassBench seed families used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeedStyle {
    /// Access-control-list style (`acl1`): specific prefixes, exact services.
    Acl,
    /// Firewall style (`fw1`): many wildcards, heavy rule replication.
    Fw,
    /// IP-chain style (`ipc1`): a mixture of the two.
    Ipc,
}

impl SeedStyle {
    /// All styles, in the order Table 4 lists them.
    pub const ALL: [SeedStyle; 3] = [SeedStyle::Acl, SeedStyle::Fw, SeedStyle::Ipc];

    /// Short name matching the paper's ruleset naming (`acl1`, `fw1`, `ipc1`).
    pub fn name(self) -> &'static str {
        match self {
            SeedStyle::Acl => "acl1",
            SeedStyle::Fw => "fw1",
            SeedStyle::Ipc => "ipc1",
        }
    }

    /// The structural parameters of this style.
    pub fn parameters(self) -> StyleParameters {
        match self {
            SeedStyle::Acl => StyleParameters {
                src_wildcard_prob: 0.06,
                dst_wildcard_prob: 0.01,
                src_prefix_len_range: (16, 32),
                dst_prefix_len_range: (24, 32),
                prefix_pool_fraction: 0.35,
                src_port_any_prob: 0.92,
                dst_port_exact_prob: 0.75,
                dst_port_any_prob: 0.10,
                proto_any_prob: 0.05,
                arbitrary_range_prob: 0.02,
            },
            SeedStyle::Fw => StyleParameters {
                src_wildcard_prob: 0.22,
                dst_wildcard_prob: 0.12,
                src_prefix_len_range: (8, 32),
                dst_prefix_len_range: (8, 32),
                prefix_pool_fraction: 0.25,
                src_port_any_prob: 0.45,
                dst_port_exact_prob: 0.45,
                dst_port_any_prob: 0.20,
                proto_any_prob: 0.12,
                arbitrary_range_prob: 0.10,
            },
            SeedStyle::Ipc => StyleParameters {
                src_wildcard_prob: 0.18,
                dst_wildcard_prob: 0.08,
                src_prefix_len_range: (8, 32),
                dst_prefix_len_range: (16, 32),
                prefix_pool_fraction: 0.30,
                src_port_any_prob: 0.80,
                dst_port_exact_prob: 0.60,
                dst_port_any_prob: 0.20,
                proto_any_prob: 0.10,
                arbitrary_range_prob: 0.05,
            },
        }
    }
}

impl std::fmt::Display for SeedStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable structural knobs of a synthetic seed style.
///
/// The values in [`SeedStyle::parameters`] were chosen so that the generated
/// sets show the qualitative behaviour the paper reports for the real
/// ClassBench sets: ACL sets stay compact and shallow, FW sets replicate
/// rules heavily (large memory, deeper trees), IPC sets sit in between.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StyleParameters {
    /// Probability that a rule's source address is a full wildcard.
    pub src_wildcard_prob: f64,
    /// Probability that a rule's destination address is a full wildcard.
    pub dst_wildcard_prob: f64,
    /// Inclusive range of source prefix lengths when not wildcarded.
    pub src_prefix_len_range: (u8, u8),
    /// Inclusive range of destination prefix lengths when not wildcarded.
    pub dst_prefix_len_range: (u8, u8),
    /// Fraction of the ruleset size used as the size of the shared prefix
    /// pool; smaller pools mean more prefix sharing between rules (more
    /// realistic distinct-range counts).
    pub prefix_pool_fraction: f64,
    /// Probability that the source port is a wildcard.
    pub src_port_any_prob: f64,
    /// Probability that the destination port is an exact well-known port.
    pub dst_port_exact_prob: f64,
    /// Probability that the destination port is a wildcard (the remainder is
    /// split between the ephemeral range 1024–65535 and arbitrary ranges).
    pub dst_port_any_prob: f64,
    /// Probability that the protocol is a wildcard.
    pub proto_any_prob: f64,
    /// Probability that an IP field uses a one-off prefix drawn outside the
    /// shared pool (an "odd" subnet that no other rule references).
    pub arbitrary_range_prob: f64,
}

impl StyleParameters {
    /// Sanity-checks that all probabilities are within [0, 1] and prefix
    /// length bounds are ordered.  Used by tests and by custom styles.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("src_wildcard_prob", self.src_wildcard_prob),
            ("dst_wildcard_prob", self.dst_wildcard_prob),
            ("prefix_pool_fraction", self.prefix_pool_fraction),
            ("src_port_any_prob", self.src_port_any_prob),
            ("dst_port_exact_prob", self.dst_port_exact_prob),
            ("dst_port_any_prob", self.dst_port_any_prob),
            ("proto_any_prob", self.proto_any_prob),
            ("arbitrary_range_prob", self.arbitrary_range_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        for (name, (lo, hi)) in [
            ("src_prefix_len_range", self.src_prefix_len_range),
            ("dst_prefix_len_range", self.dst_prefix_len_range),
        ] {
            if lo > hi || hi > 32 {
                return Err(format!("{name} = ({lo}, {hi}) is invalid"));
            }
        }
        if self.dst_port_exact_prob + self.dst_port_any_prob > 1.0 {
            return Err("dst port probabilities exceed 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_styles_are_valid() {
        for style in SeedStyle::ALL {
            style.parameters().validate().unwrap();
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SeedStyle::Acl.name(), "acl1");
        assert_eq!(SeedStyle::Fw.name(), "fw1");
        assert_eq!(SeedStyle::Ipc.name(), "ipc1");
        assert_eq!(SeedStyle::Ipc.to_string(), "ipc1");
    }

    #[test]
    fn fw_style_is_wilder_than_acl() {
        let acl = SeedStyle::Acl.parameters();
        let fw = SeedStyle::Fw.parameters();
        assert!(fw.dst_wildcard_prob > acl.dst_wildcard_prob);
        assert!(fw.proto_any_prob > acl.proto_any_prob);
    }

    #[test]
    fn validate_catches_bad_parameters() {
        let mut p = SeedStyle::Acl.parameters();
        p.src_wildcard_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = SeedStyle::Acl.parameters();
        p.src_prefix_len_range = (20, 10);
        assert!(p.validate().is_err());
        let mut p = SeedStyle::Acl.parameters();
        p.dst_port_exact_prob = 0.9;
        p.dst_port_any_prob = 0.3;
        assert!(p.validate().is_err());
    }
}
