//! The ruleset generator.

use crate::ports;
use crate::prefix_pool::PrefixPool;
use crate::style::{SeedStyle, StyleParameters};
use pclass_types::{Dimension, DimensionSpec, FieldRange, Rule, RuleSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic ClassBench-style ruleset generator.
///
/// ```
/// use pclass_classbench::{ClassBenchGenerator, SeedStyle};
///
/// let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(500);
/// assert_eq!(rs.len(), 500);
/// // Same seed, same ruleset.
/// let again = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(500);
/// assert_eq!(rs, again);
/// ```
#[derive(Debug, Clone)]
pub struct ClassBenchGenerator {
    style: SeedStyle,
    params: StyleParameters,
    seed: u64,
}

impl ClassBenchGenerator {
    /// Creates a generator for a built-in seed style.
    pub fn new(style: SeedStyle, seed: u64) -> ClassBenchGenerator {
        ClassBenchGenerator {
            style,
            params: style.parameters(),
            seed,
        }
    }

    /// Creates a generator with custom structural parameters (used by the
    /// ablation benches).
    ///
    /// # Panics
    /// Panics if the parameters fail [`StyleParameters::validate`].
    pub fn with_parameters(
        style: SeedStyle,
        params: StyleParameters,
        seed: u64,
    ) -> ClassBenchGenerator {
        params.validate().expect("invalid style parameters");
        ClassBenchGenerator {
            style,
            params,
            seed,
        }
    }

    /// The style this generator mimics.
    pub fn style(&self) -> SeedStyle {
        self.style
    }

    /// Generates a ruleset with exactly `count` rules, named
    /// `<style>_<count>` to match the paper's naming (`acl1_5000` etc.).
    pub fn generate(&self, count: usize) -> RuleSet {
        let name = format!("{}_{}", self.style.name(), count);
        self.generate_named(count, name)
    }

    /// Generates a ruleset with an explicit name.
    pub fn generate_named(&self, count: usize, name: impl Into<String>) -> RuleSet {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let p = &self.params;

        let pool_size = ((count as f64 * p.prefix_pool_fraction).ceil() as usize).max(4);
        let src_pool = PrefixPool::generate(&mut rng, pool_size, p.src_prefix_len_range);
        let dst_pool = PrefixPool::generate(&mut rng, pool_size, p.dst_prefix_len_range);

        let mut rules = Vec::with_capacity(count);
        let mut seen: HashSet<[FieldRange; 5]> = HashSet::with_capacity(count * 2);
        // Rejection loop: keep sampling until we have `count` distinct rules.
        // The bound prevents an infinite loop for tiny parameter corners.
        let mut attempts = 0usize;
        let max_attempts = count * 50 + 1_000;
        while rules.len() < count && attempts < max_attempts {
            attempts += 1;
            let ranges = self.sample_rule_ranges(&mut rng, &src_pool, &dst_pool);
            if seen.insert(ranges) {
                rules.push(Rule::new(rules.len() as u32, ranges));
            }
        }
        // If uniqueness ran out (extremely unlikely), pad with duplicates of
        // slightly perturbed rules so the requested size is always honoured.
        while rules.len() < count {
            let mut ranges = self.sample_rule_ranges(&mut rng, &src_pool, &dst_pool);
            let lo = rng.gen_range(0u32..60_000);
            ranges[Dimension::SrcPort.index()] = FieldRange::new(lo, lo);
            rules.push(Rule::new(rules.len() as u32, ranges));
        }

        RuleSet::new(name, DimensionSpec::FIVE_TUPLE, rules).expect("generated rules are valid")
    }

    /// Samples the five ranges of one rule.
    fn sample_rule_ranges(
        &self,
        rng: &mut StdRng,
        src_pool: &PrefixPool,
        dst_pool: &PrefixPool,
    ) -> [FieldRange; 5] {
        let p = &self.params;

        let src_ip = if rng.gen_bool(p.src_wildcard_prob) {
            FieldRange::full(32)
        } else if rng.gen_bool(p.arbitrary_range_prob) {
            one_off_prefix(rng).to_range()
        } else {
            src_pool.pick(rng).to_range()
        };

        let dst_ip = if rng.gen_bool(p.dst_wildcard_prob) {
            FieldRange::full(32)
        } else if rng.gen_bool(p.arbitrary_range_prob) {
            one_off_prefix(rng).to_range()
        } else {
            dst_pool.pick(rng).to_range()
        };

        let src_port = if rng.gen_bool(p.src_port_any_prob) {
            FieldRange::full(16)
        } else {
            // Split the remainder between the ephemeral range, exact
            // well-known ports and arbitrary ranges; the arbitrary ranges
            // keep rules distinct even when both addresses are wildcards
            // (common in FW-style sets).
            match rng.gen_range(0u8..10) {
                0..=3 => ports::EPHEMERAL,
                4..=6 => FieldRange::exact(u32::from(ports::sample_well_known_port(rng))),
                _ => ports::sample_arbitrary_port_range(rng),
            }
        };

        let dst_port = {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < p.dst_port_exact_prob {
                FieldRange::exact(u32::from(ports::sample_well_known_port(rng)))
            } else if roll < p.dst_port_exact_prob + p.dst_port_any_prob {
                FieldRange::full(16)
            } else if rng.gen_bool(0.6) {
                ports::EPHEMERAL
            } else {
                ports::sample_arbitrary_port_range(rng)
            }
        };

        let proto = if rng.gen_bool(p.proto_any_prob) {
            FieldRange::full(8)
        } else {
            FieldRange::exact(u32::from(ports::sample_protocol(rng)))
        };

        let mut ranges = [src_ip, dst_ip, src_port, dst_port, proto];
        // Real filter sets almost never contain rules that are wildcarded in
        // *both* addresses *and* the destination port: a firewall rule with
        // "any → any" addresses always names the service it permits or
        // blocks.  Enforcing that here keeps the synthetic sets inside the
        // structural envelope the decision-tree algorithms (and the paper's
        // fw1 results) assume — a handful of near-universal rules is fine,
        // thousands of them are not.
        let src_wild = ranges[0] == FieldRange::full(32);
        let dst_wild = ranges[1] == FieldRange::full(32);
        if src_wild && dst_wild && ranges[3] == FieldRange::full(16) {
            ranges[3] = FieldRange::exact(u32::from(ports::sample_well_known_port(rng)));
        }
        if src_wild && dst_wild && ranges[4] == FieldRange::full(8) {
            ranges[4] = FieldRange::exact(u32::from(ports::sample_protocol(rng)));
        }
        ranges
    }
}

/// A one-off prefix drawn outside the shared pools — the occasional "odd"
/// subnet real filter sets contain.  ClassBench seeds express every address
/// match as a prefix, so the generator does too; arbitrary (non-prefix)
/// ranges only appear in the port dimensions, which is also where the TCAM
/// range-expansion penalty comes from.
fn one_off_prefix<R: Rng + ?Sized>(rng: &mut R) -> pclass_types::Prefix {
    let len = rng.gen_range(12u8..=28);
    pclass_types::Prefix::ipv4(rng.gen(), len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::Dimension;

    #[test]
    fn generates_requested_count_and_is_deterministic() {
        for style in SeedStyle::ALL {
            let a = ClassBenchGenerator::new(style, 7).generate(300);
            let b = ClassBenchGenerator::new(style, 7).generate(300);
            assert_eq!(a.len(), 300);
            assert_eq!(a, b, "style {style} not deterministic");
            let c = ClassBenchGenerator::new(style, 8).generate(300);
            assert_ne!(a, c, "different seeds should differ");
        }
    }

    #[test]
    fn ruleset_names_follow_paper_convention() {
        let rs = ClassBenchGenerator::new(SeedStyle::Fw, 1).generate(1_200);
        assert_eq!(rs.name(), "fw1_1200");
    }

    #[test]
    fn rules_are_distinct() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 3).generate(1_000);
        let mut set = std::collections::HashSet::new();
        for r in rs.rules() {
            set.insert(r.ranges);
        }
        assert_eq!(set.len(), rs.len());
    }

    #[test]
    fn fw_style_has_more_double_wildcards_than_acl() {
        let acl = ClassBenchGenerator::new(SeedStyle::Acl, 5)
            .generate(2_000)
            .stats();
        let fw = ClassBenchGenerator::new(SeedStyle::Fw, 5)
            .generate(2_000)
            .stats();
        assert!(
            fw.double_wildcard_fraction > 3.0 * acl.double_wildcard_fraction
                && fw.double_wildcard_fraction > 0.01,
            "fw {} vs acl {}",
            fw.double_wildcard_fraction,
            acl.double_wildcard_fraction
        );
        // FW sets wildcard the destination address far more often than ACL
        // sets, which is what drives their larger decision trees.
        assert!(fw.wildcards[1] > 4 * acl.wildcards[1]);
    }

    #[test]
    fn acl_destinations_are_specific() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 5).generate(2_000);
        let stats = rs.stats();
        // Dst IP wildcards should be rare in ACL style (< 10 %).
        assert!(stats.wildcards[Dimension::DstIp.index()] < rs.len() / 10);
        // Destination ports mostly exact: mean relative width well under 0.5.
        assert!(stats.mean_relative_width[Dimension::DstPort.index()] < 0.5);
    }

    #[test]
    fn generated_rules_fit_the_five_tuple_geometry() {
        let rs = ClassBenchGenerator::new(SeedStyle::Ipc, 17).generate(500);
        let spec = *rs.spec();
        for r in rs.rules() {
            for d in Dimension::ALL {
                assert!(r.range(d).hi <= spec.max_value(d));
            }
        }
    }

    #[test]
    fn custom_parameters_are_respected() {
        let mut params = SeedStyle::Acl.parameters();
        params.proto_any_prob = 1.0;
        let gen = ClassBenchGenerator::with_parameters(SeedStyle::Acl, params, 1);
        let rs = gen.generate(100);
        let stats = rs.stats();
        assert_eq!(stats.wildcards[Dimension::Protocol.index()], 100);
    }

    #[test]
    #[should_panic]
    fn invalid_custom_parameters_panic() {
        let mut params = SeedStyle::Acl.parameters();
        params.proto_any_prob = 2.0;
        ClassBenchGenerator::with_parameters(SeedStyle::Acl, params, 1);
    }
}
