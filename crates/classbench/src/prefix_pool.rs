//! Shared prefix pools.
//!
//! Real filter sets re-use a limited number of address prefixes across many
//! rules (a handful of subnets appear in hundreds of ACL entries).  The
//! decision-tree algorithms are sensitive to exactly this property: the
//! number of *distinct* range specifications per dimension drives HyperCuts'
//! dimension selection and the amount of rule replication.  The generator
//! therefore draws addresses from a bounded pool instead of sampling fresh
//! random prefixes for every rule.

use pclass_types::Prefix;
use rand::Rng;

/// A bounded pool of IPv4 prefixes with a skewed re-use distribution.
#[derive(Debug, Clone)]
pub struct PrefixPool {
    prefixes: Vec<Prefix>,
}

impl PrefixPool {
    /// Generates a pool of `size` prefixes whose lengths are drawn uniformly
    /// from `len_range` and whose values cluster under a small number of
    /// /8 "provider" blocks, mimicking the address locality of real sets.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, size: usize, len_range: (u8, u8)) -> PrefixPool {
        assert!(size > 0, "prefix pool must not be empty");
        // Provider /8 blocks the pool clusters under.  Real filter sets are
        // clustered but spread over many networks, and the decision-tree
        // algorithms rely on that spread (it is what lets one 256-way cut of
        // the destination address thin a large ACL out to near-binth
        // children); scale the number of blocks with the pool size.
        let provider_count = (size / 3).clamp(16, 200);
        let providers: Vec<u32> = (0..provider_count)
            .map(|_| u32::from(rng.gen_range(1u8..224)) << 24)
            .collect();
        let mut prefixes = Vec::with_capacity(size);
        for _ in 0..size {
            let len = rng.gen_range(len_range.0..=len_range.1);
            let base = if rng.gen_bool(0.85) {
                providers[rng.gen_range(0..providers.len())]
            } else {
                u32::from(rng.gen_range(1u8..224)) << 24
            };
            let host_bits: u32 = rng.gen();
            let addr = base | (host_bits & 0x00FF_FFFF);
            prefixes.push(Prefix::ipv4(addr, len));
        }
        PrefixPool { prefixes }
    }

    /// Number of prefixes in the pool.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// `true` if the pool is empty (never the case for generated pools).
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Picks a prefix with a Zipf-like skew: low indices are much more
    /// popular than high indices, so a few prefixes dominate the ruleset the
    /// way a few subnets dominate real ACLs.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> Prefix {
        let n = self.prefixes.len();
        // Inverse-CDF sampling of an approximate Zipf(1.0) distribution via
        // the power-law transform u^k scaled to the pool size.
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = ((u.powf(2.0)) * n as f64) as usize;
        self.prefixes[idx.min(n - 1)]
    }

    /// All prefixes (used by tests and diagnostics).
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn pool_respects_length_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        let pool = PrefixPool::generate(&mut rng, 100, (16, 24));
        assert_eq!(pool.len(), 100);
        assert!(!pool.is_empty());
        for p in pool.prefixes() {
            assert!((16..=24).contains(&p.length));
        }
    }

    #[test]
    fn picks_are_skewed() {
        let mut rng = SmallRng::seed_from_u64(12);
        let pool = PrefixPool::generate(&mut rng, 50, (8, 32));
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..5_000 {
            let p = pool.pick(&mut rng);
            *counts
                .entry((u64::from(p.value) << 8) | u64::from(p.length))
                .or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min_nonzero = counts.values().copied().min().unwrap();
        // The most popular prefix should be picked far more often than the
        // least popular one that was picked at all.
        assert!(max > 4 * min_nonzero, "max={max} min={min_nonzero}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        let pa = PrefixPool::generate(&mut a, 20, (8, 32));
        let pb = PrefixPool::generate(&mut b, 20, (8, 32));
        assert_eq!(pa.prefixes(), pb.prefixes());
    }

    #[test]
    #[should_panic]
    fn empty_pool_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        PrefixPool::generate(&mut rng, 0, (8, 32));
    }
}
