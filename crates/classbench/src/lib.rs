//! ClassBench-style synthetic ruleset and packet-trace generation.
//!
//! The paper evaluates its hardware accelerator on rulesets produced by the
//! ClassBench tool from three seed filter sets — `acl1` (access control
//! list), `fw1` (firewall) and `ipc1` (IP chain) — at sizes from 60 up to
//! roughly 25,000 rules, plus the accompanying packet traces.  Those exact
//! seed files and traces are not redistributable, so this crate implements
//! deterministic generators that reproduce the *structural* properties the
//! evaluation depends on:
//!
//! * **ACL style** — mostly specific destination prefixes, exact destination
//!   ports for well-known services, exact protocols; few wildcards.  These
//!   sets produce shallow, well-balanced decision trees (Table 4: acl1 needs
//!   only 2–5 clock cycles even at 25 k rules).
//! * **FW style** — many address wildcards and port wildcards, which cause
//!   heavy rule replication in decision-tree algorithms.  These sets blow up
//!   memory first (Table 4: fw1 at 23 k rules needs 3.3–8.3 MB) and need the
//!   deepest trees.
//! * **IPC style** — a mixture of the two.
//!
//! The trace generator follows ClassBench's approach: headers are sampled
//! from the rules themselves (corner and interior points) with a skewed
//! (Pareto-like) rule-popularity distribution and short repeated bursts, so
//! traces exhibit the locality a real line card sees.
//!
//! Everything is seeded explicitly and fully deterministic, so every table in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit.

//!
//! # Example
//!
//! Generate an ACL-style ruleset and a matching trace; generation is
//! seeded, so the same calls always produce the same workload:
//!
//! ```
//! use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
//!
//! let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(100);
//! let trace = TraceGenerator::new(&rs, 7).generate(256);
//! assert_eq!((rs.len(), trace.len()), (100, 256));
//!
//! // Headers are sampled from the rules, so most packets hit.
//! assert!(trace.hit_rate(&rs) > 0.5);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod ports;
pub mod prefix_pool;
pub mod style;
pub mod trace_gen;

pub use generator::ClassBenchGenerator;
pub use style::{SeedStyle, StyleParameters};
pub use trace_gen::TraceGenerator;

/// The ruleset sizes used by Tables 2, 3, 6, 7 and 8 of the paper
/// (the acl1 subsets downloaded from the Washington University evaluation
/// page).
pub const PAPER_ACL_SIZES: [usize; 6] = [60, 150, 500, 1000, 1600, 2191];

/// The ruleset sizes used by Table 4 of the paper for each ClassBench seed
/// style (the largest size differs slightly per style; `table4_sizes` returns
/// the exact list).
pub const PAPER_TABLE4_BASE_SIZES: [usize; 7] = [300, 1_200, 2_500, 5_000, 10_000, 15_000, 20_000];

/// The exact ruleset-size column of Table 4 for a given seed style,
/// including the style-specific largest set (24,920 / 23,087 / 24,274).
pub fn table4_sizes(style: SeedStyle) -> Vec<usize> {
    let mut sizes: Vec<usize> = PAPER_TABLE4_BASE_SIZES.to_vec();
    sizes.push(match style {
        SeedStyle::Acl => 24_920,
        SeedStyle::Fw => 23_087,
        SeedStyle::Ipc => 24_274,
    });
    sizes
}

/// The serving-sweep ruleset-size ladder per seed style, used as the
/// ruleset axis of the `pclass-bench` scenario matrix: the acl1 ladder
/// climbs past the paper's largest set to 32 k and 64 k rules (ACL-style
/// sets keep their trees shallow, so generation and builds stay feasible),
/// while fw1/ipc1 stop at 10 k — their wildcard-heavy structure makes
/// decision trees balloon well before the acl ceiling.
pub fn sweep_sizes(style: SeedStyle) -> &'static [usize] {
    match style {
        SeedStyle::Acl => &[500, 2_000, 10_000, 32_000, 64_000],
        SeedStyle::Fw | SeedStyle::Ipc => &[2_000, 10_000],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_sizes_match_paper_columns() {
        assert_eq!(table4_sizes(SeedStyle::Acl).last(), Some(&24_920));
        assert_eq!(table4_sizes(SeedStyle::Fw).last(), Some(&23_087));
        assert_eq!(table4_sizes(SeedStyle::Ipc).last(), Some(&24_274));
        assert_eq!(table4_sizes(SeedStyle::Acl).len(), 8);
    }

    #[test]
    fn sweep_ladder_tops_generate_exact_distinct_counts() {
        assert_eq!(sweep_sizes(SeedStyle::Acl).last(), Some(&64_000));
        assert_eq!(sweep_sizes(SeedStyle::Fw).last(), Some(&10_000));
        assert_eq!(sweep_sizes(SeedStyle::Ipc).last(), Some(&10_000));
        // Generation must honour the extended ladder exactly: the top acl
        // size and the fw/ipc tops produce the requested number of distinct
        // rules (the generator's rejection loop must not run dry).
        let acl = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(64_000);
        assert_eq!(acl.len(), 64_000);
        let distinct: std::collections::HashSet<_> = acl.rules().iter().map(|r| r.ranges).collect();
        assert_eq!(distinct.len(), 64_000, "64k acl rules must be distinct");
        for style in [SeedStyle::Fw, SeedStyle::Ipc] {
            assert_eq!(
                ClassBenchGenerator::new(style, 42).generate(10_000).len(),
                10_000
            );
        }
    }
}
