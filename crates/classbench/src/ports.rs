//! Port-range and protocol sampling.

use pclass_types::FieldRange;
use rand::Rng;

/// Well-known destination ports weighted roughly by how often they appear in
/// published filter-set studies (HTTP/HTTPS/DNS dominate).
pub const WELL_KNOWN_PORTS: [(u16, u32); 12] = [
    (80, 30),  // http
    (443, 20), // https
    (53, 15),  // dns
    (25, 8),   // smtp
    (22, 6),   // ssh
    (21, 5),   // ftp
    (23, 4),   // telnet
    (110, 3),  // pop3
    (143, 3),  // imap
    (161, 2),  // snmp
    (123, 2),  // ntp
    (3306, 2), // mysql
];

/// Common transport protocols weighted by typical filter-set frequency.
pub const PROTOCOLS: [(u8, u32); 4] = [
    (6, 70),  // TCP
    (17, 25), // UDP
    (1, 4),   // ICMP
    (47, 1),  // GRE
];

/// The ephemeral port range used for "high ports" specifications.
pub const EPHEMERAL: FieldRange = FieldRange {
    lo: 1024,
    hi: 65_535,
};

/// Samples a value from a weighted table.
pub fn weighted_pick<T: Copy, R: Rng + ?Sized>(rng: &mut R, table: &[(T, u32)]) -> T {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut target = rng.gen_range(0..total);
    for &(value, weight) in table {
        if target < weight {
            return value;
        }
        target -= weight;
    }
    table[table.len() - 1].0
}

/// Samples a well-known destination port.
pub fn sample_well_known_port<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    weighted_pick(rng, &WELL_KNOWN_PORTS)
}

/// Samples a transport protocol number.
pub fn sample_protocol<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    weighted_pick(rng, &PROTOCOLS)
}

/// Samples an arbitrary (non-trivial, non-prefix-aligned) port range — the
/// kind that forces TCAM range expansion.
pub fn sample_arbitrary_port_range<R: Rng + ?Sized>(rng: &mut R) -> FieldRange {
    let lo = rng.gen_range(1u32..60_000);
    let width = rng.gen_range(2u32..5_000);
    FieldRange::new(lo, (lo + width).min(65_535))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_pick_respects_support() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = sample_well_known_port(&mut rng);
            assert!(WELL_KNOWN_PORTS.iter().any(|&(v, _)| v == p));
            let proto = sample_protocol(&mut rng);
            assert!(PROTOCOLS.iter().any(|&(v, _)| v == proto));
        }
    }

    #[test]
    fn weighted_pick_is_skewed_toward_heavy_entries() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut http = 0;
        let n = 2_000;
        for _ in 0..n {
            if sample_well_known_port(&mut rng) == 80 {
                http += 1;
            }
        }
        // 30/100 weight → expect roughly 30 %, allow a generous band.
        assert!(http > n / 5, "http sampled only {http} times out of {n}");
        assert!(http < n / 2);
    }

    #[test]
    fn arbitrary_ranges_stay_in_port_space() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let r = sample_arbitrary_port_range(&mut rng);
            assert!(r.hi <= 65_535);
            assert!(r.len() >= 2);
        }
    }
}
