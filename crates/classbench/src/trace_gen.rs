//! ClassBench-style packet trace generation.

use pclass_types::{Dimension, FieldRange, PacketHeader, Rule, RuleSet, Trace, TraceEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates packet traces aimed at a ruleset, the way the ClassBench
/// `trace_generator` does: each packet is sampled from inside some rule's
/// hyper-rectangle, rule popularity is heavily skewed, and packets arrive in
/// short bursts of identical headers (flow locality).
///
/// A configurable fraction of packets is sampled uniformly from the whole
/// header space instead, so traces also contain packets that match no rule
/// (or only the default rule), exercising the classifiers' miss path.
///
/// Two rule-popularity models are available: the default Pareto-style power
/// skew (mild, spread across the whole priority range) and — via
/// [`TraceGenerator::zipf`] — a true Zipf distribution over rule ranks, which
/// concentrates traffic on a small set of *hot* rules the way production
/// classifiers see it (a few services receive most of the flows).  Both are
/// driven by the explicit seed, so either profile is bit-for-bit
/// reproducible.
#[derive(Debug, Clone)]
pub struct TraceGenerator<'a> {
    ruleset: &'a RuleSet,
    seed: u64,
    /// Fraction of packets drawn uniformly from the whole header space.
    random_fraction: f64,
    /// Maximum burst length (identical consecutive headers).
    max_burst: usize,
    /// Pareto-style skew exponent for rule popularity (larger = more skewed).
    skew: f64,
    /// When set, rule popularity follows a Zipf law with this exponent
    /// (rank `k` drawn with probability proportional to `1 / k^exponent`)
    /// instead of the power skew.
    zipf_exponent: Option<f64>,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a trace generator with ClassBench-like defaults
    /// (10 % background traffic, bursts of up to 4 packets, strong skew).
    pub fn new(ruleset: &'a RuleSet, seed: u64) -> TraceGenerator<'a> {
        TraceGenerator {
            ruleset,
            seed,
            random_fraction: 0.10,
            max_burst: 4,
            skew: 1.5,
            zipf_exponent: None,
        }
    }

    /// Sets the fraction of uniformly random (background) packets.
    pub fn random_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.random_fraction = f;
        self
    }

    /// Sets the maximum burst length.
    pub fn max_burst(mut self, b: usize) -> Self {
        assert!(b >= 1, "burst length must be at least 1");
        self.max_burst = b;
        self
    }

    /// Sets the rule-popularity skew exponent.
    pub fn skew(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "skew must be non-negative");
        self.skew = s;
        self
    }

    /// Switches rule popularity to a Zipf law with the given exponent:
    /// rank `k` (1-based, in priority order — rule 0 is the hottest) is
    /// drawn with probability proportional to `1 / k^exponent`.  At
    /// exponent 1.0 on a 2 000-rule set, roughly 40 % of the directed
    /// packets repeatedly hit the hottest 1 % of the rules, modelling the
    /// few hot services a production classifier actually serves.
    pub fn zipf(mut self, exponent: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "Zipf exponent must be finite and positive"
        );
        self.zipf_exponent = Some(exponent);
        self
    }

    /// Generates a trace of exactly `count` packets named after the ruleset.
    pub fn generate(&self, count: usize) -> Trace {
        let name = format!("{}_trace", self.ruleset.name());
        self.generate_named(count, name)
    }

    /// Generates a trace of exactly `count` packets with an explicit name.
    pub fn generate_named(&self, count: usize, name: impl Into<String>) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let spec = *self.ruleset.spec();
        let n_rules = self.ruleset.len();
        // Cumulative Zipf weights over rule ranks, built once per trace
        // (O(n)); each directed packet then costs one binary search.
        let zipf_cdf: Option<Vec<f64>> = self.zipf_exponent.map(|alpha| {
            let mut acc = 0.0;
            (0..n_rules)
                .map(|rank| {
                    acc += 1.0 / ((rank + 1) as f64).powf(alpha);
                    acc
                })
                .collect()
        });
        let mut entries = Vec::with_capacity(count);

        while entries.len() < count {
            let burst = rng.gen_range(1..=self.max_burst).min(count - entries.len());
            let entry = if n_rules == 0 || rng.gen_bool(self.random_fraction) {
                // Background packet: uniform over the whole header space.
                let mut fields = [0u32; 5];
                for d in Dimension::ALL {
                    let max = spec.max_value(d);
                    fields[d.index()] = if max == u32::MAX {
                        rng.gen()
                    } else {
                        rng.gen_range(0..=max)
                    };
                }
                TraceEntry {
                    header: PacketHeader::from_fields(fields),
                    intended_rule: None,
                }
            } else {
                // Rule-directed packet: true Zipf over ranks when the
                // profile asks for it, the Pareto-like power skew otherwise.
                let idx = if let Some(cdf) = &zipf_cdf {
                    let total = *cdf.last().expect("non-empty ruleset");
                    let u: f64 = rng.gen_range(0.0..total);
                    cdf.partition_point(|&w| w <= u)
                } else {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    (u.powf(self.skew) * n_rules as f64) as usize
                };
                let rule = &self.ruleset.rules()[idx.min(n_rules - 1)];
                TraceEntry {
                    header: sample_point_in_rule(&mut rng, rule),
                    intended_rule: Some(rule.id),
                }
            };
            for _ in 0..burst {
                entries.push(entry);
            }
        }
        Trace::new(name, entries)
    }
}

/// Samples a header lying inside a rule's hyper-rectangle.  ClassBench
/// favours the corners of each range (they expose off-by-one bugs in
/// classifiers); interior points are also produced.
fn sample_point_in_rule<R: Rng + ?Sized>(rng: &mut R, rule: &Rule) -> PacketHeader {
    let mut fields = [0u32; 5];
    for d in Dimension::ALL {
        let r = rule.range(d);
        fields[d.index()] = sample_point_in_range(rng, r);
    }
    PacketHeader::from_fields(fields)
}

fn sample_point_in_range<R: Rng + ?Sized>(rng: &mut R, r: FieldRange) -> u32 {
    if r.is_exact() {
        return r.lo;
    }
    match rng.gen_range(0u8..4) {
        0 => r.lo,
        1 => r.hi,
        _ => {
            // Interior point, uniform.
            let span = r.len();
            let offset = rng.gen_range(0..span);
            (u64::from(r.lo) + offset) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ClassBenchGenerator;
    use crate::style::SeedStyle;
    use pclass_types::MatchResult;

    #[test]
    fn trace_is_deterministic_and_sized() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(200);
        let a = TraceGenerator::new(&rs, 9).generate(1_000);
        let b = TraceGenerator::new(&rs, 9).generate(1_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_000);
        assert_eq!(a.name(), "acl1_200_trace");
    }

    #[test]
    fn directed_packets_hit_their_rule_region() {
        let rs = ClassBenchGenerator::new(SeedStyle::Ipc, 2).generate(300);
        let trace = TraceGenerator::new(&rs, 3).generate(2_000);
        for entry in trace.entries() {
            if let Some(rid) = entry.intended_rule {
                let rule = rs.rule(rid).unwrap();
                assert!(
                    rule.matches(&entry.header),
                    "directed packet {} escaped rule {rid}",
                    entry.header
                );
            }
        }
    }

    #[test]
    fn hit_rate_is_high_for_directed_traces() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 4).generate(500);
        let trace = TraceGenerator::new(&rs, 5)
            .random_fraction(0.0)
            .generate(2_000);
        assert!((trace.hit_rate(&rs) - 1.0).abs() < 1e-9);
        // With pure background traffic the hit rate drops substantially.
        let bg = TraceGenerator::new(&rs, 5)
            .random_fraction(1.0)
            .generate(2_000);
        assert!(bg.hit_rate(&rs) < 0.9);
    }

    #[test]
    fn first_match_may_differ_from_intended_rule_due_to_shadowing() {
        // Not an assertion of inequality (it depends on overlap) but the
        // ground truth must never return NoMatch for a directed packet.
        let rs = ClassBenchGenerator::new(SeedStyle::Fw, 6).generate(400);
        let trace = TraceGenerator::new(&rs, 7)
            .random_fraction(0.0)
            .generate(1_000);
        for (entry, truth) in trace.entries().iter().zip(trace.ground_truth(&rs)) {
            if let Some(rid) = entry.intended_rule {
                match truth {
                    MatchResult::Matched(m) => {
                        assert!(m <= rid, "match {m} has lower priority than intended {rid}")
                    }
                    MatchResult::NoMatch => panic!("directed packet missed every rule"),
                }
            }
        }
    }

    #[test]
    fn bursts_do_not_overshoot_requested_count() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(50);
        for count in [1usize, 3, 7, 101] {
            let t = TraceGenerator::new(&rs, 2).max_burst(5).generate(count);
            assert_eq!(t.len(), count);
        }
    }

    #[test]
    fn empty_ruleset_yields_background_only_trace() {
        let rs =
            pclass_types::RuleSet::new("empty", pclass_types::DimensionSpec::FIVE_TUPLE, vec![])
                .unwrap();
        let t = TraceGenerator::new(&rs, 1).generate(100);
        assert_eq!(t.len(), 100);
        assert!(t.entries().iter().all(|e| e.intended_rule.is_none()));
    }

    #[test]
    #[should_panic]
    fn invalid_random_fraction_panics() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(10);
        let _ = TraceGenerator::new(&rs, 1).random_fraction(1.5);
    }

    #[test]
    fn zipf_trace_is_deterministic_and_header_valid() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 11).generate(400);
        let a = TraceGenerator::new(&rs, 12).zipf(1.0).generate(1_500);
        let b = TraceGenerator::new(&rs, 12).zipf(1.0).generate(1_500);
        assert_eq!(a, b, "same seed must reproduce the Zipf trace");
        let c = TraceGenerator::new(&rs, 13).zipf(1.0).generate(1_500);
        assert_ne!(a, c, "different seeds must differ");
        for entry in a.entries() {
            if let Some(rid) = entry.intended_rule {
                assert!(
                    rs.rule(rid).unwrap().matches(&entry.header),
                    "Zipf-directed packet escaped rule {rid}"
                );
            }
        }
    }

    #[test]
    fn zipf_concentrates_traffic_on_hot_rules() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 21).generate(1_000);
        let count_hot = |trace: &pclass_types::Trace| {
            trace
                .entries()
                .iter()
                .filter(|e| matches!(e.intended_rule, Some(rid) if rid < 10))
                .count()
        };
        let zipf = TraceGenerator::new(&rs, 22)
            .random_fraction(0.0)
            .zipf(1.0)
            .generate(4_000);
        let default = TraceGenerator::new(&rs, 22)
            .random_fraction(0.0)
            .generate(4_000);
        let (hot_zipf, hot_default) = (count_hot(&zipf), count_hot(&default));
        // At exponent 1.0 the hottest 1% of a 1 000-rule set draws about a
        // third of the directed packets — far beyond the power-skew default.
        assert!(
            hot_zipf > 4_000 / 5,
            "top-1% rules drew only {hot_zipf}/4000 Zipf packets"
        );
        assert!(
            hot_zipf > 3 * hot_default.max(1),
            "Zipf ({hot_zipf}) not hotter than the default skew ({hot_default})"
        );
    }

    #[test]
    #[should_panic]
    fn non_positive_zipf_exponent_panics() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 1).generate(10);
        let _ = TraceGenerator::new(&rs, 1).zipf(0.0);
    }
}
