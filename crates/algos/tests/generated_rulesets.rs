//! Cross-validation of every software classifier against linear search on
//! generated ClassBench-style rulesets and traces.

use pclass_algos::{
    Classifier, HiCutsClassifier, HiCutsConfig, HyperCutsClassifier, HyperCutsConfig,
    LinearClassifier, RfcClassifier,
};
use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
use pclass_types::{MatchResult, RuleSet, Trace};

fn check_against_linear(name: &str, classifier: &dyn Classifier, rs: &RuleSet, trace: &Trace) {
    for entry in trace.entries() {
        let expected = rs.classify_linear(&entry.header);
        let got = classifier.classify(&entry.header);
        assert_eq!(
            got, expected,
            "{name} disagreed with linear search on {}",
            entry.header
        );
    }
}

fn ruleset_and_trace(style: SeedStyle, rules: usize, packets: usize) -> (RuleSet, Trace) {
    let rs = ClassBenchGenerator::new(style, 1234).generate(rules);
    let trace = TraceGenerator::new(&rs, 99).generate(packets);
    (rs, trace)
}

#[test]
fn hicuts_matches_linear_on_all_styles() {
    for style in SeedStyle::ALL {
        let (rs, trace) = ruleset_and_trace(style, 300, 800);
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
        check_against_linear("hicuts", &hc, &rs, &trace);
    }
}

#[test]
fn hypercuts_matches_linear_on_all_styles() {
    for style in SeedStyle::ALL {
        let (rs, trace) = ruleset_and_trace(style, 300, 800);
        let hc = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
        check_against_linear("hypercuts", &hc, &rs, &trace);
    }
}

#[test]
fn hypercuts_without_heuristics_matches_linear() {
    let (rs, trace) = ruleset_and_trace(SeedStyle::Ipc, 250, 600);
    let config = HyperCutsConfig {
        binth: 8,
        spfac: 4.0,
        region_compaction: false,
        push_common_rules: false,
    };
    let hc = HyperCutsClassifier::build(&rs, &config);
    check_against_linear("hypercuts-noheur", &hc, &rs, &trace);
}

#[test]
fn rfc_matches_linear_on_all_styles() {
    for style in SeedStyle::ALL {
        let (rs, trace) = ruleset_and_trace(style, 200, 600);
        let rfc = RfcClassifier::build(&rs).expect("RFC build within memory limit");
        check_against_linear("rfc", &rfc, &rs, &trace);
    }
}

#[test]
fn all_classifiers_agree_with_each_other() {
    let (rs, trace) = ruleset_and_trace(SeedStyle::Acl, 400, 1000);
    let lin = LinearClassifier::new(rs.clone());
    let hi = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
    let hyper = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
    let rfc = RfcClassifier::build(&rs).unwrap();
    for entry in trace.entries() {
        let expected = lin.classify(&entry.header);
        assert_eq!(hi.classify(&entry.header), expected);
        assert_eq!(hyper.classify(&entry.header), expected);
        assert_eq!(rfc.classify(&entry.header), expected);
    }
}

#[test]
fn decision_trees_respect_memory_and_depth_trends() {
    // FW-style sets replicate rules more than ACL-style sets of the same
    // size — the structural fact behind Table 4's fw1 rows.
    let acl = ClassBenchGenerator::new(SeedStyle::Acl, 7).generate(500);
    let fw = ClassBenchGenerator::new(SeedStyle::Fw, 7).generate(500);
    let acl_tree = HiCutsClassifier::build(&acl, &HiCutsConfig::paper_defaults());
    let fw_tree = HiCutsClassifier::build(&fw, &HiCutsConfig::paper_defaults());
    let acl_refs = acl_tree.tree().stats().stored_rule_refs;
    let fw_refs = fw_tree.tree().stats().stored_rule_refs;
    assert!(
        fw_refs > acl_refs,
        "expected fw replication ({fw_refs}) to exceed acl ({acl_refs})"
    );
}

#[test]
fn worst_case_accesses_nonzero_and_bounded_by_ruleset() {
    let (rs, _) = ruleset_and_trace(SeedStyle::Acl, 300, 1);
    let hi = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
    let wc = hi.worst_case_memory_accesses().unwrap();
    assert!(wc >= 2);
    assert!(wc < 10_000);
}

#[test]
fn classify_with_stats_returns_same_results() {
    let (rs, trace) = ruleset_and_trace(SeedStyle::Ipc, 200, 300);
    let hyper = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
    for entry in trace.entries() {
        let mut stats = pclass_algos::LookupStats::new();
        let a = hyper.classify(&entry.header);
        let b = hyper.classify_with_stats(&entry.header, &mut stats);
        assert_eq!(a, b);
        if a != MatchResult::NoMatch {
            assert!(stats.rules_compared >= 1);
        }
    }
}
