//! Operation counters shared by all classifiers and tree builders.
//!
//! The paper derives its software energy figures by running the algorithms
//! through Sim-Panalyzer on a StrongARM SA-1100.  We replace the
//! micro-architectural simulator with an *operation-level* model: every
//! classifier and builder in the workspace counts the loads, stores, ALU
//! operations, branches and (for build) divisions it performs, and
//! `pclass-energy::sa1100` converts those counts into cycles and joules.
//! Because the original and the modified algorithms are instrumented with the
//! same counters, the relative build-energy and lookup-energy comparisons of
//! Tables 3, 6 and 7 are preserved even though the absolute constants differ
//! from the authors' testbed.

use std::ops::{Add, AddAssign};

/// Raw operation counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Word-sized memory reads (dominant cost on the SA-1100: most of the
    /// classification working set misses the tiny data cache).
    pub loads: u64,
    /// Word-sized memory writes.
    pub stores: u64,
    /// Arithmetic / logic operations (add, sub, and, or, shift, compare).
    pub alu: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Integer multiplications.
    pub muls: u64,
    /// Integer or floating-point divisions (the expensive operation the
    /// paper's modifications remove from the lookup path).
    pub divs: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub const fn zero() -> OpCounters {
        OpCounters {
            loads: 0,
            stores: 0,
            alu: 0,
            branches: 0,
            muls: 0,
            divs: 0,
        }
    }

    /// Total number of counted operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.loads + self.stores + self.alu + self.branches + self.muls + self.divs
    }

    /// Total number of memory accesses (loads + stores).
    pub fn memory_accesses(&self) -> u64 {
        self.loads + self.stores
    }
}

impl Add for OpCounters {
    type Output = OpCounters;
    fn add(self, rhs: OpCounters) -> OpCounters {
        OpCounters {
            loads: self.loads + rhs.loads,
            stores: self.stores + rhs.stores,
            alu: self.alu + rhs.alu,
            branches: self.branches + rhs.branches,
            muls: self.muls + rhs.muls,
            divs: self.divs + rhs.divs,
        }
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: OpCounters) {
        *self = *self + rhs;
    }
}

/// Work performed by a single packet classification.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LookupStats {
    /// Operation counts of the lookup.
    pub ops: OpCounters,
    /// Decision-tree nodes visited (internal nodes; 0 for non-tree
    /// classifiers).
    pub nodes_visited: u64,
    /// Rules compared one-by-one in leaf linear searches (or the full scan
    /// for the linear classifier).
    pub rules_compared: u64,
    /// Structure memory words/entries read — the "memory accesses" of
    /// Tables 4 and 8.
    pub memory_accesses: u64,
    /// Lookups answered by a hot-flow cache in front of the classifier
    /// (always 0 for uncached classifiers).
    pub cache_hits: u64,
    /// Lookups that probed a hot-flow cache and fell through to the backing
    /// classifier (always 0 for uncached classifiers).
    pub cache_misses: u64,
    /// Cache fills that displaced a live entry (always 0 for uncached
    /// classifiers).
    pub cache_evictions: u64,
}

impl LookupStats {
    /// A zeroed stats record.
    pub fn new() -> LookupStats {
        LookupStats::default()
    }

    /// Merges another lookup's work into this one (used to accumulate a
    /// whole trace).
    pub fn merge(&mut self, other: &LookupStats) {
        self.ops += other.ops;
        self.nodes_visited += other.nodes_visited;
        self.rules_compared += other.rules_compared;
        self.memory_accesses += other.memory_accesses;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }
}

/// Work performed while building a search structure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// Operation counts of the build.
    pub ops: OpCounters,
    /// Internal nodes created.
    pub internal_nodes: u64,
    /// Leaf nodes created.
    pub leaf_nodes: u64,
    /// Total rule references stored in leaves (measures rule replication).
    pub stored_rule_refs: u64,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: u32,
    /// Number of candidate cut evaluations performed (the dominant cost of
    /// HiCuts/HyperCuts preprocessing; the paper's modifications reduce it by
    /// starting at 32 cuts instead of 2 and capping at 256).
    pub cut_evaluations: u64,
}

impl BuildStats {
    /// A zeroed stats record.
    pub fn new() -> BuildStats {
        BuildStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_fieldwise() {
        let a = OpCounters {
            loads: 1,
            stores: 2,
            alu: 3,
            branches: 4,
            muls: 5,
            divs: 6,
        };
        let b = OpCounters {
            loads: 10,
            stores: 20,
            alu: 30,
            branches: 40,
            muls: 50,
            divs: 60,
        };
        let c = a + b;
        assert_eq!(c.loads, 11);
        assert_eq!(c.divs, 66);
        assert_eq!(c.total_ops(), 11 + 22 + 33 + 44 + 55 + 66);
        assert_eq!(c.memory_accesses(), 11 + 22);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn lookup_stats_merge() {
        let mut a = LookupStats::new();
        a.nodes_visited = 3;
        a.memory_accesses = 4;
        let mut b = LookupStats::new();
        b.nodes_visited = 2;
        b.rules_compared = 7;
        a.merge(&b);
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.rules_compared, 7);
        assert_eq!(a.memory_accesses, 4);
    }

    #[test]
    fn lookup_stats_merge_cache_counters() {
        let mut a = LookupStats::new();
        a.cache_hits = 5;
        a.cache_misses = 2;
        let mut b = LookupStats::new();
        b.cache_hits = 1;
        b.cache_evictions = 3;
        a.merge(&b);
        assert_eq!((a.cache_hits, a.cache_misses, a.cache_evictions), (6, 2, 3));
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(OpCounters::zero(), OpCounters::default());
        assert_eq!(OpCounters::zero().total_ops(), 0);
        assert_eq!(BuildStats::new(), BuildStats::default());
    }
}
