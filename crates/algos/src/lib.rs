//! Software packet-classification baselines.
//!
//! The paper compares its hardware accelerator against software algorithms
//! running on the processing engine of a programmable network processor
//! (a StrongARM SA-1100 in the companion study, reference \[12\] of the
//! paper).  This crate implements
//! those baselines, fully instrumented so that the energy models in
//! `pclass-energy` can translate their work into joules:
//!
//! * [`linear::LinearClassifier`] — priority-ordered linear search, the
//!   correctness reference.
//! * [`hicuts::HiCutsClassifier`] — the *original* HiCuts algorithm
//!   (Gupta & McKeown), cuts starting at 2 and doubling under the spfac
//!   space constraint (Eq. 1 of the paper).
//! * [`hypercuts::HyperCutsClassifier`] — the *original* HyperCuts algorithm
//!   (Singh et al.), multi-dimensional cuts with the region-compaction and
//!   push-common-rule-subsets-upwards heuristics the paper later removes.
//! * [`rfc::RfcClassifier`] — Recursive Flow Classification, the fastest
//!   software algorithm in the paper's comparison (§5.2 quotes a ×546
//!   speed-up of the ASIC over RFC).
//! * [`flat::FlatTreeClassifier`] — the HiCuts/HyperCuts trees re-packed
//!   into a cache-compact flat arena ([`flat::FlatTree`]) with a batched
//!   level-synchronous traversal; built from the pointer trees via
//!   `flatten()` and served as `hicuts-flat` / `hypercuts-flat`.
//!
//! The *modified*, hardware-oriented HiCuts/HyperCuts variants live in
//! `pclass-core`; they share the [`counters`] instrumentation defined here so
//! that build-energy comparisons (Table 3) use identical accounting.

//!
//! # Example
//!
//! Build a HiCuts tree, flatten it into the arena, and check both
//! (including the vectorised lane walk) against linear search:
//!
//! ```
//! use pclass_algos::flat::FlatSettings;
//! use pclass_algos::{Classifier, LaneWidth};
//! use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
//! use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
//!
//! let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(120);
//! let trace = TraceGenerator::new(&rs, 7).generate(256);
//!
//! let tree = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
//! let flat = tree.flatten().with_settings(FlatSettings {
//!     lanes: LaneWidth::X8,
//!     ..FlatSettings::default()
//! });
//!
//! let headers: Vec<_> = trace.headers().copied().collect();
//! let mut out = Vec::new();
//! flat.classify_batch(&headers, &mut out);
//! for (header, got) in headers.iter().zip(&out) {
//!     assert_eq!(*got, rs.classify_linear(header));
//! }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod dtree;
pub mod flat;
pub mod hicuts;
pub mod hotcache;
pub mod hypercuts;
pub mod linear;
pub mod rfc;
pub mod update;

pub use counters::{BuildStats, LookupStats, OpCounters};
pub use flat::{FlatSettings, FlatTree, FlatTreeClassifier, LaneWidth};
pub use hicuts::{HiCutsClassifier, HiCutsConfig};
pub use hotcache::{CachedClassifier, HotCache, HotCacheConfig};
pub use hypercuts::{HyperCutsClassifier, HyperCutsConfig};
pub use linear::LinearClassifier;
pub use rfc::{RfcClassifier, RfcConfig, RfcError};
pub use update::{RuleUpdate, UpdatableClassifier, UpdateError};

use pclass_types::{MatchResult, PacketHeader};

/// Common interface of every software classifier in the workspace.
///
/// All implementations return exactly the same decision as
/// [`pclass_types::RuleSet::classify_linear`]; the integration tests enforce
/// this equivalence on generated rulesets and traces.
pub trait Classifier {
    /// Short algorithm name used in reports (e.g. `"hicuts"`).
    fn name(&self) -> &'static str;

    /// Classifies one packet.
    fn classify(&self, pkt: &PacketHeader) -> MatchResult;

    /// Classifies a batch of packets, appending one result per packet to
    /// `out` in input order.
    ///
    /// The default implementation is a per-packet loop; implementations with
    /// exploitable data locality should override it with a cache-friendly
    /// batched loop (RFC runs each phase table over the whole batch so the
    /// table stays hot — see `rfc`; the flat decision-tree arenas advance
    /// the whole batch through the tree level by level — see `flat`).  The
    /// serving layer in `pclass-engine`
    /// feeds every classifier through this method, so an override speeds up
    /// batched serving without touching any call site.
    ///
    /// Implementations must be pure batching: the results must be exactly
    /// what per-packet [`Classifier::classify`] calls would produce.
    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        out.reserve(pkts.len());
        for pkt in pkts {
            out.push(self.classify(pkt));
        }
    }

    /// Classifies one packet and records the work performed (memory accesses,
    /// comparisons, ALU operations) into `stats`.
    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult;

    /// Bytes of memory occupied by the search structure *and* the stored
    /// ruleset, using the software memory model documented in
    /// [`dtree::MemoryModel`].
    fn memory_bytes(&self) -> usize;

    /// Worst-case number of memory accesses a single classification can
    /// perform (the software column of Table 8), when the structure makes a
    /// static bound available.
    fn worst_case_memory_accesses(&self) -> Option<u64> {
        None
    }

    /// Arena layout statistics when the structure is a flattened arena
    /// (`flat::FlatTreeClassifier` overrides this); `None` for pointer
    /// trees and the other structures.  The multi-tenant serving layer
    /// folds this into its per-tenant memory reports.
    fn arena_stats(&self) -> Option<pclass_types::ArenaStats> {
        None
    }
}

/// Shared handles classify like what they point at — including unsized
/// targets, so an `Arc<dyn Classifier + Send + Sync>` is itself a
/// [`Classifier`] and composes with wrappers such as
/// [`hotcache::CachedClassifier`].  Every method delegates, so a batched
/// override behind the handle keeps its locality win.
impl<T: Classifier + ?Sized> Classifier for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        (**self).classify(pkt)
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        (**self).classify_batch(pkts, out)
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        (**self).classify_with_stats(pkt, stats)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        (**self).worst_case_memory_accesses()
    }

    fn arena_stats(&self) -> Option<pclass_types::ArenaStats> {
        (**self).arena_stats()
    }
}
