//! Rebuild-free incremental rule updates.
//!
//! The paper's classifiers are built once and served forever, but real
//! rulesets churn — firewall pushes, ACL edits — while traffic keeps
//! flowing.  This module defines the update interface shared by the
//! structures that support patching a built search structure in place:
//!
//! * [`crate::dtree::DecisionTree`] (and through it the HiCuts and
//!   HyperCuts classifiers) inserts and deletes rules by descending only
//!   the subtrees the rule's ranges intersect, un-sharing merged leaves on
//!   the way down;
//! * [`crate::flat::FlatTree`] patches its leaf rule spans in place via
//!   per-node free-slot slack, spilling to an overflow side-table when a
//!   span is full and re-flattening (amortized) once the tracked dirty
//!   ratio crosses a threshold.
//!
//! Rule identity and priority stay fused (lower id wins), so an update
//! stream works over a *sparse* id space: deleting rule 57 frees the id,
//! inserting a different rule as 57 is a "replace", inserting beyond the
//! current maximum id is an "append at lowest priority".  A from-scratch
//! rebuild of the surviving rules — the reference the property tests
//! compare against — renumbers them via [`renumbered_ruleset`] and maps
//! decisions back through the returned id map.

use crate::Classifier;
use pclass_types::{Dimension, DimensionSpec, MatchResult, Rule, RuleId, RuleSet, UpdateStats};

/// One element of an update stream applied to an [`UpdatableClassifier`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleUpdate {
    /// Insert a rule whose id (= priority slot) is currently unused.
    Insert(Rule),
    /// Delete the live rule with this id.
    Delete(RuleId),
}

/// Why an incremental update was rejected.  The structure is unchanged
/// after an error — updates are atomic per rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// `insert` was given an id that is currently live.
    DuplicateRuleId(RuleId),
    /// `delete` was given an id that is not currently live.
    UnknownRuleId(RuleId),
    /// `insert` was given a rule with a range wider than the structure's
    /// dimension geometry.
    RangeExceedsWidth {
        /// Offending rule id.
        rule: RuleId,
        /// Offending dimension.
        dimension: Dimension,
    },
    /// `insert` was given an id too far beyond the structure's current id
    /// range.  The sparse-id model allows gaps, but a bounded one
    /// ([`MAX_ID_GAP`] past the occupied range): the pointer tree holds
    /// one slot per id up to the maximum, so an unbounded id would
    /// allocate unboundedly, and `u32::MAX` is reserved as the lookup
    /// no-match sentinel.
    RuleIdTooSparse {
        /// Offending rule id.
        rule: RuleId,
        /// First id the structure would have rejected (ids below it are
        /// insertable).
        limit: RuleId,
    },
}

/// How far past the currently occupied id range an `insert` may reach
/// (see [`UpdateError::RuleIdTooSparse`]).
pub const MAX_ID_GAP: u32 = 65_536;

/// The first uninsertable id given the end of the occupied id range
/// (`occupied_end` = highest occupied slot + 1): ids must stay within
/// [`MAX_ID_GAP`] of the range and strictly below the `u32::MAX` lookup
/// sentinel.
pub fn id_limit(occupied_end: usize) -> RuleId {
    (occupied_end as u64 + u64::from(MAX_ID_GAP)).min(u64::from(u32::MAX) - 1) as RuleId
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DuplicateRuleId(id) => {
                write!(f, "rule id {id} is already live")
            }
            UpdateError::UnknownRuleId(id) => {
                write!(f, "rule id {id} is not live")
            }
            UpdateError::RangeExceedsWidth { rule, dimension } => {
                write!(
                    f,
                    "rule {rule} has a range wider than dimension {dimension}"
                )
            }
            UpdateError::RuleIdTooSparse { rule, limit } => {
                write!(
                    f,
                    "rule id {rule} is too far beyond the occupied id range (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A [`Classifier`] whose rule set can be patched in place, without a full
/// rebuild, while keeping decisions exactly first-match-by-id.
///
/// Implemented by the HiCuts/HyperCuts pointer-tree classifiers and the
/// flat-arena [`crate::flat::FlatTreeClassifier`]; the epoch-swap serving
/// cell in `pclass-engine` drives this trait from a writer copy while
/// readers keep serving the previous snapshot.
pub trait UpdatableClassifier: Classifier {
    /// Inserts a rule at the priority slot given by `rule.id`, which must
    /// not be live.
    fn insert(&mut self, rule: Rule) -> Result<(), UpdateError>;

    /// Deletes the live rule with this id.
    fn delete(&mut self, rule_id: RuleId) -> Result<(), UpdateError>;

    /// The live rules, in ascending id (= priority) order.
    fn live_rules(&self) -> Vec<Rule>;

    /// The dimension geometry the structure classifies over.
    fn spec(&self) -> DimensionSpec;

    /// Counters of the update activity since the structure was built.
    fn update_stats(&self) -> UpdateStats;

    /// Applies one update-stream element.
    fn apply(&mut self, update: &RuleUpdate) -> Result<(), UpdateError> {
        match update {
            RuleUpdate::Insert(rule) => self.insert(*rule),
            RuleUpdate::Delete(id) => self.delete(*id),
        }
    }
}

/// Renumbers a live-rule list (ascending sparse ids) into a dense
/// [`RuleSet`] a fresh builder can consume, plus the map from the new
/// (dense) ids back to the original ids.
///
/// Renumbering preserves relative order, so a from-scratch rebuild over
/// the returned set makes exactly the decisions of the updated structure
/// once its [`MatchResult`]s are mapped through [`map_result`].
pub fn renumbered_ruleset(
    name: impl Into<String>,
    spec: DimensionSpec,
    live: &[Rule],
) -> (RuleSet, Vec<RuleId>) {
    let id_map: Vec<RuleId> = live.iter().map(|r| r.id).collect();
    debug_assert!(id_map.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
    let rules: Vec<Rule> = live
        .iter()
        .enumerate()
        .map(|(i, r)| Rule::new(i as RuleId, r.ranges))
        .collect();
    let ruleset = RuleSet::new(name, spec, rules).expect("renumbered rules are dense and valid");
    (ruleset, id_map)
}

/// Maps a decision made over a [`renumbered_ruleset`] back into the
/// original sparse id space.
pub fn map_result(result: MatchResult, id_map: &[RuleId]) -> MatchResult {
    match result {
        MatchResult::Matched(dense) => MatchResult::Matched(id_map[dense as usize]),
        MatchResult::NoMatch => MatchResult::NoMatch,
    }
}

/// Reference first-match decision over a live-rule list (ascending id
/// order) — the linear-search ground truth for updated structures.
pub fn classify_live_linear(live: &[Rule], pkt: &pclass_types::PacketHeader) -> MatchResult {
    for rule in live {
        if rule.matches(pkt) {
            return MatchResult::Matched(rule.id);
        }
    }
    MatchResult::NoMatch
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::{PacketHeader, RuleBuilder};

    fn rule(id: RuleId, port: u16) -> Rule {
        RuleBuilder::new(id).dst_port(port).build()
    }

    #[test]
    fn renumbering_maps_sparse_ids_back() {
        let live = vec![rule(2, 80), rule(5, 443), rule(9, 22)];
        let (rs, map) = renumbered_ruleset("x", DimensionSpec::FIVE_TUPLE, &live);
        assert_eq!(rs.len(), 3);
        assert_eq!(map, vec![2, 5, 9]);
        let pkt = PacketHeader::five_tuple(1, 2, 3, 443, 6);
        let dense = rs.classify_linear(&pkt);
        assert_eq!(dense, MatchResult::Matched(1));
        assert_eq!(map_result(dense, &map), MatchResult::Matched(5));
        assert_eq!(map_result(MatchResult::NoMatch, &map), MatchResult::NoMatch);
        assert_eq!(classify_live_linear(&live, &pkt), MatchResult::Matched(5));
    }

    #[test]
    fn update_error_messages_name_the_id() {
        assert!(UpdateError::DuplicateRuleId(7).to_string().contains('7'));
        assert!(UpdateError::UnknownRuleId(9).to_string().contains('9'));
        let e = UpdateError::RangeExceedsWidth {
            rule: 3,
            dimension: Dimension::SrcPort,
        };
        assert!(e.to_string().contains("wider"));
    }
}
