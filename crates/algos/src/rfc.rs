//! Recursive Flow Classification (Gupta & McKeown, SIGCOMM 1999).
//!
//! RFC is the fastest pure-software algorithm in the paper's comparison
//! (§5.2 quotes the ASIC accelerator as "up to 546 times" faster than RFC on
//! the SA-1100, versus 4,269 times faster than HiCuts).  It trades memory for
//! a fixed, small number of table lookups per packet:
//!
//! 1. **Phase 0** splits the 104-bit header into seven chunks (two 16-bit
//!    halves of each address, the two ports and the protocol) and maps each
//!    chunk value to an *equivalence-class id* through a direct-indexed
//!    table.
//! 2. **Later phases** combine pairs of class ids through cross-product
//!    tables until a single id remains; that id directly yields the
//!    highest-priority matching rule.
//!
//! Splitting a 32-bit address into two independent 16-bit chunks is only
//! exact when the high and low halves constrain a rule independently.  That
//! is true for prefixes but not for arbitrary address ranges that span
//! several high-half values, so this implementation tracks a small per-rule
//! *state* (outside / interior / low-edge / high-edge / single-column) for
//! the high chunk and resolves it exactly when the two halves are combined in
//! phase 1 (the private `HiState` machinery).  The result is an exact
//! classifier for every
//! ruleset the workspace generators produce, verified against linear search
//! by the integration tests.

use crate::counters::LookupStats;
use crate::Classifier;
use pclass_types::{Dimension, MatchResult, PacketHeader, RuleSet};
use std::collections::HashMap;

/// Configuration of the RFC preprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfcConfig {
    /// Upper bound on the total number of cross-product table entries.  RFC
    /// memory grows quickly with rule count; the preprocessor aborts with
    /// [`RfcError::MemoryLimit`] instead of exhausting the host.
    pub max_table_entries: usize,
}

impl Default for RfcConfig {
    fn default() -> Self {
        RfcConfig {
            max_table_entries: 64 << 20, // 64 Mi entries ≈ 256 MB of u32 ids
        }
    }
}

/// Errors from RFC preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RfcError {
    /// The cross-product tables would exceed [`RfcConfig::max_table_entries`].
    MemoryLimit {
        /// Number of entries the offending table would need.
        required: usize,
    },
}

impl std::fmt::Display for RfcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfcError::MemoryLimit { required } => {
                write!(
                    f,
                    "RFC cross-product table needs {required} entries, over the configured limit"
                )
            }
        }
    }
}

impl std::error::Error for RfcError {}

/// Relationship between one high-half chunk value and one rule's address
/// range, used to combine the two 16-bit halves of an address exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum HiState {
    /// The rule cannot match any address with this high half.
    Outside,
    /// Every address with this high half is inside the rule's range.
    Interior,
    /// The high half equals the range's low endpoint: the low half must be
    /// `>= lo & 0xFFFF`.
    LowEdge,
    /// The high half equals the range's high endpoint: the low half must be
    /// `<= hi & 0xFFFF`.
    HighEdge,
    /// The range lies entirely within this single high-half column: the low
    /// half must be within `[lo & 0xFFFF, hi & 0xFFFF]`.
    SingleColumn,
}

/// A dense rule bitmap.
type Bitmap = Vec<u64>;

fn bitmap_new(bits: usize) -> Bitmap {
    vec![0u64; bits.div_ceil(64)]
}

fn bitmap_set(b: &mut Bitmap, i: usize) {
    b[i / 64] |= 1u64 << (i % 64);
}

fn bitmap_and(a: &Bitmap, b: &Bitmap) -> Bitmap {
    a.iter().zip(b.iter()).map(|(x, y)| x & y).collect()
}

fn bitmap_first(b: &Bitmap) -> Option<usize> {
    for (w, &word) in b.iter().enumerate() {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Assigns consecutive class ids to distinct keys.
struct Classer<K> {
    map: HashMap<K, u32>,
}

impl<K: std::hash::Hash + Eq + Clone> Classer<K> {
    fn new() -> Self {
        Classer {
            map: HashMap::new(),
        }
    }
    fn id_of(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = self.map.len() as u32;
        self.map.insert(key.clone(), id);
        id
    }
    fn len(&self) -> usize {
        self.map.len()
    }
    /// Keys ordered by their assigned id.
    fn keys_in_order(&self) -> Vec<K> {
        let mut pairs: Vec<(&K, &u32)> = self.map.iter().collect();
        pairs.sort_by_key(|(_, &id)| id);
        pairs.into_iter().map(|(k, _)| k.clone()).collect()
    }
}

/// A direct-indexed phase table mapping a chunk value (or a pair of class
/// ids) to a class id.
#[derive(Debug, Clone)]
struct PhaseTable {
    entries: Vec<u32>,
    classes: usize,
}

impl PhaseTable {
    fn lookup(&self, idx: usize) -> u32 {
        self.entries[idx]
    }
    fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

/// The RFC classifier.
#[derive(Debug, Clone)]
pub struct RfcClassifier {
    // Phase 0.
    src_hi: PhaseTable,
    src_lo: PhaseTable,
    dst_hi: PhaseTable,
    dst_lo: PhaseTable,
    src_port: PhaseTable,
    dst_port: PhaseTable,
    proto: PhaseTable,
    // Phase 1.
    src_addr: PhaseTable, // (src_hi, src_lo)
    dst_addr: PhaseTable, // (dst_hi, dst_lo)
    ports: PhaseTable,    // (src_port, dst_port)
    // Phase 2.
    addrs: PhaseTable,       // (src_addr, dst_addr)
    ports_proto: PhaseTable, // (ports, proto)
    // Phase 3: the final table stores the matched rule id + 1 (0 = no match).
    final_table: PhaseTable,
    rule_count: usize,
}

impl RfcClassifier {
    /// Preprocesses a ruleset into RFC tables with default limits.
    pub fn build(ruleset: &RuleSet) -> Result<RfcClassifier, RfcError> {
        RfcClassifier::build_with(ruleset, &RfcConfig::default())
    }

    /// Preprocesses a ruleset into RFC tables.
    pub fn build_with(ruleset: &RuleSet, config: &RfcConfig) -> Result<RfcClassifier, RfcError> {
        let n = ruleset.len();
        let rules = ruleset.rules();

        // ---- Phase 0: address high halves (state vectors) ----------------
        let addr_hi = |dim: Dimension| -> (PhaseTable, Vec<Vec<HiState>>) {
            let mut classer: Classer<Vec<HiState>> = Classer::new();
            let mut entries = Vec::with_capacity(1 << 16);
            // Boundary-compression: rule endpoints partition the 65536 values
            // into runs with identical state vectors; we still emit a full
            // direct-indexed table but only recompute the vector at
            // boundaries.
            let mut boundaries = vec![0u32, 1 << 16];
            for r in rules {
                let range = r.range(dim);
                let (lo_hi, hi_hi) = (range.lo >> 16, range.hi >> 16);
                boundaries.push(lo_hi);
                boundaries.push(lo_hi + 1);
                boundaries.push(hi_hi);
                boundaries.push(hi_hi + 1);
            }
            boundaries.retain(|&b| b <= 1 << 16);
            boundaries.sort_unstable();
            boundaries.dedup();
            for w in boundaries.windows(2) {
                let (start, end) = (w[0], w[1]);
                if start >= end {
                    continue;
                }
                let v = start;
                let states: Vec<HiState> = rules
                    .iter()
                    .map(|r| {
                        let range = r.range(dim);
                        let (lo_hi, hi_hi) = (range.lo >> 16, range.hi >> 16);
                        if v < lo_hi || v > hi_hi {
                            HiState::Outside
                        } else if lo_hi == hi_hi {
                            HiState::SingleColumn
                        } else if v == lo_hi {
                            HiState::LowEdge
                        } else if v == hi_hi {
                            HiState::HighEdge
                        } else {
                            HiState::Interior
                        }
                    })
                    .collect();
                let id = classer.id_of(&states);
                for _ in start..end {
                    entries.push(id);
                }
            }
            debug_assert_eq!(entries.len(), 1 << 16);
            let classes = classer.len();
            (PhaseTable { entries, classes }, classer.keys_in_order())
        };

        // ---- Phase 0: address low halves (pairs of booleans) -------------
        let addr_lo = |dim: Dimension| -> (PhaseTable, Vec<Vec<(bool, bool)>>) {
            let mut classer: Classer<Vec<(bool, bool)>> = Classer::new();
            let mut entries = Vec::with_capacity(1 << 16);
            let mut boundaries = vec![0u32, 1 << 16];
            for r in rules {
                let range = r.range(dim);
                boundaries.push(range.lo & 0xFFFF);
                boundaries.push((range.lo & 0xFFFF) + 1);
                boundaries.push(range.hi & 0xFFFF);
                boundaries.push((range.hi & 0xFFFF) + 1);
            }
            boundaries.retain(|&b| b <= 1 << 16);
            boundaries.sort_unstable();
            boundaries.dedup();
            for w in boundaries.windows(2) {
                let (start, end) = (w[0], w[1]);
                if start >= end {
                    continue;
                }
                let v = start;
                let flags: Vec<(bool, bool)> = rules
                    .iter()
                    .map(|r| {
                        let range = r.range(dim);
                        (v >= (range.lo & 0xFFFF), v <= (range.hi & 0xFFFF))
                    })
                    .collect();
                let id = classer.id_of(&flags);
                for _ in start..end {
                    entries.push(id);
                }
            }
            debug_assert_eq!(entries.len(), 1 << 16);
            let classes = classer.len();
            (PhaseTable { entries, classes }, classer.keys_in_order())
        };

        // ---- Phase 0: whole-chunk fields (rule bitmaps) -------------------
        let whole_chunk = |dim: Dimension, bits: u32| -> (PhaseTable, Vec<Bitmap>) {
            let size = 1usize << bits;
            let mut classer: Classer<Bitmap> = Classer::new();
            let mut entries = Vec::with_capacity(size);
            let mut boundaries = vec![0u32, size as u32];
            for r in rules {
                let range = r.range(dim);
                boundaries.push(range.lo);
                boundaries.push(range.lo + 1);
                boundaries.push(range.hi);
                boundaries.push(range.hi + 1);
            }
            boundaries.retain(|&b| b <= size as u32);
            boundaries.sort_unstable();
            boundaries.dedup();
            for w in boundaries.windows(2) {
                let (start, end) = (w[0], w[1]);
                if start >= end {
                    continue;
                }
                let v = start;
                let mut bm = bitmap_new(n);
                for (i, r) in rules.iter().enumerate() {
                    if r.range(dim).contains(v) {
                        bitmap_set(&mut bm, i);
                    }
                }
                let id = classer.id_of(&bm);
                for _ in start..end {
                    entries.push(id);
                }
            }
            debug_assert_eq!(entries.len(), size);
            let classes = classer.len();
            (PhaseTable { entries, classes }, classer.keys_in_order())
        };

        let (src_hi, src_hi_states) = addr_hi(Dimension::SrcIp);
        let (src_lo, src_lo_flags) = addr_lo(Dimension::SrcIp);
        let (dst_hi, dst_hi_states) = addr_hi(Dimension::DstIp);
        let (dst_lo, dst_lo_flags) = addr_lo(Dimension::DstIp);
        let (src_port, src_port_bms) = whole_chunk(Dimension::SrcPort, 16);
        let (dst_port, dst_port_bms) = whole_chunk(Dimension::DstPort, 16);
        let (proto, proto_bms) = whole_chunk(Dimension::Protocol, 8);

        let check = |required: usize| -> Result<(), RfcError> {
            if required > config.max_table_entries {
                Err(RfcError::MemoryLimit { required })
            } else {
                Ok(())
            }
        };

        // ---- Phase 1: combine address halves exactly ----------------------
        let combine_addr = |hi: &PhaseTable,
                            hi_states: &[Vec<HiState>],
                            lo: &PhaseTable,
                            lo_flags: &[Vec<(bool, bool)>]|
         -> Result<(PhaseTable, Vec<Bitmap>), RfcError> {
            let required = hi.classes * lo.classes;
            check(required)?;
            let mut classer: Classer<Bitmap> = Classer::new();
            let mut entries = Vec::with_capacity(required);
            for hs in hi_states {
                for lf in lo_flags {
                    let mut bm = bitmap_new(n);
                    for i in 0..n {
                        let (ge_lo, le_hi) = lf[i];
                        let hit = match hs[i] {
                            HiState::Outside => false,
                            HiState::Interior => true,
                            HiState::LowEdge => ge_lo,
                            HiState::HighEdge => le_hi,
                            HiState::SingleColumn => ge_lo && le_hi,
                        };
                        if hit {
                            bitmap_set(&mut bm, i);
                        }
                    }
                    entries.push(classer.id_of(&bm));
                }
            }
            let classes = classer.len();
            Ok((PhaseTable { entries, classes }, classer.keys_in_order()))
        };

        // ---- Generic bitmap cross-product ---------------------------------
        let combine_bitmaps = |a: &PhaseTable,
                               a_bms: &[Bitmap],
                               b: &PhaseTable,
                               b_bms: &[Bitmap]|
         -> Result<(PhaseTable, Vec<Bitmap>), RfcError> {
            let required = a.classes * b.classes;
            check(required)?;
            let mut classer: Classer<Bitmap> = Classer::new();
            let mut entries = Vec::with_capacity(required);
            for abm in a_bms {
                for bbm in b_bms {
                    let bm = bitmap_and(abm, bbm);
                    entries.push(classer.id_of(&bm));
                }
            }
            let classes = classer.len();
            Ok((PhaseTable { entries, classes }, classer.keys_in_order()))
        };

        let (src_addr, src_addr_bms) =
            combine_addr(&src_hi, &src_hi_states, &src_lo, &src_lo_flags)?;
        let (dst_addr, dst_addr_bms) =
            combine_addr(&dst_hi, &dst_hi_states, &dst_lo, &dst_lo_flags)?;
        let (ports, ports_bms) =
            combine_bitmaps(&src_port, &src_port_bms, &dst_port, &dst_port_bms)?;
        let (addrs, addrs_bms) =
            combine_bitmaps(&src_addr, &src_addr_bms, &dst_addr, &dst_addr_bms)?;
        let (ports_proto, ports_proto_bms) =
            combine_bitmaps(&ports, &ports_bms, &proto, &proto_bms)?;

        // ---- Phase 3: final table stores rule id + 1 -----------------------
        let required = addrs.classes * ports_proto.classes;
        check(required)?;
        let mut final_entries = Vec::with_capacity(required);
        for abm in &addrs_bms {
            for pbm in &ports_proto_bms {
                let bm = bitmap_and(abm, pbm);
                final_entries.push(match bitmap_first(&bm) {
                    Some(i) => i as u32 + 1,
                    None => 0,
                });
            }
        }
        let final_table = PhaseTable {
            classes: 0,
            entries: final_entries,
        };

        Ok(RfcClassifier {
            src_hi,
            src_lo,
            dst_hi,
            dst_lo,
            src_port,
            dst_port,
            proto,
            src_addr,
            dst_addr,
            ports,
            addrs,
            ports_proto,
            final_table,
            rule_count: n,
        })
    }

    /// Number of rules the classifier was built for.
    pub fn rule_count(&self) -> usize {
        self.rule_count
    }

    /// Total number of table entries across all phases (each entry is one
    /// 32-bit word in this implementation).
    pub fn table_entries(&self) -> usize {
        [
            &self.src_hi,
            &self.src_lo,
            &self.dst_hi,
            &self.dst_lo,
            &self.src_port,
            &self.dst_port,
            &self.proto,
            &self.src_addr,
            &self.dst_addr,
            &self.ports,
            &self.addrs,
            &self.ports_proto,
            &self.final_table,
        ]
        .iter()
        .map(|t| t.entry_count())
        .sum()
    }

    #[inline]
    fn lookup_ids(&self, pkt: &PacketHeader) -> u32 {
        let src = pkt.src_ip();
        let dst = pkt.dst_ip();
        let a = self.src_hi.lookup((src >> 16) as usize);
        let b = self.src_lo.lookup((src & 0xFFFF) as usize);
        let c = self.dst_hi.lookup((dst >> 16) as usize);
        let d = self.dst_lo.lookup((dst & 0xFFFF) as usize);
        let e = self.src_port.lookup(pkt.src_port() as usize);
        let f = self.dst_port.lookup(pkt.dst_port() as usize);
        let g = self.proto.lookup(pkt.protocol() as usize);

        let sa = self
            .src_addr
            .lookup(a as usize * self.src_lo.classes + b as usize);
        let da = self
            .dst_addr
            .lookup(c as usize * self.dst_lo.classes + d as usize);
        let pp = self
            .ports
            .lookup(e as usize * self.dst_port.classes + f as usize);

        let ad = self
            .addrs
            .lookup(sa as usize * self.dst_addr.classes + da as usize);
        let pg = self
            .ports_proto
            .lookup(pp as usize * self.proto.classes + g as usize);

        self.final_table
            .lookup(ad as usize * self.ports_proto.classes + pg as usize)
    }
}

impl Classifier for RfcClassifier {
    fn name(&self) -> &'static str {
        "rfc"
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        match self.lookup_ids(pkt) {
            0 => MatchResult::NoMatch,
            id => MatchResult::Matched(id - 1),
        }
    }

    /// Phase-major batched lookup.
    ///
    /// The per-packet path touches all 13 tables for one packet before
    /// moving to the next, so with large rulesets every phase-1/2 access is
    /// a likely cache miss.  Here the batch is processed in tiles and each
    /// phase runs over the whole tile before the next phase starts, so one
    /// table's working set is reused across the tile instead of being
    /// evicted 13 tables later.
    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        /// Tile width: large enough to amortise table reuse, small enough
        /// that the per-tile id arrays live comfortably in L1.
        const TILE: usize = 64;

        out.reserve(pkts.len());
        let mut sa = [0u32; TILE];
        let mut da = [0u32; TILE];
        let mut pp = [0u32; TILE];
        let mut scratch = [0u32; TILE];
        for tile in pkts.chunks(TILE) {
            let n = tile.len();
            // Phase 0 + phase 1, one address/port pair at a time.
            for (i, pkt) in tile.iter().enumerate() {
                let src = pkt.src_ip();
                let hi = self.src_hi.lookup((src >> 16) as usize);
                let lo = self.src_lo.lookup((src & 0xFFFF) as usize);
                sa[i] = self
                    .src_addr
                    .lookup(hi as usize * self.src_lo.classes + lo as usize);
            }
            for (i, pkt) in tile.iter().enumerate() {
                let dst = pkt.dst_ip();
                let hi = self.dst_hi.lookup((dst >> 16) as usize);
                let lo = self.dst_lo.lookup((dst & 0xFFFF) as usize);
                da[i] = self
                    .dst_addr
                    .lookup(hi as usize * self.dst_lo.classes + lo as usize);
            }
            for (i, pkt) in tile.iter().enumerate() {
                let sp = self.src_port.lookup(pkt.src_port() as usize);
                let dp = self.dst_port.lookup(pkt.dst_port() as usize);
                pp[i] = self
                    .ports
                    .lookup(sp as usize * self.dst_port.classes + dp as usize);
            }
            // Phase 2: addresses, then ports x protocol.
            for i in 0..n {
                scratch[i] = self
                    .addrs
                    .lookup(sa[i] as usize * self.dst_addr.classes + da[i] as usize);
            }
            for (i, pkt) in tile.iter().enumerate() {
                let g = self.proto.lookup(pkt.protocol() as usize);
                pp[i] = self
                    .ports_proto
                    .lookup(pp[i] as usize * self.proto.classes + g as usize);
            }
            // Phase 3: final table.
            for i in 0..n {
                let id = self
                    .final_table
                    .lookup(scratch[i] as usize * self.ports_proto.classes + pp[i] as usize);
                out.push(match id {
                    0 => MatchResult::NoMatch,
                    id => MatchResult::Matched(id - 1),
                });
            }
        }
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        // 13 table reads: 7 phase-0, 3 phase-1, 2 phase-2, 1 final.
        stats.memory_accesses += 13;
        stats.ops.loads += 13;
        stats.ops.alu += 20; // index arithmetic
        stats.ops.muls += 6;
        self.classify(pkt)
    }

    fn memory_bytes(&self) -> usize {
        // Every table entry is stored as a 16-bit class id in a production
        // implementation (class counts stay far below 65536); count 2 bytes
        // per entry the way the paper's companion study does.
        self.table_entries() * 2
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(13)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::{FieldRange, Rule, RuleBuilder};

    fn five_tuple_set() -> RuleSet {
        let rules = vec![
            RuleBuilder::new(0)
                .src_prefix(0x0A00_0000, 8)
                .dst_prefix(0xC0A8_0100, 24)
                .dst_port(80)
                .protocol(6)
                .build(),
            RuleBuilder::new(1)
                .src_prefix(0x0A01_0000, 16)
                .dst_port_range(1024, 65535)
                .protocol(6)
                .build(),
            RuleBuilder::new(2)
                .dst_prefix(0xC0A8_0000, 16)
                .protocol(17)
                .build(),
            // A rule whose source address is an arbitrary range spanning
            // several high-half columns — the case the HiState machinery
            // exists for.
            Rule::new(
                3,
                [
                    FieldRange::new(0x0A01_FFF0, 0x0A03_0010),
                    FieldRange::full(32),
                    FieldRange::full(16),
                    FieldRange::full(16),
                    FieldRange::exact(6),
                ],
            ),
            RuleBuilder::new(4).build(), // default rule
        ];
        RuleSet::new("rfc_test", pclass_types::DimensionSpec::FIVE_TUPLE, rules).unwrap()
    }

    #[test]
    fn agrees_with_linear_search_on_crafted_packets() {
        let rs = five_tuple_set();
        let rfc = RfcClassifier::build(&rs).unwrap();
        let packets = [
            PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_0105, 40000, 80, 6),
            PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_0105, 40000, 8080, 6),
            PacketHeader::five_tuple(0x0B01_0203, 0xC0A8_0105, 40000, 53, 17),
            PacketHeader::five_tuple(0x0A02_0000, 0x01020304, 1, 1, 6), // inside rule 3's range
            PacketHeader::five_tuple(0x0A03_0011, 0x01020304, 1, 1, 6), // just outside rule 3
            PacketHeader::five_tuple(0x0A01_FFEF, 0x01020304, 1, 1, 6), // just below rule 3
            PacketHeader::five_tuple(0x0A01_FFF0, 0x01020304, 1, 1, 6), // exactly rule 3's lower bound
            PacketHeader::five_tuple(0xFFFF_FFFF, 0xFFFF_FFFF, 65535, 65535, 255),
            PacketHeader::five_tuple(0, 0, 0, 0, 0),
        ];
        for pkt in packets {
            assert_eq!(rfc.classify(&pkt), rs.classify_linear(&pkt), "packet {pkt}");
        }
    }

    #[test]
    fn boundary_sweep_around_arbitrary_range() {
        let rs = five_tuple_set();
        let rfc = RfcClassifier::build(&rs).unwrap();
        // Sweep addresses around the awkward range of rule 3 in steps that
        // cross the 16-bit column boundaries.
        let mut addr: u64 = 0x0A01_FF00;
        while addr <= 0x0A03_0100 {
            let pkt = PacketHeader::five_tuple(addr as u32, 0x0102_0304, 7, 7, 6);
            assert_eq!(
                rfc.classify(&pkt),
                rs.classify_linear(&pkt),
                "addr {addr:#x}"
            );
            addr += 0x33;
        }
    }

    #[test]
    fn priority_is_respected() {
        let rs = five_tuple_set();
        let rfc = RfcClassifier::build(&rs).unwrap();
        // Matches rules 0, 1 (ports) and 4 — rule 0 must win.
        let pkt = PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_0105, 40000, 80, 6);
        assert_eq!(rfc.classify(&pkt), MatchResult::Matched(0));
    }

    #[test]
    fn stats_and_metadata() {
        let rs = five_tuple_set();
        let rfc = RfcClassifier::build(&rs).unwrap();
        assert_eq!(rfc.name(), "rfc");
        assert_eq!(rfc.rule_count(), 5);
        assert_eq!(rfc.worst_case_memory_accesses(), Some(13));
        assert!(rfc.memory_bytes() > 7 * (1 << 16)); // at least the phase-0 tables
        let mut stats = LookupStats::new();
        let pkt = PacketHeader::five_tuple(0, 0, 0, 0, 0);
        rfc.classify_with_stats(&pkt, &mut stats);
        assert_eq!(stats.memory_accesses, 13);
    }

    #[test]
    fn batched_lookup_matches_per_packet() {
        let rs = five_tuple_set();
        let rfc = RfcClassifier::build(&rs).unwrap();
        // More packets than one tile, including tile-boundary stragglers.
        let pkts: Vec<PacketHeader> = (0u32..150)
            .map(|i| {
                PacketHeader::five_tuple(
                    0x0A01_FF00u32.wrapping_add(i * 0x1234),
                    0xC0A8_0100 ^ (i * 7),
                    (i * 131) as u16,
                    (i * 37) as u16,
                    if i % 3 == 0 { 6 } else { 17 },
                )
            })
            .collect();
        let mut batched = Vec::new();
        rfc.classify_batch(&pkts, &mut batched);
        let sequential: Vec<MatchResult> = pkts.iter().map(|p| rfc.classify(p)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn memory_limit_is_enforced() {
        let rs = five_tuple_set();
        let config = RfcConfig {
            max_table_entries: 10,
        };
        match RfcClassifier::build_with(&rs, &config) {
            Err(RfcError::MemoryLimit { required }) => assert!(required > 10),
            other => panic!("expected memory-limit error, got {other:?}"),
        }
    }

    #[test]
    fn empty_ruleset_never_matches() {
        let rs = RuleSet::new("empty", pclass_types::DimensionSpec::FIVE_TUPLE, vec![]).unwrap();
        let rfc = RfcClassifier::build(&rs).unwrap();
        assert_eq!(
            rfc.classify(&PacketHeader::five_tuple(1, 2, 3, 4, 5)),
            MatchResult::NoMatch
        );
    }
}
