//! Popularity-adaptive exact-match hot-flow cache.
//!
//! The Zipf cells of the scenario matrix show that skewed traffic already
//! runs faster than uniform traffic purely from hardware cache residency;
//! nothing in the stack *adapts* to the skew.  This module adds the classic
//! software analogue of the source paper's TCAM fast path: a small bounded
//! exact-match cache keyed on the 5-tuple, sitting in front of any
//! [`Classifier`], that answers repeat flows without walking the search
//! structure at all.
//!
//! Two layers:
//!
//! * [`HotCache`] — the raw set-associative cache.  Probes and fills work
//!   through `&self` (per-entry seqlock over plain atomics, no `unsafe`),
//!   so one cache can be shared by concurrent readers and writers; every
//!   entry carries a **generation tag** and a probe only hits when the
//!   entry's tag equals the probe's, which is how invalidation works
//!   without ever touching the entries.
//! * [`CachedClassifier`] — fronts any [`Classifier`] with a [`HotCache`].
//!   Batch lookups probe the whole sub-batch first and fall the misses
//!   through to the inner [`Classifier::classify_batch`] as **one dense
//!   batch**, so a vectorised lane walk behind the cache still sees full
//!   lanes.  When the inner classifier is an [`UpdatableClassifier`], every
//!   successful `insert`/`delete` moves the wrapper to a fresh generation
//!   allocated by the cache, so a stale hit is structurally impossible —
//!   entries filled against the old ruleset no longer match any probe.
//!
//! Eviction is CLOCK (second chance): a hit sets the entry's reference bit,
//! a fill sweeps the set's clock hand, clearing reference bits until it
//! finds an unreferenced victim — stale-generation entries are reclaimed
//! first.  Hit/miss/eviction counters feed
//! [`pclass_types::CacheStats`] and the `cache_*` fields of
//! [`LookupStats`].

use crate::counters::LookupStats;
use crate::update::{RuleUpdate, UpdatableClassifier, UpdateError};
use crate::Classifier;
use pclass_types::{
    CacheStats, DimensionSpec, MatchResult, PacketHeader, Rule, RuleId, UpdateStats,
};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Geometry of a [`HotCache`]: total entry budget and set associativity.
///
/// The cache rounds the set count down to a power of two, so the actual
/// entry count ([`HotCache::slot_count`]) never exceeds `capacity`.  A
/// `capacity` of 0 disables caching entirely (every lookup falls through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotCacheConfig {
    /// Maximum number of cached flows (upper bound; rounded down to
    /// `sets × assoc` with a power-of-two set count).
    pub capacity: usize,
    /// Entries per set (clamped to `1..=capacity`).
    pub assoc: usize,
}

impl HotCacheConfig {
    /// Default entry budget: small enough that hot flows must *earn* their
    /// slot under CLOCK, large enough to hold the hot set of a Zipf trace.
    pub const DEFAULT_CAPACITY: usize = 1024;
    /// Default associativity.
    pub const DEFAULT_ASSOC: usize = 4;

    /// A config with an explicit capacity and associativity.
    pub fn new(capacity: usize, assoc: usize) -> HotCacheConfig {
        HotCacheConfig { capacity, assoc }
    }
}

impl Default for HotCacheConfig {
    fn default() -> HotCacheConfig {
        HotCacheConfig {
            capacity: Self::DEFAULT_CAPACITY,
            assoc: Self::DEFAULT_ASSOC,
        }
    }
}

/// Generation tag of a slot that has never been filled.  Real tags are
/// allocated from a counter starting at 0, so this value never matches.
const EMPTY_GENERATION: u64 = u64::MAX;

/// Encoding of [`MatchResult`] in one word: rule ids are strictly below
/// `u32::MAX` (the update model reserves it), so the maximum encodes
/// `NoMatch`.
const NO_MATCH: u32 = u32::MAX;

fn encode(result: MatchResult) -> u32 {
    match result {
        MatchResult::Matched(id) => {
            debug_assert_ne!(id, NO_MATCH, "u32::MAX is the no-match sentinel");
            id
        }
        MatchResult::NoMatch => NO_MATCH,
    }
}

fn decode(word: u32) -> MatchResult {
    if word == NO_MATCH {
        MatchResult::NoMatch
    } else {
        MatchResult::Matched(word)
    }
}

/// One cache entry.  `version` is a per-entry seqlock: even = stable, odd =
/// a fill in progress.  Readers accept an entry only if the version is even
/// and unchanged across their field loads; writers acquire the slot with a
/// compare-exchange to odd, store the fields, and release with `+2`.  All
/// field loads are `Acquire` and all field stores are `Release`, so a field
/// value can never be observed ahead of the version transition that
/// published it — a torn (half-written) entry is always rejected by the
/// version re-check.
struct Slot {
    version: AtomicU64,
    generation: AtomicU64,
    key: [AtomicU32; 5],
    result: AtomicU32,
    referenced: AtomicU32,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            generation: AtomicU64::new(EMPTY_GENERATION),
            key: [const { AtomicU32::new(0) }; 5],
            result: AtomicU32::new(NO_MATCH),
            referenced: AtomicU32::new(0),
        }
    }
}

/// Mixes the five header words into a well-distributed 64-bit hash
/// (SplitMix64-style finalisation per word).
fn hash_fields(fields: &[u32; 5]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &f in fields {
        h ^= u64::from(f);
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h ^ (h >> 31)
}

/// A bounded set-associative exact-match flow cache with per-entry
/// generation tags and CLOCK eviction.  See the [module docs](self).
///
/// All operations take `&self`; the cache is safe to share across threads.
/// Fills are best-effort: a fill that races another writer on the same slot
/// is simply dropped (the flow will be re-filled on its next miss), which
/// keeps the read path lock-free.
pub struct HotCache {
    config: HotCacheConfig,
    /// Entries, `sets × assoc`, set-major.  Empty when `capacity == 0`.
    slots: Vec<Slot>,
    /// Power-of-two set count (0 when the cache is disabled).
    sets: usize,
    /// Effective associativity after clamping against the capacity.
    assoc: usize,
    /// Per-set CLOCK hands.
    hands: Vec<AtomicUsize>,
    /// Allocator for generation tags (see [`HotCache::allocate_generation`]).
    generations: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for HotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotCache")
            .field("config", &self.config)
            .field("sets", &self.sets)
            .field("assoc", &self.assoc)
            .field("stats", &self.stats())
            .finish()
    }
}

impl HotCache {
    /// Builds a cache with the given geometry.  The set count is the
    /// largest power of two such that `sets × assoc <= capacity`, so the
    /// entry budget is a hard bound.
    pub fn new(config: HotCacheConfig) -> HotCache {
        let (sets, assoc) = if config.capacity == 0 {
            (0, config.assoc.max(1))
        } else {
            let assoc = config.assoc.clamp(1, config.capacity);
            let max_sets = (config.capacity / assoc).max(1);
            // Largest power of two <= max_sets.
            let sets = 1usize << (usize::BITS - 1 - max_sets.leading_zeros());
            (sets, assoc)
        };
        let slot_count = sets * assoc;
        HotCache {
            config,
            slots: (0..slot_count).map(|_| Slot::empty()).collect(),
            sets,
            assoc,
            hands: (0..sets).map(|_| AtomicUsize::new(0)).collect(),
            generations: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> HotCacheConfig {
        self.config
    }

    /// Actual number of entry slots (`<= config.capacity`).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a generation tag never handed out by this cache before.
    /// Distinct tags never hit each other's entries, so every classifier
    /// lineage (and every post-update state) gets its own namespace inside
    /// one shared cache.
    pub fn allocate_generation(&self) -> u64 {
        let tag = self.generations.fetch_add(1, Ordering::Relaxed);
        debug_assert_ne!(tag, EMPTY_GENERATION);
        tag
    }

    /// Cumulative hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes occupied by the cache arrays.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
            + self.hands.len() * std::mem::size_of::<AtomicUsize>()
    }

    fn set_base(&self, pkt: &PacketHeader) -> usize {
        // High bits of the mix index the set (low bits are the weakest).
        ((hash_fields(&pkt.fields) >> 7) as usize & (self.sets - 1)) * self.assoc
    }

    /// Looks the flow up under a generation tag.  `None` is a miss (and is
    /// counted as one).
    pub fn probe(&self, pkt: &PacketHeader, tag: u64) -> Option<MatchResult> {
        if self.slots.is_empty() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match self.probe_slots(pkt, tag) {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The uncounted probe loop ([`HotCache::serve_batch`] batches the
    /// counter updates — one atomic add per sub-batch instead of one
    /// contended read-modify-write per packet on the hot path).
    fn probe_slots(&self, pkt: &PacketHeader, tag: u64) -> Option<MatchResult> {
        let base = self.set_base(pkt);
        for slot in &self.slots[base..base + self.assoc] {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                continue; // fill in progress
            }
            let generation = slot.generation.load(Ordering::Acquire);
            let mut key = [0u32; 5];
            for (k, word) in key.iter_mut().zip(&slot.key) {
                *k = word.load(Ordering::Acquire);
            }
            let result = slot.result.load(Ordering::Acquire);
            if slot.version.load(Ordering::Acquire) != v1 {
                continue; // raced a fill: the fields above may be torn
            }
            if generation != tag || key != pkt.fields {
                continue;
            }
            if slot.referenced.load(Ordering::Relaxed) == 0 {
                slot.referenced.store(1, Ordering::Relaxed);
            }
            return Some(decode(result));
        }
        None
    }

    /// Caches a flow's decision under a generation tag.  Returns `true` if
    /// a live entry (same tag, different flow) was evicted to make room.
    pub fn fill(&self, pkt: &PacketHeader, tag: u64, result: MatchResult) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let base = self.set_base(pkt);
        let set = &self.slots[base..base + self.assoc];

        // Duplicate suppression and victim choice in one sweep: an entry
        // already holding this flow is refreshed in place, and any
        // stale-generation entry is reclaimed before a live one.
        let mut victim = None;
        for (way, slot) in set.iter().enumerate() {
            let generation = slot.generation.load(Ordering::Acquire);
            if generation == tag {
                let mut key = [0u32; 5];
                for (k, word) in key.iter_mut().zip(&slot.key) {
                    *k = word.load(Ordering::Acquire);
                }
                if key == pkt.fields {
                    victim = Some(way);
                    break;
                }
            } else if victim.is_none() {
                victim = Some(way);
            }
        }
        // No empty/stale way: CLOCK second-chance sweep over the set.  The
        // hand and the reference bits are advisory (eviction *choice* is a
        // heuristic; entry *contents* are what the seqlock protects), so
        // plain load/store racing another fill is benign — and much cheaper
        // than a locked read-modify-write per swept way.
        let way = victim.unwrap_or_else(|| {
            let hand = &self.hands[base / self.assoc];
            let mut h = hand.load(Ordering::Relaxed);
            let mut chosen = None;
            for _ in 0..2 * self.assoc {
                let way = h % self.assoc;
                h = h.wrapping_add(1);
                if set[way].referenced.load(Ordering::Relaxed) == 0 {
                    chosen = Some(way);
                    break;
                }
                set[way].referenced.store(0, Ordering::Relaxed);
            }
            hand.store(h, Ordering::Relaxed);
            chosen.unwrap_or(h % self.assoc)
        });

        let slot = &set[way];
        let v = slot.version.load(Ordering::Acquire);
        if v & 1 == 1 {
            return false; // another fill owns the slot; drop ours
        }
        if slot
            .version
            .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        let old_generation = slot.generation.load(Ordering::Acquire);
        let mut old_key = [0u32; 5];
        for (k, word) in old_key.iter_mut().zip(&slot.key) {
            *k = word.load(Ordering::Acquire);
        }
        let evicted = old_generation == tag && old_key != pkt.fields;
        slot.generation.store(tag, Ordering::Release);
        for (word, &k) in slot.key.iter().zip(&pkt.fields) {
            word.store(k, Ordering::Release);
        }
        slot.result.store(encode(result), Ordering::Release);
        slot.referenced.store(1, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// Batch-aware serve: probes every packet under `tag`, falls the misses
    /// through to `fallback` as **one dense batch** (so a vectorised walk
    /// behind the cache still sees full lanes), scatters the fallback
    /// results into place, and fills the cache with them.
    ///
    /// Consecutive identical headers — the flow bursts ClassBench traces
    /// carry — are served **once**: a burst's repeats reuse the first
    /// packet's disposition (its cached result, or its slot in the miss
    /// batch) without re-probing, and count as hits when the first packet
    /// hit.  Probing the whole sub-batch before filling would otherwise
    /// make every packet of a cold burst miss individually, hiding exactly
    /// the locality a flow cache exists to exploit.
    ///
    /// Appends exactly `pkts.len()` results to `out` in input order, like
    /// [`Classifier::classify_batch`]; `fallback` must do the same for the
    /// miss batch it is handed.
    pub fn serve_batch<F>(
        &self,
        tag: u64,
        pkts: &[PacketHeader],
        out: &mut Vec<MatchResult>,
        fallback: F,
    ) where
        F: FnOnce(&[PacketHeader], &mut Vec<MatchResult>),
    {
        if self.slots.is_empty() {
            // Disabled cache: pure pass-through (every packet is a miss).
            self.misses.fetch_add(pkts.len() as u64, Ordering::Relaxed);
            fallback(pkts, out);
            return;
        }
        let base = out.len();
        out.resize(base + pkts.len(), MatchResult::NoMatch);
        let mut hits = 0u64;
        // (position, index into `miss_pkts`) — burst repeats of a missed
        // flow share one miss-batch slot instead of walking twice.
        let mut miss_at: Vec<(usize, usize)> = Vec::new();
        let mut miss_pkts: Vec<PacketHeader> = Vec::new();
        for (i, pkt) in pkts.iter().enumerate() {
            if i > 0 && *pkt == pkts[i - 1] {
                match miss_at.last().copied() {
                    Some((at, m)) if at == i - 1 => miss_at.push((i, m)),
                    _ => {
                        out[base + i] = out[base + i - 1];
                        hits += 1;
                    }
                }
                continue;
            }
            match self.probe_slots(pkt, tag) {
                Some(result) => {
                    out[base + i] = result;
                    hits += 1;
                }
                None => {
                    miss_at.push((i, miss_pkts.len()));
                    miss_pkts.push(*pkt);
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses
            .fetch_add(miss_at.len() as u64, Ordering::Relaxed);
        if miss_pkts.is_empty() {
            return;
        }
        let mut fallthrough = Vec::with_capacity(miss_pkts.len());
        fallback(&miss_pkts, &mut fallthrough);
        debug_assert_eq!(fallthrough.len(), miss_pkts.len(), "impure fallback");
        let mut filled = usize::MAX;
        for &(i, m) in &miss_at {
            let result = fallthrough[m];
            out[base + i] = result;
            if m != filled {
                self.fill(&pkts[i], tag, result);
                filled = m;
            }
        }
    }
}

/// Fronts any [`Classifier`] with a [`HotCache`].  See the
/// [module docs](self).
///
/// Cloning shares the cache (`Arc`) and keeps the generation tag: a clone
/// serves the same ruleset, so warm entries stay valid for it.  The moment
/// either copy mutates (via [`UpdatableClassifier`]), it moves alone to a
/// freshly allocated generation, so divergent clones can never serve each
/// other's entries.  That is exactly the lifecycle of
/// `pclass_engine::LiveClassifier`'s writer/snapshot pairs, which this
/// wrapper composes with unchanged.
#[derive(Debug, Clone)]
pub struct CachedClassifier<C> {
    inner: C,
    cache: Arc<HotCache>,
    generation: u64,
}

impl<C> CachedClassifier<C> {
    /// Wraps a classifier behind a fresh cache with this geometry.
    pub fn new(inner: C, config: HotCacheConfig) -> CachedClassifier<C> {
        CachedClassifier::with_cache(inner, Arc::new(HotCache::new(config)))
    }

    /// Wraps a classifier behind an existing (possibly shared) cache; the
    /// wrapper starts on a freshly allocated generation of that cache.
    pub fn with_cache(inner: C, cache: Arc<HotCache>) -> CachedClassifier<C> {
        let generation = cache.allocate_generation();
        CachedClassifier {
            inner,
            cache,
            generation,
        }
    }

    /// The backing classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The cache in front of it.
    pub fn cache(&self) -> &Arc<HotCache> {
        &self.cache
    }

    /// The generation tag this wrapper currently probes and fills under.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl<C: Classifier> Classifier for CachedClassifier<C> {
    fn name(&self) -> &'static str {
        // The cache is a transparent accelerator, not an algorithm: reports
        // keep attributing decisions to the backing structure.
        self.inner.name()
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        if let Some(result) = self.cache.probe(pkt, self.generation) {
            return result;
        }
        let result = self.inner.classify(pkt);
        self.cache.fill(pkt, self.generation, result);
        result
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        self.cache
            .serve_batch(self.generation, pkts, out, |miss, fell| {
                self.inner.classify_batch(miss, fell)
            });
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        // The probe touches up to `assoc` entries regardless of outcome.
        let probe_loads = self.cache.assoc.max(1) as u64;
        stats.ops.loads += probe_loads;
        stats.memory_accesses += probe_loads;
        if let Some(result) = self.cache.probe(pkt, self.generation) {
            stats.cache_hits += 1;
            return result;
        }
        stats.cache_misses += 1;
        let result = self.inner.classify_with_stats(pkt, stats);
        if self.cache.fill(pkt, self.generation, result) {
            stats.cache_evictions += 1;
        }
        stats.ops.stores += 8; // one slot rewrite
        result
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.cache.memory_bytes()
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        // A miss probes the whole set, then pays the inner worst case.
        self.inner
            .worst_case_memory_accesses()
            .map(|inner| inner + self.cache.assoc as u64)
    }
}

impl<C: UpdatableClassifier> UpdatableClassifier for CachedClassifier<C> {
    fn insert(&mut self, rule: Rule) -> Result<(), UpdateError> {
        self.inner.insert(rule)?;
        self.generation = self.cache.allocate_generation();
        Ok(())
    }

    fn delete(&mut self, rule_id: RuleId) -> Result<(), UpdateError> {
        self.inner.delete(rule_id)?;
        self.generation = self.cache.allocate_generation();
        Ok(())
    }

    fn live_rules(&self) -> Vec<Rule> {
        self.inner.live_rules()
    }

    fn spec(&self) -> DimensionSpec {
        self.inner.spec()
    }

    fn update_stats(&self) -> UpdateStats {
        self.inner.update_stats()
    }

    fn apply(&mut self, update: &RuleUpdate) -> Result<(), UpdateError> {
        match update {
            RuleUpdate::Insert(rule) => self.insert(*rule),
            RuleUpdate::Delete(id) => self.delete(*id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearClassifier;
    use pclass_types::{DimensionSpec, RuleBuilder, RuleSet};

    fn pkt(a: u32, b: u32, c: u32, d: u32, e: u32) -> PacketHeader {
        PacketHeader::from_fields([a, b, c, d, e])
    }

    fn small_ruleset() -> RuleSet {
        let rules = vec![
            RuleBuilder::new(0).dst_port(80).build(),
            RuleBuilder::new(1).dst_port(443).build(),
            RuleBuilder::new(2).build(), // wildcard catch-all
        ];
        RuleSet::new("hot", DimensionSpec::FIVE_TUPLE, rules).unwrap()
    }

    fn updatable(rs: &RuleSet) -> crate::flat::FlatTreeClassifier {
        crate::hicuts::HiCutsClassifier::build(rs, &crate::hicuts::HiCutsConfig::paper_defaults())
            .flatten()
    }

    #[test]
    fn geometry_respects_the_entry_budget() {
        for (capacity, assoc) in [(0, 4), (1, 4), (3, 4), (7, 2), (1024, 4), (1000, 4), (5, 1)] {
            let cache = HotCache::new(HotCacheConfig::new(capacity, assoc));
            assert!(
                cache.slot_count() <= capacity,
                "capacity {capacity} assoc {assoc} built {} slots",
                cache.slot_count()
            );
            if capacity > 0 {
                assert!(cache.slot_count() >= 1);
                assert!(cache.sets.is_power_of_two());
            }
        }
        assert_eq!(HotCache::new(HotCacheConfig::new(0, 4)).slot_count(), 0);
        assert_eq!(
            HotCache::new(HotCacheConfig::new(1024, 4)).slot_count(),
            1024
        );
    }

    #[test]
    fn probe_fill_roundtrip_and_counters() {
        let cache = HotCache::new(HotCacheConfig::new(64, 4));
        let tag = cache.allocate_generation();
        let p = pkt(1, 2, 3, 4, 5);
        assert_eq!(cache.probe(&p, tag), None);
        cache.fill(&p, tag, MatchResult::Matched(7));
        assert_eq!(cache.probe(&p, tag), Some(MatchResult::Matched(7)));
        // NoMatch decisions are cacheable too.
        let q = pkt(9, 9, 9, 9, 9);
        cache.fill(&q, tag, MatchResult::NoMatch);
        assert_eq!(cache.probe(&q, tag), Some(MatchResult::NoMatch));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn generation_tags_partition_the_cache() {
        let cache = HotCache::new(HotCacheConfig::new(64, 4));
        let old = cache.allocate_generation();
        let new = cache.allocate_generation();
        let p = pkt(1, 2, 3, 4, 5);
        cache.fill(&p, old, MatchResult::Matched(1));
        assert_eq!(cache.probe(&p, new), None, "other tags never hit");
        assert_eq!(cache.probe(&p, old), Some(MatchResult::Matched(1)));
    }

    #[test]
    fn zero_capacity_cache_is_pure_passthrough() {
        let cache = HotCache::new(HotCacheConfig::new(0, 4));
        let tag = cache.allocate_generation();
        let p = pkt(1, 2, 3, 4, 5);
        assert!(!cache.fill(&p, tag, MatchResult::Matched(1)));
        assert_eq!(cache.probe(&p, tag), None);
        let mut out = Vec::new();
        cache.serve_batch(tag, &[p], &mut out, |pkts, fell| {
            fell.extend(pkts.iter().map(|_| MatchResult::Matched(42)));
        });
        assert_eq!(out, vec![MatchResult::Matched(42)]);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clock_eviction_prefers_unreferenced_entries() {
        // One set of 2: fill two flows, touch one, insert a third — the
        // untouched flow is the victim.
        let cache = HotCache::new(HotCacheConfig::new(2, 2));
        assert_eq!(cache.slot_count(), 2);
        let tag = cache.allocate_generation();
        let (a, b, c) = (pkt(1, 0, 0, 0, 0), pkt(2, 0, 0, 0, 0), pkt(3, 0, 0, 0, 0));
        cache.fill(&a, tag, MatchResult::Matched(1));
        cache.fill(&b, tag, MatchResult::Matched(2));
        // Sweep once so both reference bits are cleared, then re-reference a.
        let evicted = cache.fill(&c, tag, MatchResult::Matched(3));
        assert!(evicted, "a full set must evict a live entry");
        assert_eq!(cache.stats().evictions, 1);
        let survivors = [&a, &b, &c]
            .iter()
            .filter(|p| cache.probe(p, tag).is_some())
            .count();
        assert_eq!(survivors, 2, "exactly one of the three was displaced");
    }

    #[test]
    fn serve_batch_scatters_hits_and_dense_misses_in_order() {
        let cache = HotCache::new(HotCacheConfig::new(64, 4));
        let tag = cache.allocate_generation();
        let warm = pkt(1, 1, 1, 1, 1);
        cache.fill(&warm, tag, MatchResult::Matched(10));
        let cold_a = pkt(2, 2, 2, 2, 2);
        let cold_b = pkt(3, 3, 3, 3, 3);
        let batch = [cold_a, warm, cold_b, warm];
        let mut out = vec![MatchResult::Matched(99)]; // pre-existing entry
        cache.serve_batch(tag, &batch, &mut out, |miss, fell| {
            // Only the two cold flows fall through, dense and in order.
            assert_eq!(miss, &[cold_a, cold_b]);
            fell.push(MatchResult::Matched(20));
            fell.push(MatchResult::NoMatch);
        });
        assert_eq!(
            out,
            vec![
                MatchResult::Matched(99),
                MatchResult::Matched(20),
                MatchResult::Matched(10),
                MatchResult::NoMatch,
                MatchResult::Matched(10),
            ]
        );
        // The fallthrough results were filled: everything now hits.
        let mut again = Vec::new();
        cache.serve_batch(tag, &batch, &mut again, |_, _| {
            panic!("second pass must be all hits")
        });
        assert_eq!(again, out[1..]);
    }

    #[test]
    fn cached_classifier_matches_inner_and_counts_stats() {
        let rs = small_ruleset();
        let trace: Vec<PacketHeader> = (0..200)
            .map(|i| pkt(i % 7, i % 5, i % 3, if i % 2 == 0 { 80 } else { 443 }, 6))
            .collect();
        let plain = LinearClassifier::new(rs.clone());
        let cached = CachedClassifier::new(
            LinearClassifier::new(rs.clone()),
            HotCacheConfig::new(64, 4),
        );
        assert_eq!(cached.name(), plain.name());
        for p in &trace {
            assert_eq!(cached.classify(p), plain.classify(p));
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        cached.classify_batch(&trace, &mut a);
        plain.classify_batch(&trace, &mut b);
        assert_eq!(a, b);
        let stats = cached.cache().stats();
        assert!(stats.hits > 0, "repeated flows must hit");
        assert!(cached.memory_bytes() > plain.memory_bytes());
        let mut lookup = LookupStats::new();
        cached.classify_with_stats(&trace[0], &mut lookup);
        assert_eq!(lookup.cache_hits + lookup.cache_misses, 1);
    }

    #[test]
    fn update_moves_the_wrapper_to_a_fresh_generation() {
        let rs = small_ruleset();
        let mut cached = CachedClassifier::new(updatable(&rs), HotCacheConfig::new(64, 4));
        let p = pkt(0, 0, 0, 443, 6);
        assert_eq!(cached.classify(&p), MatchResult::Matched(1));
        let before = cached.generation();
        // Delete the matched rule: the cached decision must not survive.
        cached.delete(1).unwrap();
        assert_ne!(cached.generation(), before);
        assert_eq!(cached.classify(&p), MatchResult::Matched(2));
        // A failed update does not move the generation.
        let after = cached.generation();
        assert!(cached.delete(1).is_err());
        assert_eq!(cached.generation(), after);
        assert_eq!(cached.update_stats().deletes, 1);
        assert_eq!(cached.live_rules().len(), 2);
    }

    #[test]
    fn clones_share_warm_entries_until_one_diverges() {
        let rs = small_ruleset();
        let cached = CachedClassifier::new(updatable(&rs), HotCacheConfig::new(64, 4));
        let p = pkt(0, 0, 0, 80, 6);
        cached.classify(&p);
        let mut clone = cached.clone();
        assert_eq!(clone.generation(), cached.generation());
        let hits_before = cached.cache().stats().hits;
        assert_eq!(clone.classify(&p), MatchResult::Matched(0));
        assert!(
            cached.cache().stats().hits > hits_before,
            "a clone serves the shared warm entry"
        );
        // Divergence: the mutated clone leaves the shared generation and
        // serves its own ruleset; the original keeps its warm entries.
        clone.delete(0).unwrap();
        assert_ne!(clone.generation(), cached.generation());
        assert_eq!(clone.classify(&p), MatchResult::Matched(2));
        assert_eq!(cached.classify(&p), MatchResult::Matched(0));
    }

    #[test]
    fn concurrent_probes_and_fills_never_return_torn_results() {
        // Hammer one tiny cache from several threads with flows whose
        // result word encodes their key; any torn read would surface as a
        // mismatched (key, result) pair.
        let cache = Arc::new(HotCache::new(HotCacheConfig::new(8, 2)));
        let tag = cache.allocate_generation();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for round in 0..20_000u32 {
                        let k = (round.wrapping_mul(7).wrapping_add(t)) % 64;
                        let p = pkt(k, k ^ 1, k ^ 2, k ^ 3, k ^ 4);
                        match cache.probe(&p, tag) {
                            Some(MatchResult::Matched(id)) => {
                                assert_eq!(id, k, "torn entry: key {k} result {id}")
                            }
                            Some(MatchResult::NoMatch) => panic!("never filled NoMatch"),
                            None => {
                                cache.fill(&p, tag, MatchResult::Matched(k));
                            }
                        }
                    }
                });
            }
        });
        // Misses are certain (every first probe misses); a hit is only
        // *likely* under that much eviction pressure, so pin one
        // deterministically now that the hammering threads are done.
        assert!(cache.stats().misses > 0);
        let p = pkt(1_000, 1, 2, 3, 4);
        cache.fill(&p, tag, MatchResult::Matched(1_000));
        assert_eq!(cache.probe(&p, tag), Some(MatchResult::Matched(1_000)));
        assert!(cache.stats().hits > 0);
    }
}
