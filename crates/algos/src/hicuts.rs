//! The original HiCuts algorithm (Gupta & McKeown, IEEE Micro 2000).
//!
//! HiCuts builds a decision tree by recursively cutting one dimension of the
//! covered region into `np` equal-width children.  `np` starts at 2 and
//! doubles while the space-measure condition of Eq. 1 of the paper holds:
//!
//! ```text
//! spfac * rules(node)  >=  sum(rules(child) for child) + np
//! ```
//!
//! The dimension to cut is the one whose cut leaves the smallest *maximum*
//! number of rules in any child.  Recursion stops when a node holds at most
//! `binth` rules.
//!
//! This is the *software* baseline the paper measures on the StrongARM
//! SA-1100; the hardware-oriented modified variant (cuts start at 32 and are
//! capped at 256) lives in `pclass-core`.

use crate::counters::{BuildStats, LookupStats};
use crate::dtree::{CutSpec, DecisionTree, Node, NodeId, NodeKind};
use crate::Classifier;
use pclass_types::{
    Dimension, FieldRange, MatchResult, PacketHeader, Rule, RuleId, RuleSet, FIELD_COUNT,
};

/// Safety limit on tree depth; real trees stay far below this.
const MAX_DEPTH: u32 = 64;
/// Upper bound on the number of cuts a software node may perform; prevents
/// pathological memory explosion on adversarial inputs.
const MAX_CUTS: u32 = 1 << 16;

/// Configuration of the original HiCuts builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiCutsConfig {
    /// Maximum number of rules a leaf may hold.
    pub binth: usize,
    /// Space factor of Eq. 1 (the paper's evaluation uses `spfac = 4`).
    pub spfac: f64,
}

impl HiCutsConfig {
    /// The parameters used throughout the paper's evaluation tables.
    pub fn paper_defaults() -> HiCutsConfig {
        HiCutsConfig {
            binth: 16,
            spfac: 4.0,
        }
    }

    /// The parameters of the worked example of Figures 1 and 2
    /// (Table 1 ruleset, `binth = 3`).
    pub fn figure1() -> HiCutsConfig {
        HiCutsConfig {
            binth: 3,
            spfac: 2.0,
        }
    }
}

impl Default for HiCutsConfig {
    fn default() -> Self {
        HiCutsConfig::paper_defaults()
    }
}

/// A packet classifier backed by an original-HiCuts decision tree.
#[derive(Debug, Clone)]
pub struct HiCutsClassifier {
    tree: DecisionTree,
    config: HiCutsConfig,
    build_stats: BuildStats,
}

impl HiCutsClassifier {
    /// Builds the decision tree for a ruleset.
    pub fn build(ruleset: &RuleSet, config: &HiCutsConfig) -> HiCutsClassifier {
        assert!(config.binth >= 1, "binth must be at least 1");
        assert!(config.spfac > 0.0, "spfac must be positive");
        let mut builder = Builder {
            rules: ruleset.rules(),
            config: *config,
            nodes: Vec::new(),
            stats: BuildStats::new(),
            empty_leaf: None,
        };
        let all_rules: Vec<RuleId> = (0..ruleset.len() as RuleId).collect();
        let root = builder.build_node(ruleset.full_region(), all_rules, 0);
        let stats = builder.stats;
        let tree = DecisionTree::new(ruleset, builder.nodes, root);
        HiCutsClassifier {
            tree,
            config: *config,
            build_stats: stats,
        }
    }

    /// The decision tree (for dumps, encoders and diagnostics).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The builder configuration.
    pub fn config(&self) -> &HiCutsConfig {
        &self.config
    }

    /// Work performed while building the tree (drives Table 3's software
    /// build-energy figures).
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }
}

impl Classifier for HiCutsClassifier {
    fn name(&self) -> &'static str {
        "hicuts"
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.tree.classify(pkt, None)
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        self.tree.classify(pkt, Some(stats))
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.tree.stats().worst_case_accesses)
    }
}

impl crate::update::UpdatableClassifier for HiCutsClassifier {
    fn insert(&mut self, rule: Rule) -> Result<(), crate::update::UpdateError> {
        self.tree.insert(rule)
    }

    fn delete(&mut self, rule_id: RuleId) -> Result<(), crate::update::UpdateError> {
        self.tree.delete(rule_id)
    }

    fn live_rules(&self) -> Vec<Rule> {
        self.tree.live_rules()
    }

    fn spec(&self) -> pclass_types::DimensionSpec {
        *self.tree.spec()
    }

    fn update_stats(&self) -> pclass_types::UpdateStats {
        self.tree.update_stats()
    }
}

/// Internal builder state.
struct Builder<'a> {
    rules: &'a [Rule],
    config: HiCutsConfig,
    nodes: Vec<Node>,
    stats: BuildStats,
    empty_leaf: Option<NodeId>,
}

impl<'a> Builder<'a> {
    fn build_node(
        &mut self,
        region: [FieldRange; FIELD_COUNT],
        rules: Vec<RuleId>,
        depth: u32,
    ) -> NodeId {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if rules.len() <= self.config.binth || depth >= MAX_DEPTH {
            return self.make_leaf(region, rules, depth);
        }

        // Evaluate each cuttable dimension: pick np by the doubling rule of
        // Eq. 1, remember the resulting worst child occupancy.
        let mut best: Option<(Dimension, u32, usize)> = None; // (dim, np, max_child_rules)
        for d in Dimension::ALL {
            let r = region[d.index()];
            if r.len() < 2 {
                continue;
            }
            let np = self.choose_np(&rules, r, d);
            let (max_child, _total) = self.distribution(&rules, r, d, np);
            let better = match best {
                None => true,
                Some((_, _, best_max)) => max_child < best_max,
            };
            if better {
                best = Some((d, np, max_child));
            }
        }

        let (dim, np, max_child) = match best {
            Some(b) => b,
            None => return self.make_leaf(region, rules, depth), // nothing left to cut
        };
        // Cutting made no progress: every child would hold the same rules as
        // the parent, so stop here (oversized leaf) rather than recurse
        // forever.
        if max_child >= rules.len() {
            return self.make_leaf(region, rules, depth);
        }

        // Reserve the node slot before the children so the root keeps id 0.
        let node_id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            region,
            depth,
            kind: NodeKind::Leaf { rules: vec![] },
        });
        self.stats.internal_nodes += 1;
        self.stats.ops.stores += 4;

        let cuts = CutSpec::single(dim, np);
        let mut children: Vec<NodeId> = Vec::with_capacity(np as usize);
        // Merge children that hold identical rule sets — HiCuts' standard
        // storage optimisation, which the paper keeps.  Sharing is restricted
        // to children that become leaves: a leaf search does not depend on
        // the child's covered region, whereas sharing an internal subtree
        // between two different regions would route packets from the second
        // region through cuts computed for the first.
        let mut merged: Vec<(Vec<RuleId>, NodeId)> = Vec::new();
        for i in 0..u64::from(np) {
            let child_region = cuts.child_region(&region, i);
            let child_rules = self.collect_rules(&rules, &child_region);
            if child_rules.is_empty() {
                children.push(self.empty_leaf(depth + 1));
                continue;
            }
            let leaf_bound = child_rules.len() <= self.config.binth;
            if leaf_bound {
                if let Some((_, existing)) = merged.iter().find(|(r, _)| *r == child_rules) {
                    children.push(*existing);
                    continue;
                }
            }
            let child_id = self.build_node(child_region, child_rules.clone(), depth + 1);
            if leaf_bound {
                merged.push((child_rules, child_id));
            }
            children.push(child_id);
        }

        self.nodes[node_id as usize] = Node {
            region,
            depth,
            kind: NodeKind::Internal {
                cuts,
                children,
                stored_rules: vec![],
                cut_region: region,
            },
        };
        node_id
    }

    fn make_leaf(
        &mut self,
        region: [FieldRange; FIELD_COUNT],
        rules: Vec<RuleId>,
        depth: u32,
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.stats.leaf_nodes += 1;
        self.stats.stored_rule_refs += rules.len() as u64;
        self.stats.ops.stores += 2 + rules.len() as u64;
        self.nodes.push(Node {
            region,
            depth,
            kind: NodeKind::Leaf { rules },
        });
        id
    }

    fn empty_leaf(&mut self, depth: u32) -> NodeId {
        if let Some(id) = self.empty_leaf {
            return id;
        }
        let id = self.make_leaf([FieldRange::exact(0); FIELD_COUNT], vec![], depth);
        self.empty_leaf = Some(id);
        id
    }

    /// Chooses the number of cuts along `dim` by the Eq. 1 doubling rule.
    fn choose_np(&mut self, rules: &[RuleId], r: FieldRange, dim: Dimension) -> u32 {
        let n = rules.len() as f64;
        let budget = self.config.spfac * n;
        let max_np = u64::from(MAX_CUTS).min(r.len()) as u32;
        let mut np = 2u32.min(max_np);
        loop {
            let candidate = np.saturating_mul(2);
            if candidate > max_np {
                break;
            }
            let (_, total) = self.distribution(rules, r, dim, candidate);
            if total as f64 + f64::from(candidate) <= budget {
                np = candidate;
            } else {
                break;
            }
        }
        np
    }

    /// For `np` cuts of `r` along `dim`, returns the maximum number of rules
    /// in any child and the total number of child rule references.
    ///
    /// Uses a difference array so the cost is O(rules + np), which the
    /// builder charges to the build-operation counters.
    fn distribution(
        &mut self,
        rules: &[RuleId],
        r: FieldRange,
        dim: Dimension,
        np: u32,
    ) -> (usize, u64) {
        let mut diff = vec![0i64; np as usize + 1];
        let mut total: u64 = 0;
        for &id in rules {
            let rule = &self.rules[id as usize];
            let rr = rule.range(dim);
            let lo = rr.lo.max(r.lo);
            let hi = rr.hi.min(r.hi);
            if lo > hi {
                continue; // rule does not overlap this dimension slice
            }
            let a = r.index_of(np, lo);
            let b = r.index_of(np, hi);
            diff[a as usize] += 1;
            diff[b as usize + 1] -= 1;
            total += u64::from(b - a + 1);
        }
        let mut max = 0i64;
        let mut acc = 0i64;
        for v in &diff[..np as usize] {
            acc += v;
            max = max.max(acc);
        }
        // Operation accounting: one pass over the rules plus one over the
        // histogram, a handful of ALU ops each.
        self.stats.cut_evaluations += rules.len() as u64;
        self.stats.ops.loads += rules.len() as u64 * 2 + u64::from(np);
        self.stats.ops.alu += rules.len() as u64 * 6 + u64::from(np) * 2;
        self.stats.ops.branches += rules.len() as u64 * 2;
        self.stats.ops.divs += rules.len() as u64 * 2; // the two index_of divisions
        (max as usize, total)
    }

    /// Rules (by id, ascending) that intersect `region`.
    fn collect_rules(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
    ) -> Vec<RuleId> {
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64 * 2;
        self.stats.ops.branches += rules.len() as u64;
        let out: Vec<RuleId> = rules
            .iter()
            .copied()
            .filter(|&id| self.rules[id as usize].intersects_region(region))
            .collect();
        self.stats.ops.stores += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::toy;

    fn toy_classifier(binth: usize, spfac: f64) -> HiCutsClassifier {
        let rs = toy::table1_ruleset();
        HiCutsClassifier::build(&rs, &HiCutsConfig { binth, spfac })
    }

    #[test]
    fn agrees_with_linear_search_on_toy_ruleset() {
        let rs = toy::table1_ruleset();
        let hc = toy_classifier(3, 2.0);
        for f0 in (0..=255u32).step_by(3) {
            for f4 in (0..=255u32).step_by(5) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(hc.classify(&pkt), rs.classify_linear(&pkt), "pkt {pkt:?}");
                let pkt = PacketHeader::from_fields([f0, 60, 0, 255, f4]);
                assert_eq!(hc.classify(&pkt), rs.classify_linear(&pkt), "pkt {pkt:?}");
            }
        }
    }

    #[test]
    fn figure1_tree_shape() {
        // Figure 1 of the paper: with binth = 3 the root of the Table 1 tree
        // is cut along Field 0 and the tree stays very shallow.
        let hc = toy_classifier(3, 2.0);
        let stats = hc.tree().stats();
        assert!(stats.max_depth <= 3, "tree too deep: {stats:?}");
        assert!(stats.max_leaf_rules <= 3, "leaf exceeds binth: {stats:?}");
        let dump = hc.tree().dump();
        assert!(
            dump.starts_with("node cut[src_ip"),
            "root cut is not field 0: {dump}"
        );
    }

    #[test]
    fn respects_binth_when_cutting_helps() {
        let hc = toy_classifier(3, 4.0);
        assert!(hc.tree().stats().max_leaf_rules <= 3);
        let hc = toy_classifier(1, 8.0);
        // With binth = 1 some leaves may legitimately hold more than one rule
        // when rules overlap exactly; the tree must still classify correctly.
        let rs = toy::table1_ruleset();
        for f0 in (0..=255u32).step_by(11) {
            let pkt = PacketHeader::from_fields([f0, 15, 40, 180, 130]);
            assert_eq!(hc.classify(&pkt), rs.classify_linear(&pkt));
        }
    }

    #[test]
    fn build_stats_are_populated() {
        let hc = toy_classifier(3, 2.0);
        let bs = hc.build_stats();
        assert!(bs.internal_nodes >= 1);
        assert!(bs.leaf_nodes >= 2);
        assert!(bs.cut_evaluations > 0);
        assert!(bs.ops.total_ops() > 0);
        assert!(bs.max_depth >= 1);
    }

    #[test]
    fn lookup_stats_reflect_tree_walk() {
        let hc = toy_classifier(3, 2.0);
        let mut stats = LookupStats::new();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        assert_eq!(
            hc.classify_with_stats(&pkt, &mut stats),
            MatchResult::Matched(5)
        );
        assert!(stats.nodes_visited >= 1);
        assert!(stats.memory_accesses >= 2);
    }

    #[test]
    fn memory_and_worst_case_reported() {
        let hc = toy_classifier(3, 2.0);
        assert!(hc.memory_bytes() > 0);
        assert!(hc.worst_case_memory_accesses().unwrap() >= 2);
        assert_eq!(hc.name(), "hicuts");
        assert_eq!(hc.config().binth, 3);
    }

    #[test]
    fn single_rule_ruleset_is_one_leaf() {
        let rs = toy::table1_ruleset().truncated(1, "one");
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
        let stats = hc.tree().stats();
        assert_eq!(stats.internal_nodes, 0);
        assert_eq!(stats.leaf_nodes, 1);
        let pkt = PacketHeader::from_fields([130, 15, 40, 180, 130]);
        assert_eq!(hc.classify(&pkt), rs.classify_linear(&pkt));
    }

    #[test]
    fn empty_ruleset_never_matches() {
        let rs =
            pclass_types::RuleSet::new("empty", *toy::table1_ruleset().spec(), vec![]).unwrap();
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::paper_defaults());
        let pkt = PacketHeader::from_fields([1, 2, 3, 4, 5]);
        assert_eq!(hc.classify(&pkt), MatchResult::NoMatch);
    }

    #[test]
    #[should_panic]
    fn zero_binth_rejected() {
        let rs = toy::table1_ruleset();
        HiCutsClassifier::build(
            &rs,
            &HiCutsConfig {
                binth: 0,
                spfac: 4.0,
            },
        );
    }
}
