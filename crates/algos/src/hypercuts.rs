//! The original HyperCuts algorithm (Singh, Baboescu, Varghese & Wang,
//! SIGCOMM 2003).
//!
//! HyperCuts generalises HiCuts by cutting *several* dimensions of a node at
//! once.  Candidate dimensions are those whose number of distinct range
//! specifications is at least the mean over all five dimensions; the number
//! of children is bounded by the space measure of Eq. 2 of the paper:
//!
//! ```text
//! children(node)  <=  spfac * sqrt(rules(node))
//! ```
//!
//! Among the allowed cut combinations the builder picks the one that leaves
//! the smallest maximum number of rules in any child (the interpretation the
//! paper adopts, since the original publication leaves the choice open).
//!
//! Two storage heuristics of the original algorithm are implemented and on by
//! default — they are exactly the ones the paper removes in its
//! hardware-oriented variant:
//!
//! * **region compaction** — a node's cuts are applied to the bounding box of
//!   its rules instead of its full covered region;
//! * **pushing common rule subsets upwards** — rules present in every child
//!   are stored once at the parent and searched while traversing.

use crate::counters::{BuildStats, LookupStats};
use crate::dtree::{CutSpec, DecisionTree, Node, NodeId, NodeKind};
use crate::Classifier;
use pclass_types::{
    Dimension, FieldRange, MatchResult, PacketHeader, Rule, RuleId, RuleSet, FIELD_COUNT,
};
use std::collections::HashSet;

/// Safety limit on tree depth.
const MAX_DEPTH: u32 = 64;

/// Configuration of the original HyperCuts builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperCutsConfig {
    /// Maximum number of rules a leaf may hold.
    pub binth: usize,
    /// Space factor of Eq. 2 (the paper's evaluation uses `spfac = 4`).
    pub spfac: f64,
    /// Apply the region-compaction heuristic.
    pub region_compaction: bool,
    /// Apply the push-common-rule-subsets-upwards heuristic.
    pub push_common_rules: bool,
}

impl HyperCutsConfig {
    /// The parameters used throughout the paper's evaluation tables, with
    /// both original heuristics enabled (this is the "Software HyperCuts"
    /// column of Tables 2, 3, 6 and 7).
    pub fn paper_defaults() -> HyperCutsConfig {
        HyperCutsConfig {
            binth: 16,
            spfac: 4.0,
            region_compaction: true,
            push_common_rules: true,
        }
    }

    /// The parameters of the worked example of Figure 3
    /// (Table 1 ruleset, `binth = 3`).
    pub fn figure3() -> HyperCutsConfig {
        HyperCutsConfig {
            binth: 3,
            spfac: 2.0,
            region_compaction: false,
            push_common_rules: false,
        }
    }
}

impl Default for HyperCutsConfig {
    fn default() -> Self {
        HyperCutsConfig::paper_defaults()
    }
}

/// A packet classifier backed by an original-HyperCuts decision tree.
#[derive(Debug, Clone)]
pub struct HyperCutsClassifier {
    tree: DecisionTree,
    config: HyperCutsConfig,
    build_stats: BuildStats,
}

impl HyperCutsClassifier {
    /// Builds the decision tree for a ruleset.
    pub fn build(ruleset: &RuleSet, config: &HyperCutsConfig) -> HyperCutsClassifier {
        assert!(config.binth >= 1, "binth must be at least 1");
        assert!(config.spfac > 0.0, "spfac must be positive");
        let mut builder = Builder {
            rules: ruleset.rules(),
            config: *config,
            nodes: Vec::new(),
            stats: BuildStats::new(),
            empty_leaf: None,
        };
        let all_rules: Vec<RuleId> = (0..ruleset.len() as RuleId).collect();
        let root = builder.build_node(ruleset.full_region(), all_rules, 0);
        let stats = builder.stats;
        let tree = DecisionTree::new(ruleset, builder.nodes, root);
        HyperCutsClassifier {
            tree,
            config: *config,
            build_stats: stats,
        }
    }

    /// The decision tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// The builder configuration.
    pub fn config(&self) -> &HyperCutsConfig {
        &self.config
    }

    /// Work performed while building the tree.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }
}

impl Classifier for HyperCutsClassifier {
    fn name(&self) -> &'static str {
        "hypercuts"
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.tree.classify(pkt, None)
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        self.tree.classify(pkt, Some(stats))
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.tree.stats().worst_case_accesses)
    }
}

impl crate::update::UpdatableClassifier for HyperCutsClassifier {
    fn insert(&mut self, rule: Rule) -> Result<(), crate::update::UpdateError> {
        self.tree.insert(rule)
    }

    fn delete(&mut self, rule_id: RuleId) -> Result<(), crate::update::UpdateError> {
        self.tree.delete(rule_id)
    }

    fn live_rules(&self) -> Vec<Rule> {
        self.tree.live_rules()
    }

    fn spec(&self) -> pclass_types::DimensionSpec {
        *self.tree.spec()
    }

    fn update_stats(&self) -> pclass_types::UpdateStats {
        self.tree.update_stats()
    }
}

struct Builder<'a> {
    rules: &'a [Rule],
    config: HyperCutsConfig,
    nodes: Vec<Node>,
    stats: BuildStats,
    empty_leaf: Option<NodeId>,
}

impl<'a> Builder<'a> {
    fn build_node(
        &mut self,
        region: [FieldRange; FIELD_COUNT],
        rules: Vec<RuleId>,
        depth: u32,
    ) -> NodeId {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if rules.len() <= self.config.binth || depth >= MAX_DEPTH {
            return self.make_leaf(region, rules, depth);
        }

        // Region compaction: cut the bounding box of the rules, not the full
        // covered region.
        let cut_region = if self.config.region_compaction {
            self.compact_region(&region, &rules)
        } else {
            region
        };

        // Candidate dimensions: distinct range count >= mean (Eq. in §2.2).
        let candidates = self.candidate_dimensions(&rules, &cut_region);
        if candidates.is_empty() {
            return self.make_leaf(region, rules, depth);
        }

        // Greedy combination search under the Eq. 2 child budget.
        let budget = (self.config.spfac * (rules.len() as f64).sqrt())
            .floor()
            .max(2.0) as u64;
        let cuts = self.choose_cuts(&rules, &cut_region, &candidates, budget);
        if cuts.child_count() <= 1 {
            return self.make_leaf(region, rules, depth);
        }
        let max_child = self.max_child_occupancy(&rules, &cut_region, &cuts);
        if max_child >= rules.len() {
            return self.make_leaf(region, rules, depth);
        }

        let node_id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            region,
            depth,
            kind: NodeKind::Leaf { rules: vec![] },
        });
        self.stats.internal_nodes += 1;
        self.stats.ops.stores += 6;

        // Distribute the rules to the children.
        let child_count = cuts.child_count();
        let mut child_rules: Vec<Vec<RuleId>> = vec![Vec::new(); child_count as usize];
        for i in 0..child_count {
            let child_region = cuts.child_region(&cut_region, i);
            child_rules[i as usize] = self.collect_rules(&rules, &child_region);
        }

        // Push rules common to all (non-empty consideration: the heuristic of
        // the original paper applies to all children of the node).
        let mut stored_rules: Vec<RuleId> = Vec::new();
        if self.config.push_common_rules && child_count > 1 {
            let mut common: HashSet<RuleId> = child_rules[0].iter().copied().collect();
            for list in child_rules.iter().skip(1) {
                let set: HashSet<RuleId> = list.iter().copied().collect();
                common = common.intersection(&set).copied().collect();
                if common.is_empty() {
                    break;
                }
            }
            if !common.is_empty() {
                stored_rules = common.into_iter().collect();
                stored_rules.sort_unstable();
                for list in child_rules.iter_mut() {
                    list.retain(|id| !stored_rules.contains(id));
                }
                self.stats.stored_rule_refs += stored_rules.len() as u64;
                self.stats.ops.stores += stored_rules.len() as u64;
            }
        }

        // Recurse, merging identical children and sharing one empty leaf.
        // As in the HiCuts builder, only leaf-bound children are shared:
        // a leaf search does not depend on the child's covered region.
        let mut children: Vec<NodeId> = Vec::with_capacity(child_count as usize);
        let mut merged: Vec<(Vec<RuleId>, NodeId)> = Vec::new();
        for i in 0..child_count {
            let list = std::mem::take(&mut child_rules[i as usize]);
            if list.is_empty() {
                children.push(self.empty_leaf(depth + 1));
                continue;
            }
            let leaf_bound = list.len() <= self.config.binth;
            if leaf_bound {
                if let Some((_, existing)) = merged.iter().find(|(r, _)| *r == list) {
                    children.push(*existing);
                    continue;
                }
            }
            let child_region = cuts.child_region(&cut_region, i);
            let child_id = self.build_node(child_region, list.clone(), depth + 1);
            if leaf_bound {
                merged.push((list, child_id));
            }
            children.push(child_id);
        }

        self.nodes[node_id as usize] = Node {
            region,
            depth,
            kind: NodeKind::Internal {
                cuts,
                children,
                stored_rules,
                cut_region,
            },
        };
        node_id
    }

    fn make_leaf(
        &mut self,
        region: [FieldRange; FIELD_COUNT],
        rules: Vec<RuleId>,
        depth: u32,
    ) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.stats.leaf_nodes += 1;
        self.stats.stored_rule_refs += rules.len() as u64;
        self.stats.ops.stores += 2 + rules.len() as u64;
        self.nodes.push(Node {
            region,
            depth,
            kind: NodeKind::Leaf { rules },
        });
        id
    }

    fn empty_leaf(&mut self, depth: u32) -> NodeId {
        if let Some(id) = self.empty_leaf {
            return id;
        }
        let id = self.make_leaf([FieldRange::exact(0); FIELD_COUNT], vec![], depth);
        self.empty_leaf = Some(id);
        id
    }

    /// Bounding box of the rules, clipped to the node's region.
    fn compact_region(
        &mut self,
        region: &[FieldRange; FIELD_COUNT],
        rules: &[RuleId],
    ) -> [FieldRange; FIELD_COUNT] {
        let mut out = *region;
        for d in Dimension::ALL {
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for &id in rules {
                let r = self.rules[id as usize].range(d);
                lo = lo.min(r.lo.max(region[d.index()].lo));
                hi = hi.max(r.hi.min(region[d.index()].hi));
            }
            if lo <= hi {
                out[d.index()] = FieldRange::new(lo, hi);
            }
        }
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64 * 2;
        out
    }

    /// Dimensions whose number of distinct range specifications among the
    /// node's rules is at least the mean over all dimensions, restricted to
    /// dimensions that can still be cut.
    fn candidate_dimensions(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
    ) -> Vec<Dimension> {
        let mut counts = [0usize; FIELD_COUNT];
        for d in Dimension::ALL {
            let mut distinct: HashSet<FieldRange> = HashSet::with_capacity(rules.len());
            for &id in rules {
                distinct.insert(self.rules[id as usize].range(d));
            }
            counts[d.index()] = distinct.len();
        }
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64;
        let mean = counts.iter().sum::<usize>() as f64 / FIELD_COUNT as f64;
        Dimension::ALL
            .iter()
            .copied()
            .filter(|d| counts[d.index()] as f64 >= mean && region[d.index()].len() >= 2)
            .collect()
    }

    /// Greedy combination search: repeatedly double the cut count of the
    /// candidate dimension that most reduces the worst child occupancy, while
    /// the total child count stays within `budget`.
    fn choose_cuts(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        candidates: &[Dimension],
        budget: u64,
    ) -> CutSpec {
        let mut cuts = CutSpec::unit();
        let mut current_max = rules.len();
        loop {
            let mut best: Option<(Dimension, usize)> = None;
            for &d in candidates {
                let parts = cuts.parts[d.index()];
                let doubled = u64::from(parts) * 2;
                if doubled > region[d.index()].len() {
                    continue;
                }
                if cuts.child_count() / u64::from(parts) * doubled > budget {
                    continue;
                }
                let mut trial = cuts.clone();
                trial.parts[d.index()] = parts * 2;
                let max_child = self.max_child_occupancy(rules, region, &trial);
                if best.is_none_or(|(_, m)| max_child < m) {
                    best = Some((d, max_child));
                }
            }
            match best {
                Some((d, max_child)) if max_child < current_max || cuts.child_count() == 1 => {
                    cuts.parts[d.index()] *= 2;
                    current_max = max_child;
                }
                _ => break,
            }
        }
        cuts
    }

    /// Maximum number of rules any child of `cuts` over `region` would hold.
    ///
    /// Uses a multi-dimensional difference array (inclusion–exclusion over
    /// the corners of each rule's child-index box) followed by a prefix sum,
    /// so the cost is O(rules · 2^dims + children · dims).
    fn max_child_occupancy(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        cuts: &CutSpec,
    ) -> usize {
        let dims = cuts.cut_dimensions();
        if dims.is_empty() {
            return rules.len();
        }
        let shape: Vec<u32> = dims.iter().map(|d| cuts.parts[d.index()]).collect();
        let total: usize = shape.iter().map(|&p| p as usize).product();
        let mut diff = vec![0i64; total + 1];

        // Strides for row-major indexing over the cut dimensions.
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1] as usize;
        }

        let mut skipped = 0usize;
        for &id in rules {
            let rule = &self.rules[id as usize];
            // Child-index box of the rule in each cut dimension.
            let mut lo_idx = vec![0u32; dims.len()];
            let mut hi_idx = vec![0u32; dims.len()];
            let mut outside = false;
            for (k, &d) in dims.iter().enumerate() {
                let reg = region[d.index()];
                let rr = rule.range(d);
                let lo = rr.lo.max(reg.lo);
                let hi = rr.hi.min(reg.hi);
                if lo > hi {
                    outside = true;
                    break;
                }
                lo_idx[k] = reg.index_of(shape[k], lo);
                hi_idx[k] = reg.index_of(shape[k], hi);
            }
            if outside {
                skipped += 1;
                continue;
            }
            // Inclusion–exclusion: add (-1)^popcount at each corner.
            let corners = 1usize << dims.len();
            for corner in 0..corners {
                let mut index = 0usize;
                let mut oob = false;
                for k in 0..dims.len() {
                    let coord = if corner & (1 << k) == 0 {
                        lo_idx[k] as usize
                    } else {
                        hi_idx[k] as usize + 1
                    };
                    if coord >= shape[k] as usize {
                        if corner & (1 << k) != 0 {
                            oob = true;
                            break;
                        }
                        unreachable!("lo index within shape");
                    }
                    index += coord * strides[k];
                }
                let sign = if (corner.count_ones() % 2) == 0 {
                    1i64
                } else {
                    -1i64
                };
                if oob {
                    // Corner falls off the high end: accumulate in the
                    // overflow slot so the prefix sum stays balanced only for
                    // in-range cells; equivalently we can simply skip it
                    // because cells beyond the grid are never read.
                    continue;
                }
                diff[index] += sign;
            }
        }
        let _ = skipped;

        // Multi-dimensional prefix sum, one axis at a time.
        for (k, &_d) in dims.iter().enumerate() {
            let stride = strides[k];
            let extent = shape[k] as usize;
            for base in 0..total {
                // Only accumulate along axis k: skip cells in the first slab.
                let coord = (base / stride) % extent;
                if coord == 0 {
                    continue;
                }
                diff[base] += diff[base - stride];
            }
        }

        self.stats.cut_evaluations += rules.len() as u64;
        self.stats.ops.loads += rules.len() as u64 * 4 + total as u64;
        self.stats.ops.alu += rules.len() as u64 * (8 + (1u64 << dims.len())) + total as u64 * 2;
        self.stats.ops.branches += rules.len() as u64 * 2;
        self.stats.ops.divs += rules.len() as u64 * dims.len() as u64 * 2;

        diff[..total].iter().copied().max().unwrap_or(0).max(0) as usize
    }

    fn collect_rules(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
    ) -> Vec<RuleId> {
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64 * 2;
        self.stats.ops.branches += rules.len() as u64;
        let out: Vec<RuleId> = rules
            .iter()
            .copied()
            .filter(|&id| self.rules[id as usize].intersects_region(region))
            .collect();
        self.stats.ops.stores += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::toy;

    fn toy_classifier(config: HyperCutsConfig) -> HyperCutsClassifier {
        HyperCutsClassifier::build(&toy::table1_ruleset(), &config)
    }

    fn assert_agrees_with_linear(hc: &HyperCutsClassifier) {
        let rs = toy::table1_ruleset();
        for f0 in (0..=255u32).step_by(5) {
            for f4 in (0..=255u32).step_by(7) {
                for (f1, f2, f3) in [(15, 40, 180), (80, 0, 255), (100, 200, 195), (60, 60, 0)] {
                    let pkt = PacketHeader::from_fields([f0, f1, f2, f3, f4]);
                    assert_eq!(hc.classify(&pkt), rs.classify_linear(&pkt), "pkt {pkt:?}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_linear_search_figure3_config() {
        assert_agrees_with_linear(&toy_classifier(HyperCutsConfig::figure3()));
    }

    #[test]
    fn agrees_with_linear_search_with_all_heuristics() {
        let mut config = HyperCutsConfig::paper_defaults();
        config.binth = 3;
        assert_agrees_with_linear(&toy_classifier(config));
    }

    #[test]
    fn agrees_with_linear_search_compaction_only() {
        let config = HyperCutsConfig {
            binth: 3,
            spfac: 2.0,
            region_compaction: true,
            push_common_rules: false,
        };
        assert_agrees_with_linear(&toy_classifier(config));
    }

    #[test]
    fn agrees_with_linear_search_push_common_only() {
        let config = HyperCutsConfig {
            binth: 2,
            spfac: 3.0,
            region_compaction: false,
            push_common_rules: true,
        };
        assert_agrees_with_linear(&toy_classifier(config));
    }

    #[test]
    fn figure3_tree_is_shallow_and_multi_dimensional() {
        // Figure 3: the root is split in 4 by cutting Field 0 and Field 4
        // simultaneously and no child exceeds binth = 3.
        let hc = toy_classifier(HyperCutsConfig::figure3());
        let stats = hc.tree().stats();
        assert!(stats.max_depth <= 2, "deeper than the figure: {stats:?}");
        assert!(stats.max_leaf_rules <= 3);
        // The root must cut more than one dimension at once (that is the
        // defining feature of HyperCuts on this example).
        let dump = hc.tree().dump();
        let first_line = dump.lines().next().unwrap();
        assert!(
            first_line.matches(" x").count() >= 2,
            "root does not cut multiple dimensions: {first_line}"
        );
    }

    #[test]
    fn hypercuts_tree_is_flatter_than_hicuts() {
        use crate::hicuts::{HiCutsClassifier, HiCutsConfig};
        let rs = toy::table1_ruleset();
        let hyper = HyperCutsClassifier::build(&rs, &HyperCutsConfig::figure3());
        let hi = HiCutsClassifier::build(&rs, &HiCutsConfig::figure1());
        assert!(hyper.tree().stats().max_depth <= hi.tree().stats().max_depth);
    }

    #[test]
    fn push_common_rules_reduces_stored_refs() {
        let rs = toy::table1_ruleset();
        let with = HyperCutsClassifier::build(
            &rs,
            &HyperCutsConfig {
                binth: 1,
                spfac: 4.0,
                region_compaction: false,
                push_common_rules: true,
            },
        );
        let without = HyperCutsClassifier::build(
            &rs,
            &HyperCutsConfig {
                binth: 1,
                spfac: 4.0,
                region_compaction: false,
                push_common_rules: false,
            },
        );
        assert!(with.tree().stats().stored_rule_refs <= without.tree().stats().stored_rule_refs);
    }

    #[test]
    fn build_and_lookup_stats_populated() {
        let hc = toy_classifier(HyperCutsConfig::figure3());
        assert!(hc.build_stats().cut_evaluations > 0);
        assert!(hc.build_stats().internal_nodes >= 1);
        let mut stats = LookupStats::new();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        assert_eq!(
            hc.classify_with_stats(&pkt, &mut stats),
            MatchResult::Matched(5)
        );
        assert!(stats.memory_accesses >= 2);
        assert_eq!(hc.name(), "hypercuts");
        assert!(hc.memory_bytes() > 0);
        assert!(hc.worst_case_memory_accesses().is_some());
        assert!(hc.config().binth == 3);
    }

    #[test]
    fn empty_and_single_rule_sets() {
        let spec = *toy::table1_ruleset().spec();
        let empty = pclass_types::RuleSet::new("empty", spec, vec![]).unwrap();
        let hc = HyperCutsClassifier::build(&empty, &HyperCutsConfig::paper_defaults());
        assert_eq!(
            hc.classify(&PacketHeader::from_fields([1, 2, 3, 4, 5])),
            MatchResult::NoMatch
        );

        let one = toy::table1_ruleset().truncated(1, "one");
        let hc = HyperCutsClassifier::build(&one, &HyperCutsConfig::paper_defaults());
        let stats = hc.tree().stats();
        assert_eq!(stats.internal_nodes, 0);
        assert_eq!(stats.leaf_nodes, 1);
    }
}
