//! Priority-ordered linear search — the correctness reference baseline.

use crate::counters::LookupStats;
use crate::Classifier;
use pclass_types::{MatchResult, PacketHeader, RuleSet};

/// A classifier that scans the ruleset in priority order for every packet.
///
/// Linear search is the slowest but simplest classifier; every other
/// implementation in the workspace is validated against it, and it provides a
/// lower bound for the software throughput comparison of Table 7.
#[derive(Debug, Clone)]
pub struct LinearClassifier {
    ruleset: RuleSet,
}

impl LinearClassifier {
    /// Wraps a ruleset.
    pub fn new(ruleset: RuleSet) -> LinearClassifier {
        LinearClassifier { ruleset }
    }

    /// The wrapped ruleset.
    pub fn ruleset(&self) -> &RuleSet {
        &self.ruleset
    }
}

impl Classifier for LinearClassifier {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.ruleset.classify_linear(pkt)
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        for rule in self.ruleset.rules() {
            stats.rules_compared += 1;
            stats.memory_accesses += 1;
            stats.ops.loads += 5;
            stats.ops.alu += 10;
            stats.ops.branches += 5;
            if rule.matches(pkt) {
                return MatchResult::Matched(rule.id);
            }
        }
        MatchResult::NoMatch
    }

    fn memory_bytes(&self) -> usize {
        // The ruleset stored once, 18 bytes per rule (same constant as the
        // tree memory model so the comparison is apples-to-apples).
        self.ruleset.len() * crate::dtree::MemoryModel::RULE_BYTES
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.ruleset.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::toy;

    #[test]
    fn matches_ruleset_reference() {
        let rs = toy::table1_ruleset();
        let lin = LinearClassifier::new(rs.clone());
        for f0 in (0..=255u32).step_by(9) {
            let pkt = PacketHeader::from_fields([f0, 80, 40, 180, 100]);
            assert_eq!(lin.classify(&pkt), rs.classify_linear(&pkt));
        }
        assert_eq!(lin.name(), "linear");
        assert_eq!(lin.ruleset().len(), 10);
    }

    #[test]
    fn stats_count_scanned_rules() {
        let rs = toy::table1_ruleset();
        let lin = LinearClassifier::new(rs);
        let mut stats = LookupStats::new();
        // This packet matches nothing, so all 10 rules are scanned.
        let pkt = PacketHeader::from_fields([0, 0, 0, 0, 255]);
        assert_eq!(
            lin.classify_with_stats(&pkt, &mut stats),
            MatchResult::NoMatch
        );
        assert_eq!(stats.rules_compared, 10);
        assert_eq!(stats.memory_accesses, 10);
        // This one matches R5, so the scan stops there.
        let mut stats = LookupStats::new();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        assert_eq!(
            lin.classify_with_stats(&pkt, &mut stats),
            MatchResult::Matched(5)
        );
        assert_eq!(stats.rules_compared, 6);
    }

    #[test]
    fn memory_and_worst_case() {
        let rs = toy::table1_ruleset();
        let lin = LinearClassifier::new(rs);
        assert_eq!(lin.memory_bytes(), 180);
        assert_eq!(lin.worst_case_memory_accesses(), Some(10));
    }
}
