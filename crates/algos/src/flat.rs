//! Cache-compact flat arena representation of a decision tree, with a
//! batched level-synchronous traversal.
//!
//! The pointer trees built by [`crate::hicuts`] and [`crate::hypercuts`]
//! classify one packet at a time by chasing [`NodeId`] indirections through
//! an enum-of-`Vec`s [`DecisionTree`]: every step loads a large [`Node`]
//! (a 40-byte region, a depth, and a `NodeKind` whose `Vec` payloads live in
//! separate heap allocations), so a traversal is a chain of dependent cache
//! misses — exactly the memory-latency wall the HiCuts and HyperCuts papers
//! identify as the cost of decision-tree classification.
//!
//! [`FlatTree`] re-packs a built tree into a handful of dense arrays:
//!
//! * per-node *records* in struct-of-arrays form — a cut-slab span, a
//!   child-base index and a rule-slab span per node (the span length doubles
//!   as the leaf flag: a node with no cut records is a leaf);
//! * one shared **cut slab** of `(dimension, parts, lo, hi)` records, in
//!   dimension order so the mixed-radix child index of
//!   [`CutSpec::child_index`](crate::dtree::CutSpec::child_index) is reproduced exactly;
//! * one shared **child slab** holding every child pointer array
//!   back-to-back, addressed by `(child_base + index)`;
//! * one shared **rule slab** with all leaf rule lists and pushed-up rule
//!   lists packed end to end as inline rule *images* (id + the five range
//!   pairs), addressed by `(offset, len)` — a leaf scan is one sequential
//!   read, with no second indirection into a rules array.
//!
//! Nodes are renumbered in breadth-first discovery order during
//! [`FlatTree::from_tree`], so the records of one tree level are contiguous
//! in memory.  [`FlatTree::classify_batch`] exploits that: it advances a
//! whole batch of packets one level at a time (a per-batch worklist), so the
//! node records of the hot top levels are touched by every packet while they
//! are still in cache — the tree analogue of RFC's phase-major batched loop.
//!
//! The flat traversal is decision-for-decision identical to
//! [`DecisionTree::classify`]; the property tests in
//! `tests/flat_equivalence.rs` enforce this packet-for-packet across random
//! rulesets, builder configurations and batch sizes.
//!
//! # Incremental updates
//!
//! The arena is *patchable in place* ([`FlatTree::insert`] /
//! [`FlatTree::delete`]): an update descends only the subtrees the rule's
//! ranges intersect (un-sharing merged leaves on the way down, exactly like
//! the pointer tree) and edits the leaf's rule span inside the slab.  A
//! delete shrinks the span, leaving a free slot of *slack* behind; an
//! insert first fills span slack and only when the span is full parks the
//! rule in a per-node **overflow side-table**, which lookups scan after the
//! span (a one-byte per-node mark keeps the static path free of hash
//! lookups).  The fraction of rules living outside their span — the
//! [`FlatTree::dirty_ratio`] — is what degrades the cache-compact layout,
//! so once it crosses a threshold [`FlatTreeClassifier`] triggers an
//! amortized [`FlatTree::reflatten`]: one sequential compaction pass that
//! rebuilds the slabs from the live node graph (no tree rebuild) and
//! re-provisions every span with fresh slack.

use crate::counters::LookupStats;
use crate::dtree::{DecisionTree, Node, NodeId, NodeKind};
use crate::hicuts::HiCutsClassifier;
use crate::hypercuts::HyperCutsClassifier;
use crate::update::UpdateError;
use crate::Classifier;
use pclass_types::{
    ArenaStats, Dimension, DimensionSpec, FieldRange, MatchResult, PacketHeader, Rule, RuleId,
    UpdateStats, FIELD_COUNT,
};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no match found yet" in the batched traversal (no rule id
/// can take this value: build-time ids equal ruleset positions, and
/// [`FlatTree::insert`] rejects ids at or above the sparse-id limit, which
/// is always below this sentinel).
const NO_MATCH: u32 = u32::MAX;

/// A `(offset, len)` span into one of the shared slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u32,
}

impl Span {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// One cut dimension of an internal node: `parts` equal-width partitions of
/// the (possibly compacted) region `[lo, hi]` along dimension `dim`.
///
/// Records of one node are stored consecutively in dimension order, so
/// folding them most-significant-first reproduces the mixed-radix child
/// index of the pointer tree.
///
/// The partition parameters of [`FieldRange::index_of`] (`base` child
/// width, `rem` leading children one wider, `wide_span = rem * (base+1)`)
/// depend only on the region and `parts`, so they are precomputed at
/// flatten time — the per-packet child selection then needs at most one
/// division instead of three (the same division-removal idea the paper
/// applies in its hardware-oriented cut algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlatCut {
    dim: u32,
    parts: u32,
    lo: u32,
    hi: u32,
    /// Child width (`region_len / parts`); meaningless when `direct`.
    base: u32,
    /// Number of leading children of width `base + 1`.
    rem: u32,
    /// `rem * (base + 1)`: offsets below this fall in a wide child.
    wide_span: u32,
    /// 1 when `parts >= region_len`: the child index is just the offset.
    direct: u32,
}

impl FlatCut {
    /// Builds a cut record for `parts` partitions of `[lo, hi]` along
    /// dimension index `dim`.
    fn new(dim: usize, parts: u32, region: FieldRange) -> FlatCut {
        let total = region.len();
        let direct = u64::from(parts) >= total;
        let (base, rem) = if direct {
            (0, 0)
        } else {
            (total / u64::from(parts), total % u64::from(parts))
        };
        // rem * (base + 1) < total <= 2^32, so the narrowing casts are exact
        // (parts >= 2 for any real cut keeps base below 2^31).
        FlatCut {
            dim: dim as u32,
            parts,
            lo: region.lo,
            hi: region.hi,
            base: base as u32,
            rem: rem as u32,
            wide_span: (rem * (base + 1)) as u32,
            direct: u32::from(direct),
        }
    }

    /// Index of the child containing `v`, mirroring
    /// [`FieldRange::index_of`] over the precomputed parameters.  The
    /// caller has already checked `lo <= v <= hi`.
    #[inline]
    fn sub_index(&self, v: u32) -> u32 {
        let offset = v - self.lo;
        if self.direct != 0 {
            offset
        } else if offset < self.wide_span {
            offset / (self.base + 1)
        } else {
            self.rem + (offset - self.wide_span) / self.base
        }
    }
}

/// A rule image packed into the rule slab: the id (= priority) and the
/// five `[lo, hi]` range pairs, inline.
///
/// Storing the image instead of a rule *id* makes a leaf scan one
/// sequential read over the slab — no second indirection into a rules
/// array — the same idea as the paper's 144-bit packed software rule
/// images.  The match test is evaluated branch-free over all five
/// dimensions (non-lazy `&`), which trades a handful of always-executed
/// compares for the data-dependent branch mispredictions of the
/// short-circuiting [`Rule::matches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedRule {
    id: RuleId,
    lo: [u32; FIELD_COUNT],
    hi: [u32; FIELD_COUNT],
}

impl PackedRule {
    /// Filler image for unused slack slots inside a span (`len..cap`);
    /// never scanned because `len` guards every read.
    const DEAD: PackedRule = PackedRule {
        id: u32::MAX,
        lo: [0; FIELD_COUNT],
        hi: [0; FIELD_COUNT],
    };

    fn new(rule: &Rule) -> PackedRule {
        PackedRule {
            id: rule.id,
            lo: std::array::from_fn(|d| rule.ranges[d].lo),
            hi: std::array::from_fn(|d| rule.ranges[d].hi),
        }
    }

    /// The rule's ranges, reassembled from the packed image.
    fn ranges(&self) -> [FieldRange; FIELD_COUNT] {
        std::array::from_fn(|d| FieldRange::new(self.lo[d], self.hi[d]))
    }

    #[inline]
    fn matches(&self, fields: &[u32; FIELD_COUNT]) -> bool {
        let mut ok = true;
        for ((&lo, &hi), &v) in self.lo.iter().zip(&self.hi).zip(fields) {
            ok &= (lo <= v) & (v <= hi);
        }
        ok
    }
}

/// A decision tree flattened into contiguous arrays (see the module docs
/// for the layout).  Built from a [`DecisionTree`] with
/// [`FlatTree::from_tree`]; the root is always record 0.  The arena is
/// self-contained: classification touches only these dense arrays (the
/// rule slab stores full rule images, not references).
#[derive(Debug, Clone)]
pub struct FlatTree {
    /// The geometry the tree classifies over (needed to validate inserted
    /// rules and to rebuild a ruleset from the live set).
    spec: DimensionSpec,
    /// Per-node span into `cuts`; `len == 0` marks a leaf.
    node_cuts: Vec<Span>,
    /// Per-node base index into `children` (unused for leaves).
    node_child_base: Vec<u32>,
    /// Per-node span into `rule_slab`: the leaf rules of a leaf, the
    /// pushed-up stored rules of an internal node.
    node_rules: Vec<Span>,
    /// Per-node capacity of the rule span: slots `len..cap` are free slack
    /// an insert may claim in place.  Always `cap >= len`.
    node_rule_cap: Vec<u32>,
    /// Per-node flag: this node has overflow rules (one-byte check on the
    /// hot path; the side-table is only consulted when set).
    overflow_mark: Vec<bool>,
    /// Shared cut-record slab.
    cuts: Vec<FlatCut>,
    /// Shared child-pointer slab (flat node ids).
    children: Vec<u32>,
    /// Shared packed-rule-image slab.
    rule_slab: Vec<PackedRule>,
    /// Overflow side-table: rules whose node span had no free slot, per
    /// node, in ascending id order.
    overflow: HashMap<u32, Vec<PackedRule>>,
    /// The live rules by id — delete needs the ranges to retrace the
    /// insert descent, and re-flatten verification needs the full set.
    live: BTreeMap<RuleId, PackedRule>,
    /// Per-node reference counts (child slots + 1 for the root), built
    /// lazily by the first update and maintained by un-sharing clones.
    refs: Option<Vec<u32>>,
    /// Update-activity counters since the build (or last re-flatten for
    /// the overflow gauge).
    update_stats: UpdateStats,
}

impl FlatTree {
    /// Flattens a built pointer tree into the arena layout.
    ///
    /// Nodes are renumbered in breadth-first discovery order (root = 0), so
    /// shared nodes (merged leaves, the builders' shared empty leaf) keep a
    /// single record and records of one level stay contiguous.
    pub fn from_tree(tree: &DecisionTree) -> FlatTree {
        let nodes: &[Node] = tree.nodes();
        assert!(
            nodes.len() < u32::MAX as usize,
            "tree too large to flatten: {} nodes",
            nodes.len()
        );
        let mut map = vec![u32::MAX; nodes.len()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        map[tree.root() as usize] = 0;
        order.push(tree.root());

        let rules = tree.rules();
        let mut flat = FlatTree {
            spec: *tree.spec(),
            node_cuts: Vec::with_capacity(nodes.len()),
            node_child_base: Vec::with_capacity(nodes.len()),
            node_rules: Vec::with_capacity(nodes.len()),
            node_rule_cap: Vec::with_capacity(nodes.len()),
            overflow_mark: Vec::with_capacity(nodes.len()),
            cuts: Vec::new(),
            children: Vec::new(),
            rule_slab: Vec::new(),
            overflow: HashMap::new(),
            live: rules
                .iter()
                .filter(|r| tree.is_live(r.id))
                .map(|r| (r.id, PackedRule::new(r)))
                .collect(),
            refs: None,
            update_stats: UpdateStats::default(),
        };

        let mut head = 0usize;
        while head < order.len() {
            let node = &nodes[order[head] as usize];
            head += 1;
            flat.overflow_mark.push(false);
            match &node.kind {
                NodeKind::Leaf { rules: ids } => {
                    flat.node_cuts.push(Span {
                        off: flat.cuts.len() as u32,
                        len: 0,
                    });
                    flat.node_child_base.push(0);
                    let span = push_slab(&mut flat.rule_slab, rules, ids);
                    flat.node_rules.push(span);
                    flat.node_rule_cap.push(span.len);
                }
                NodeKind::Internal {
                    cuts,
                    children,
                    stored_rules,
                    cut_region,
                } => {
                    let off = flat.cuts.len() as u32;
                    for d in cuts.cut_dimensions() {
                        let i = d.index();
                        flat.cuts
                            .push(FlatCut::new(i, cuts.parts[i], cut_region[i]));
                    }
                    flat.node_cuts.push(Span {
                        off,
                        len: flat.cuts.len() as u32 - off,
                    });
                    flat.node_child_base.push(flat.children.len() as u32);
                    for &child in children {
                        let slot = &mut map[child as usize];
                        if *slot == u32::MAX {
                            *slot = order.len() as u32;
                            order.push(child);
                        }
                        flat.children.push(*slot);
                    }
                    let span = push_slab(&mut flat.rule_slab, rules, stored_rules);
                    flat.node_rules.push(span);
                    flat.node_rule_cap.push(span.len);
                }
            }
        }
        assert!(
            flat.children.len() < u32::MAX as usize
                && flat.rule_slab.len() < u32::MAX as usize
                && flat.cuts.len() < u32::MAX as usize,
            "flat arena slab exceeds u32 addressing"
        );
        // Drop the growth slack so arena_stats' "actual in-memory bytes"
        // claim is true of the allocations, not just the lengths.
        flat.node_cuts.shrink_to_fit();
        flat.node_child_base.shrink_to_fit();
        flat.node_rules.shrink_to_fit();
        flat.node_rule_cap.shrink_to_fit();
        flat.overflow_mark.shrink_to_fit();
        flat.cuts.shrink_to_fit();
        flat.children.shrink_to_fit();
        flat.rule_slab.shrink_to_fit();
        flat
    }

    /// Number of node records in the arena.
    pub fn node_count(&self) -> usize {
        self.node_cuts.len()
    }

    /// Sizes and actual in-memory footprint of the arena arrays (the
    /// "Arena" rows of the README's memory table and of
    /// `BENCH_throughput.json`'s `builds` records).
    ///
    /// Counts the *serving image* — node records, slabs and overflow
    /// rules, everything a lookup can touch — not the write-path
    /// bookkeeping (`live` map, lazy refcounts; see
    /// [`ArenaStats`]'s docs).
    pub fn arena_stats(&self) -> ArenaStats {
        use std::mem::size_of;
        // Per node: two spans, the child base, the rule-span capacity and
        // the overflow mark.
        let structure_bytes = self.node_cuts.len()
            * (size_of::<Span>() * 2 + size_of::<u32>() * 2 + size_of::<bool>())
            + self.cuts.len() * size_of::<FlatCut>()
            + self.children.len() * size_of::<u32>();
        let overflow_rules: usize = self.overflow.values().map(Vec::len).sum();
        ArenaStats {
            nodes: self.node_cuts.len(),
            cut_records: self.cuts.len(),
            child_slots: self.children.len(),
            rule_refs: self.rule_slab.len() + overflow_rules,
            arena_bytes: structure_bytes,
            total_bytes: structure_bytes
                + (self.rule_slab.len() + overflow_rules) * size_of::<PackedRule>(),
        }
    }

    /// Mixed-radix child index of `pkt` under the cut records `span`, or
    /// `None` when the packet lies outside the (compacted) cut region —
    /// the flat mirror of [`CutSpec::child_index`](crate::dtree::CutSpec::child_index).
    #[inline]
    fn child_index(&self, span: Span, pkt: &PacketHeader) -> Option<u64> {
        let mut idx: u64 = 0;
        for cut in &self.cuts[span.range()] {
            let v = pkt.fields[cut.dim as usize];
            if v < cut.lo || v > cut.hi {
                return None;
            }
            idx = idx * u64::from(cut.parts) + u64::from(cut.sub_index(v));
        }
        Some(idx)
    }

    /// Linear scan of a rule-slab span, updating the best (lowest id) match
    /// in `best` (`NO_MATCH` = none yet) and returning the number of rules
    /// compared (for operation accounting).  Mirrors the early-exit logic of
    /// the pointer tree's scan: slab lists are in ascending id order, so the
    /// first hit wins within a list and ids at or above the current best
    /// cannot improve it.
    #[inline]
    fn scan_slab(&self, span: Span, pkt: &PacketHeader, best: &mut u32) -> u64 {
        let mut compared = 0u64;
        for rule in &self.rule_slab[span.range()] {
            compared += 1;
            if rule.id >= *best {
                break;
            }
            if rule.matches(&pkt.fields) {
                *best = rule.id;
                break;
            }
        }
        compared
    }

    /// Scans a node's overflow list with the same early-exit semantics as
    /// [`FlatTree::scan_slab`].  Called only when the node's overflow mark
    /// is set, so the untouched (no-churn) hot path never hashes.
    #[inline]
    fn scan_overflow(&self, node: u32, pkt: &PacketHeader, best: &mut u32) -> u64 {
        let Some(list) = self.overflow.get(&node) else {
            return 0;
        };
        let mut compared = 0u64;
        for rule in list {
            compared += 1;
            if rule.id >= *best {
                break;
            }
            if rule.matches(&pkt.fields) {
                *best = rule.id;
                break;
            }
        }
        compared
    }

    /// Classifies one packet by walking the arena, optionally recording the
    /// performed work into `stats` with the same accounting as
    /// [`DecisionTree::classify`].
    pub fn classify(&self, pkt: &PacketHeader, mut stats: Option<&mut LookupStats>) -> MatchResult {
        let mut best = NO_MATCH;
        let mut node = 0usize;
        loop {
            let cuts = self.node_cuts[node];
            let rules = self.node_rules[node];
            if let Some(s) = stats.as_deref_mut() {
                s.memory_accesses += 1;
                s.ops.loads += 2; // node record + cut span
                s.ops.alu += 4;
                s.ops.branches += 1;
            }
            if cuts.len == 0 {
                let mut compared = self.scan_slab(rules, pkt, &mut best);
                if self.overflow_mark[node] {
                    compared += self.scan_overflow(node as u32, pkt, &mut best);
                }
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
                break;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.nodes_visited += 1;
            }
            if rules.len > 0 || self.overflow_mark[node] {
                let mut compared = self.scan_slab(rules, pkt, &mut best);
                if self.overflow_mark[node] {
                    compared += self.scan_overflow(node as u32, pkt, &mut best);
                }
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
            }
            match self.child_index(cuts, pkt) {
                Some(idx) => {
                    if let Some(s) = stats.as_deref_mut() {
                        let dims = u64::from(cuts.len);
                        s.ops.alu += 3 * dims;
                        s.ops.muls += dims;
                        s.ops.loads += 1;
                    }
                    node =
                        self.children[self.node_child_base[node] as usize + idx as usize] as usize;
                }
                None => break,
            }
        }
        decode(best)
    }

    /// Classifies a batch of packets level-synchronously, appending one
    /// result per packet to `out` in input order.
    ///
    /// All packets advance through tree level *k* before any packet touches
    /// level *k + 1*; combined with the breadth-first record order this
    /// keeps the hot node records of the shallow levels in cache across the
    /// whole batch.  Results are exactly what per-packet
    /// [`FlatTree::classify`] calls would produce.
    pub fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        let n = pkts.len();
        let base = out.len();
        out.resize(base + n, MatchResult::NoMatch);
        if n == 0 {
            return;
        }
        let mut node = vec![0u32; n];
        let mut best = vec![NO_MATCH; n];
        let mut cur: Vec<u32> = (0..n as u32).collect();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        while !cur.is_empty() {
            for &p in &cur {
                let pi = p as usize;
                let nid = node[pi] as usize;
                let cuts = self.node_cuts[nid];
                let rules = self.node_rules[nid];
                let pkt = &pkts[pi];
                if cuts.len == 0 {
                    self.scan_slab(rules, pkt, &mut best[pi]);
                    if self.overflow_mark[nid] {
                        self.scan_overflow(nid as u32, pkt, &mut best[pi]);
                    }
                    out[base + pi] = decode(best[pi]);
                    continue;
                }
                if rules.len > 0 {
                    self.scan_slab(rules, pkt, &mut best[pi]);
                }
                if self.overflow_mark[nid] {
                    self.scan_overflow(nid as u32, pkt, &mut best[pi]);
                }
                match self.child_index(cuts, pkt) {
                    Some(idx) => {
                        node[pi] = self.children[self.node_child_base[nid] as usize + idx as usize];
                        next.push(p);
                    }
                    None => out[base + pi] = decode(best[pi]),
                }
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
        }
    }

    /// The geometry the arena classifies over.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }

    /// The live rules in ascending id (= priority) order, reassembled from
    /// the packed images.
    pub fn live_rules(&self) -> Vec<Rule> {
        self.live
            .iter()
            .map(|(&id, img)| Rule::new(id, img.ranges()))
            .collect()
    }

    /// Number of live rules.
    pub fn live_rule_count(&self) -> usize {
        self.live.len()
    }

    /// Update-activity counters since the build (`overflow_rules` is a
    /// gauge: it drops back to 0 on re-flatten).
    pub fn update_stats(&self) -> UpdateStats {
        self.update_stats
    }

    /// Fraction of rule images living in the overflow side-table instead
    /// of their node's slab span — the measure of how far the arena has
    /// drifted from its cache-compact layout.  0 when untouched.
    pub fn dirty_ratio(&self) -> f64 {
        let overflow = self.update_stats.overflow_rules as f64;
        let total = self.rule_slab.len() as f64 + overflow;
        if total == 0.0 {
            0.0
        } else {
            overflow / total
        }
    }

    /// Inserts a rule at the (currently unused) priority slot `rule.id` by
    /// patching the arena in place — no rebuild, no re-flatten.
    ///
    /// The descent mirrors [`DecisionTree::insert`]: only subtrees the
    /// rule's ranges intersect are visited, shared nodes are un-shared by
    /// cloning (the clone's span gets fresh slack at the slab end), a rule
    /// reaching beyond a node's compacted cut region in a cut dimension is
    /// parked in that node's stored span, and the rule image lands in each
    /// target span in ascending id order — via span slack when there is a
    /// free slot, via the overflow side-table when the span is full.
    pub fn insert(&mut self, rule: &Rule) -> Result<(), UpdateError> {
        let id = rule.id;
        if self.live.contains_key(&id) {
            return Err(UpdateError::DuplicateRuleId(id));
        }
        // Same sparse-id bound as the pointer tree; also keeps every live
        // id strictly below the NO_MATCH lookup sentinel.
        let occupied_end = self
            .live
            .last_key_value()
            .map(|(&k, _)| k as usize + 1)
            .unwrap_or(0);
        let limit = crate::update::id_limit(occupied_end);
        if id >= limit {
            return Err(UpdateError::RuleIdTooSparse { rule: id, limit });
        }
        for d in Dimension::ALL {
            if rule.range(d).hi > self.spec.max_value(d) {
                return Err(UpdateError::RangeExceedsWidth {
                    rule: id,
                    dimension: d,
                });
            }
        }
        self.ensure_refs();
        let img = PackedRule::new(rule);
        self.insert_at(0, rule.ranges, img);
        self.live.insert(id, img);
        self.update_stats.inserts += 1;
        Ok(())
    }

    /// Deletes the live rule `id`, removing its image from every span and
    /// overflow list the insert/build placement could have put it in.
    pub fn delete(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let Some(img) = self.live.get(&id) else {
            return Err(UpdateError::UnknownRuleId(id));
        };
        let ranges = img.ranges();
        self.delete_at(0, &ranges, id);
        self.live.remove(&id);
        self.update_stats.deletes += 1;
        Ok(())
    }

    /// Builds the per-node reference counts on the first update.
    fn ensure_refs(&mut self) {
        if self.refs.is_some() {
            return;
        }
        let mut refs = vec![0u32; self.node_cuts.len()];
        refs[0] += 1; // the root
        for &c in &self.children {
            refs[c as usize] += 1;
        }
        self.refs = Some(refs);
    }

    /// Number of children of an internal node (the product of its cut
    /// record partition counts; not stored, the child slab span is
    /// implicit).
    fn child_count(&self, node: usize) -> usize {
        self.cuts[self.node_cuts[node].range()]
            .iter()
            .map(|c| c.parts as usize)
            .product()
    }

    /// Clones node `n` so one child slot can diverge from its sharers: the
    /// immutable cut span is shared, the child slots and the rule span are
    /// copied to their slab ends (the rule span with fresh slack), and the
    /// overflow list (if any) is duplicated.
    fn clone_node(&mut self, n: u32) -> u32 {
        let nu = n as usize;
        let clone = self.node_cuts.len() as u32;
        let refs = self.refs.as_mut().expect("refs built before cloning");
        refs[nu] -= 1;
        refs.push(1);
        self.node_cuts.push(self.node_cuts[nu]);
        if self.node_cuts[nu].len > 0 {
            let base = self.node_child_base[nu] as usize;
            let count = self.child_count(nu);
            let new_base = self.children.len() as u32;
            for j in 0..count {
                let g = self.children[base + j];
                self.children.push(g);
                self.refs.as_mut().expect("refs built")[g as usize] += 1;
            }
            self.node_child_base.push(new_base);
        } else {
            self.node_child_base.push(0);
        }
        let span = self.node_rules[nu];
        let len = span.len;
        let cap = len + span_slack(len);
        let new_off = self.rule_slab.len() as u32;
        for j in span.range() {
            let img = self.rule_slab[j];
            self.rule_slab.push(img);
        }
        self.rule_slab
            .extend(std::iter::repeat_n(PackedRule::DEAD, (cap - len) as usize));
        self.node_rules.push(Span { off: new_off, len });
        self.node_rule_cap.push(cap);
        let cloned_overflow = self.overflow.get(&n).cloned();
        self.overflow_mark.push(cloned_overflow.is_some());
        if let Some(list) = cloned_overflow {
            self.update_stats.overflow_rules += list.len() as u64;
            self.overflow.insert(clone, list);
        }
        clone
    }

    /// Adds a rule image to a node's rule list: into span slack when a
    /// free slot exists, into the overflow side-table otherwise.
    fn add_rule(&mut self, node: usize, img: PackedRule) {
        let span = self.node_rules[node];
        let (start, len) = (span.off as usize, span.len as usize);
        if span.len < self.node_rule_cap[node] {
            let pos =
                match self.rule_slab[start..start + len].binary_search_by_key(&img.id, |r| r.id) {
                    Ok(_) => return, // already present (defensive; descent visits once)
                    Err(pos) => pos,
                };
            for j in (start + pos..start + len).rev() {
                self.rule_slab[j + 1] = self.rule_slab[j];
            }
            self.rule_slab[start + pos] = img;
            self.node_rules[node].len += 1;
        } else {
            let list = self.overflow.entry(node as u32).or_default();
            if let Err(pos) = list.binary_search_by_key(&img.id, |r| r.id) {
                list.insert(pos, img);
                self.overflow_mark[node] = true;
                self.update_stats.overflow_rules += 1;
            }
        }
    }

    /// Removes a rule id from a node's span or overflow list; returns
    /// whether it was present.  A vacated span slot becomes slack.
    fn remove_rule(&mut self, node: usize, id: RuleId) -> bool {
        let span = self.node_rules[node];
        let (start, len) = (span.off as usize, span.len as usize);
        if let Ok(pos) = self.rule_slab[start..start + len].binary_search_by_key(&id, |r| r.id) {
            for j in start + pos..start + len - 1 {
                self.rule_slab[j] = self.rule_slab[j + 1];
            }
            self.rule_slab[start + len - 1] = PackedRule::DEAD;
            self.node_rules[node].len -= 1;
            return true;
        }
        if self.overflow_mark[node] {
            if let Some(list) = self.overflow.get_mut(&(node as u32)) {
                if let Ok(pos) = list.binary_search_by_key(&id, |r| r.id) {
                    list.remove(pos);
                    self.update_stats.overflow_rules -= 1;
                    if list.is_empty() {
                        self.overflow.remove(&(node as u32));
                        self.overflow_mark[node] = false;
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Whether `clip` escapes the node's (possibly compacted) cut region
    /// in any cut dimension — if so, packets outside the region stop at
    /// this node and the rule must be searched here.
    fn escapes_cut_region(&self, node: usize, clip: &[FieldRange; FIELD_COUNT]) -> bool {
        self.cuts[self.node_cuts[node].range()].iter().any(|cut| {
            let r = clip[cut.dim as usize];
            r.lo < cut.lo || r.hi > cut.hi
        })
    }

    /// Recursive insert descent (see [`FlatTree::insert`]).
    fn insert_at(&mut self, node: usize, clip: [FieldRange; FIELD_COUNT], img: PackedRule) {
        if self.node_cuts[node].len == 0 || self.escapes_cut_region(node, &clip) {
            self.add_rule(node, img);
            return;
        }
        self.for_each_intersecting_child(node, clip, &mut |flat, slot, child_clip| {
            let mut child = flat.children[slot];
            if flat.refs.as_ref().expect("refs built")[child as usize] > 1 {
                let clone = flat.clone_node(child);
                flat.children[slot] = clone;
                child = clone;
            }
            flat.insert_at(child as usize, child_clip, img);
        });
    }

    /// Recursive delete descent: a hit in an internal node's stored span
    /// (or overflow) prunes the subtree below it.
    fn delete_at(&mut self, node: usize, ranges: &[FieldRange; FIELD_COUNT], id: RuleId) {
        if self.node_cuts[node].len == 0 || self.escapes_cut_region(node, ranges) {
            self.remove_rule(node, id);
            return;
        }
        if self.remove_rule(node, id) {
            return;
        }
        self.for_each_intersecting_child(node, *ranges, &mut |flat, slot, child_clip| {
            flat.delete_at(flat.children[slot] as usize, &child_clip, id);
        });
    }

    /// Enumerates the mixed-radix child indices whose sub-regions
    /// intersect `clip` (caller has verified `clip` does not escape the
    /// cut region), invoking `visit(self, child_slot, clipped_ranges)` for
    /// each.
    fn for_each_intersecting_child(
        &mut self,
        node: usize,
        clip: [FieldRange; FIELD_COUNT],
        visit: &mut impl FnMut(&mut FlatTree, usize, [FieldRange; FIELD_COUNT]),
    ) {
        let cut_span = self.node_cuts[node];
        self.enumerate_children(node, cut_span, 0, 0, clip, visit);
    }

    fn enumerate_children(
        &mut self,
        node: usize,
        cut_span: Span,
        k: u32,
        idx: u64,
        clip: [FieldRange; FIELD_COUNT],
        visit: &mut impl FnMut(&mut FlatTree, usize, [FieldRange; FIELD_COUNT]),
    ) {
        if k == cut_span.len {
            let slot = self.node_child_base[node] as usize + idx as usize;
            visit(self, slot, clip);
            return;
        }
        let cut = self.cuts[(cut_span.off + k) as usize];
        let region = FieldRange::new(cut.lo, cut.hi);
        let r = clip[cut.dim as usize];
        let (a, b) = (cut.sub_index(r.lo), cut.sub_index(r.hi));
        for i in a..=b {
            let child_range = region.split_child(cut.parts, i);
            let Some(clipped) = r.intersect(&child_range) else {
                continue;
            };
            let mut child_clip = clip;
            child_clip[cut.dim as usize] = clipped;
            self.enumerate_children(
                node,
                cut_span,
                k + 1,
                idx * u64::from(cut.parts) + u64::from(i),
                child_clip,
                visit,
            );
        }
    }

    /// Rebuilds the slabs compactly from the live node graph — one
    /// sequential pass, no tree rebuild.  Overflow rules are merged back
    /// into their node's span, every span is re-provisioned with fresh
    /// slack for future in-place inserts, and records left unreferenced by
    /// un-sharing clones are dropped.  Classification results are
    /// unchanged.
    pub fn reflatten(&mut self) {
        let old_nodes = self.node_cuts.len();
        let mut map = vec![u32::MAX; old_nodes];
        let mut order: Vec<u32> = vec![0];
        map[0] = 0;

        let mut new = FlatTree {
            spec: self.spec,
            node_cuts: Vec::with_capacity(old_nodes),
            node_child_base: Vec::with_capacity(old_nodes),
            node_rules: Vec::with_capacity(old_nodes),
            node_rule_cap: Vec::with_capacity(old_nodes),
            overflow_mark: Vec::with_capacity(old_nodes),
            cuts: Vec::new(),
            children: Vec::new(),
            rule_slab: Vec::new(),
            overflow: HashMap::new(),
            live: std::mem::take(&mut self.live),
            refs: None,
            update_stats: UpdateStats {
                overflow_rules: 0,
                reflattens: self.update_stats.reflattens + 1,
                ..self.update_stats
            },
        };

        let mut head = 0usize;
        while head < order.len() {
            let old = order[head] as usize;
            head += 1;
            new.overflow_mark.push(false);

            let cut_span = self.node_cuts[old];
            let new_cut_off = new.cuts.len() as u32;
            new.cuts.extend_from_slice(&self.cuts[cut_span.range()]);
            new.node_cuts.push(Span {
                off: new_cut_off,
                len: cut_span.len,
            });

            if cut_span.len > 0 {
                let base = self.node_child_base[old] as usize;
                let count = self.child_count(old);
                new.node_child_base.push(new.children.len() as u32);
                for j in 0..count {
                    let child = self.children[base + j] as usize;
                    if map[child] == u32::MAX {
                        map[child] = order.len() as u32;
                        order.push(child as u32);
                    }
                    new.children.push(map[child]);
                }
            } else {
                new.node_child_base.push(0);
            }

            let span = self.node_rules[old];
            let new_off = new.rule_slab.len() as u32;
            new.rule_slab
                .extend_from_slice(&self.rule_slab[span.range()]);
            if let Some(list) = self.overflow.get(&(old as u32)) {
                new.rule_slab.extend_from_slice(list);
                new.rule_slab[new_off as usize..].sort_unstable_by_key(|r| r.id);
            }
            let len = new.rule_slab.len() as u32 - new_off;
            let cap = len + span_slack(len);
            new.rule_slab
                .extend(std::iter::repeat_n(PackedRule::DEAD, (cap - len) as usize));
            new.node_rules.push(Span { off: new_off, len });
            new.node_rule_cap.push(cap);
        }
        *self = new;
    }
}

/// Slack slots appended to a re-provisioned rule span so the next few
/// inserts into the node patch in place instead of overflowing.
fn span_slack(len: u32) -> u32 {
    (len / 4).max(2)
}

#[inline]
fn decode(best: u32) -> MatchResult {
    if best == NO_MATCH {
        MatchResult::NoMatch
    } else {
        MatchResult::Matched(best)
    }
}

/// Appends the packed images of `ids` to `slab` and returns the span
/// covering them.
fn push_slab(slab: &mut Vec<PackedRule>, rules: &[Rule], ids: &[RuleId]) -> Span {
    let off = slab.len() as u32;
    slab.extend(ids.iter().map(|&id| PackedRule::new(&rules[id as usize])));
    Span {
        off,
        len: ids.len() as u32,
    }
}

/// Per-scanned-rule operation accounting, identical to the pointer tree's.
fn count_scan(s: &mut LookupStats, compared: u64) {
    s.rules_compared += compared;
    s.memory_accesses += compared;
    s.ops.loads += 5 * compared;
    s.ops.alu += 10 * compared;
    s.ops.branches += 5 * compared;
}

/// A [`Classifier`] serving a [`FlatTree`] arena.
///
/// Obtained from a built pointer-tree classifier via
/// [`HiCutsClassifier::flatten`] or [`HyperCutsClassifier::flatten`]; the
/// serving roster registers these as `hicuts-flat` / `hypercuts-flat`, so
/// the engine, the equivalence tests and the `throughput` harness pick the
/// flat variants up with no extra glue.
#[derive(Debug, Clone)]
pub struct FlatTreeClassifier {
    name: &'static str,
    flat: FlatTree,
    worst_case_accesses: u64,
    dirty_threshold: f64,
}

/// Default [`FlatTree::dirty_ratio`] past which [`FlatTreeClassifier`]
/// triggers an amortized re-flatten after an update.
pub const DEFAULT_DIRTY_THRESHOLD: f64 = 0.05;

impl FlatTreeClassifier {
    /// Wraps a flattened tree under a roster name.
    pub fn new(name: &'static str, flat: FlatTree, worst_case_accesses: u64) -> FlatTreeClassifier {
        FlatTreeClassifier {
            name,
            flat,
            worst_case_accesses,
            dirty_threshold: DEFAULT_DIRTY_THRESHOLD,
        }
    }

    /// Overrides the dirty-ratio threshold that triggers an amortized
    /// re-flatten after an update (tests use tiny values to force the
    /// compaction path; `f64::INFINITY` disables it).
    pub fn with_dirty_threshold(mut self, threshold: f64) -> FlatTreeClassifier {
        self.dirty_threshold = threshold;
        self
    }

    /// The underlying arena.
    pub fn flat_tree(&self) -> &FlatTree {
        &self.flat
    }

    /// Arena footprint statistics (recorded per build by the `throughput`
    /// harness).
    pub fn arena_stats(&self) -> ArenaStats {
        self.flat.arena_stats()
    }

    fn maybe_reflatten(&mut self) {
        if self.flat.dirty_ratio() > self.dirty_threshold {
            self.flat.reflatten();
        }
    }
}

impl crate::update::UpdatableClassifier for FlatTreeClassifier {
    fn insert(&mut self, rule: Rule) -> Result<(), UpdateError> {
        self.flat.insert(&rule)?;
        self.maybe_reflatten();
        Ok(())
    }

    fn delete(&mut self, rule_id: RuleId) -> Result<(), UpdateError> {
        self.flat.delete(rule_id)?;
        self.maybe_reflatten();
        Ok(())
    }

    fn live_rules(&self) -> Vec<Rule> {
        self.flat.live_rules()
    }

    fn spec(&self) -> DimensionSpec {
        *self.flat.spec()
    }

    fn update_stats(&self) -> UpdateStats {
        self.flat.update_stats()
    }
}

impl Classifier for FlatTreeClassifier {
    fn name(&self) -> &'static str {
        self.name
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.flat.classify(pkt, None)
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        self.flat.classify_batch(pkts, out);
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        self.flat.classify(pkt, Some(stats))
    }

    fn memory_bytes(&self) -> usize {
        // The arena is measured by its actual in-memory bytes (that is the
        // point of the layout), not by the idealised 32-bit software model
        // the pointer trees report under.
        self.flat.arena_stats().total_bytes
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.worst_case_accesses)
    }
}

impl HiCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hicuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hicuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

impl HyperCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hypercuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hypercuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hicuts::HiCutsConfig;
    use crate::hypercuts::HyperCutsConfig;
    use pclass_types::toy;

    fn toy_flat() -> (HiCutsClassifier, FlatTreeClassifier) {
        let rs = toy::table1_ruleset();
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::figure1());
        let flat = hc.flatten();
        (hc, flat)
    }

    #[test]
    fn flat_agrees_with_pointer_tree_per_packet() {
        let (hc, flat) = toy_flat();
        for f0 in (0..=255u32).step_by(3) {
            for f4 in (0..=255u32).step_by(5) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(flat.classify(&pkt), hc.classify(&pkt), "pkt {pkt:?}");
            }
        }
    }

    #[test]
    fn flat_batch_matches_per_packet_all_batch_sizes() {
        let rs = toy::table1_ruleset();
        let hc = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
        let flat = hc.flatten();
        let pkts: Vec<PacketHeader> = (0..97u32)
            .map(|i| {
                PacketHeader::from_fields([(i * 37) % 256, 80, 40, (i * 11) % 256, (i * 53) % 256])
            })
            .collect();
        let per_packet: Vec<MatchResult> = pkts.iter().map(|p| flat.classify(p)).collect();
        for take in [0usize, 1, 2, 7, 96, 97] {
            let mut out = Vec::new();
            flat.classify_batch(&pkts[..take], &mut out);
            assert_eq!(out, per_packet[..take], "batch size {take}");
        }
    }

    #[test]
    fn batch_appends_after_existing_results() {
        let (_, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut out = vec![MatchResult::NoMatch];
        flat.classify_batch(&[pkt], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], flat.classify(&pkt));
    }

    #[test]
    fn root_is_record_zero_and_shared_leaves_are_deduplicated() {
        let (hc, flat) = toy_flat();
        let tree_nodes = hc.tree().nodes().len();
        // BFS renumbering visits each node at most once, so the arena can
        // only shrink relative to the node vector (unreachable nodes drop).
        assert!(flat.flat_tree().node_count() <= tree_nodes);
        assert!(flat.flat_tree().node_count() >= 2);
    }

    #[test]
    fn arena_stats_are_consistent() {
        let (hc, flat) = toy_flat();
        let stats = flat.arena_stats();
        assert_eq!(stats.nodes, flat.flat_tree().node_count());
        assert!(stats.cut_records >= 1);
        assert!(stats.child_slots >= 2);
        assert!(stats.arena_bytes > 0);
        assert!(stats.total_bytes > stats.arena_bytes);
        assert_eq!(flat.memory_bytes(), stats.total_bytes);
        assert_eq!(
            flat.worst_case_memory_accesses(),
            Some(hc.tree().stats().worst_case_accesses)
        );
        assert_eq!(flat.name(), "hicuts-flat");
    }

    #[test]
    fn lookup_stats_match_pointer_tree_accounting() {
        let (hc, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut a = LookupStats::new();
        let mut b = LookupStats::new();
        assert_eq!(
            hc.classify_with_stats(&pkt, &mut a),
            flat.classify_with_stats(&pkt, &mut b)
        );
        assert_eq!(a.nodes_visited, b.nodes_visited);
        assert_eq!(a.rules_compared, b.rules_compared);
        assert_eq!(a.memory_accesses, b.memory_accesses);
        assert_eq!(a.ops, b.ops);
    }

    /// Sweeps a packet grid comparing the arena against linear search over
    /// its live rules (per packet and batched).
    fn assert_matches_live_linear(flat: &FlatTree) {
        let live = flat.live_rules();
        let mut pkts = Vec::new();
        for f0 in (0..256).step_by(5) {
            for f4 in (0..256).step_by(9) {
                pkts.push(PacketHeader::from_fields([f0, 80, 40, 180, f4]));
            }
        }
        let expected: Vec<MatchResult> = pkts
            .iter()
            .map(|p| crate::update::classify_live_linear(&live, p))
            .collect();
        for (pkt, want) in pkts.iter().zip(&expected) {
            assert_eq!(flat.classify(pkt, None), *want, "packet {pkt:?}");
        }
        let mut out = Vec::new();
        for chunk in pkts.chunks(7) {
            flat.classify_batch(chunk, &mut out);
        }
        assert_eq!(out, expected, "batched");
    }

    #[test]
    fn delete_then_reinsert_round_trips_with_slack_reuse() {
        let rs = toy::table1_ruleset();
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        assert_eq!(flat.live_rule_count(), 10);
        assert_eq!(flat.dirty_ratio(), 0.0);
        flat.delete(5).unwrap();
        assert_eq!(flat.live_rule_count(), 9);
        assert_matches_live_linear(&flat);
        assert_eq!(flat.delete(5), Err(UpdateError::UnknownRuleId(5)));
        // Re-inserting fills the slack the delete left behind: no overflow.
        flat.insert(&rs.rules()[5]).unwrap();
        assert_eq!(flat.update_stats().overflow_rules, 0);
        assert_eq!(flat.dirty_ratio(), 0.0);
        assert_matches_live_linear(&flat);
        assert_eq!(
            flat.insert(&rs.rules()[5]),
            Err(UpdateError::DuplicateRuleId(5))
        );
        let stats = flat.update_stats();
        assert_eq!((stats.inserts, stats.deletes, stats.reflattens), (1, 1, 0));
    }

    #[test]
    fn full_spans_spill_to_overflow_and_reflatten_compacts() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        // Fresh ids land in full spans: they must spill to the overflow
        // side-table (the pristine arena has zero slack) and still serve.
        for id in [20u32, 21, 22] {
            flat.insert(&Rule::wildcard(id, &spec)).unwrap();
        }
        assert!(flat.update_stats().overflow_rules > 0);
        assert!(flat.dirty_ratio() > 0.0);
        assert_matches_live_linear(&flat);
        let before = flat.update_stats();
        flat.reflatten();
        let after = flat.update_stats();
        assert_eq!(after.overflow_rules, 0);
        assert_eq!(after.reflattens, before.reflattens + 1);
        assert_eq!(flat.dirty_ratio(), 0.0);
        assert_eq!(flat.live_rule_count(), 13);
        assert_matches_live_linear(&flat);
        // Post-reflatten spans carry slack: the next insert is in place.
        flat.delete(20).unwrap();
        flat.insert(&Rule::wildcard(20, &spec)).unwrap();
        assert_eq!(flat.update_stats().overflow_rules, 0);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn classifier_triggers_amortized_reflatten_past_threshold() {
        use crate::update::UpdatableClassifier;
        let (_, flatc) = toy_flat();
        let mut c = flatc.with_dirty_threshold(0.01);
        let spec = UpdatableClassifier::spec(&c);
        for id in [30u32, 31] {
            c.insert(Rule::wildcard(id, &spec)).unwrap();
        }
        let stats = c.update_stats();
        assert!(stats.reflattens >= 1, "{stats:?}");
        assert_eq!(stats.overflow_rules, 0);
        assert_eq!(c.live_rules().len(), 12);
        // And with the threshold effectively off, overflow accumulates.
        let (_, flatc) = toy_flat();
        let mut c = flatc.with_dirty_threshold(f64::INFINITY);
        c.insert(Rule::wildcard(30, &spec)).unwrap();
        assert_eq!(c.update_stats().reflattens, 0);
        assert!(c.update_stats().overflow_rules > 0);
    }

    #[test]
    fn updates_unshare_merged_leaves() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        // A narrow rule: any leaf shared with an untouched region must be
        // cloned, not mutated in place.
        let mut rule = Rule::wildcard(12, &spec);
        rule.ranges[0] = FieldRange::new(3, 7);
        rule.ranges[4] = FieldRange::new(200, 210);
        flat.insert(&rule).unwrap();
        assert_matches_live_linear(&flat);
        flat.delete(12).unwrap();
        assert_matches_live_linear(&flat);
        for id in [0u32, 3, 9] {
            flat.delete(id).unwrap();
        }
        assert_matches_live_linear(&flat);
        flat.reflatten();
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn insert_rejects_ids_far_beyond_the_occupied_range() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        flat.insert(&Rule::wildcard(1_000, &spec)).unwrap();
        // The NO_MATCH sentinel (u32::MAX) must never become a live id —
        // it would be silently unmatchable.
        let err = flat.insert(&Rule::wildcard(u32::MAX, &spec)).unwrap_err();
        assert!(matches!(err, UpdateError::RuleIdTooSparse { .. }));
        let err = flat.insert(&Rule::wildcard(2_000_000, &spec)).unwrap_err();
        assert!(matches!(err, UpdateError::RuleIdTooSparse { .. }));
        assert_eq!(flat.live_rule_count(), 11);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn insert_escaping_a_compacted_cut_region_is_still_found() {
        use crate::hypercuts::HyperCutsConfig;
        // A ruleset clustered in a small box, so region compaction shrinks
        // the root cut region well below the full space.
        let spec = *toy::table1_ruleset().spec();
        let rules: Vec<Rule> = (0..8u32)
            .map(|i| {
                let mut r = Rule::wildcard(i, &spec);
                r.ranges[0] = FieldRange::new(10 + i, 30 + i);
                r.ranges[4] = FieldRange::new(40, 60);
                r
            })
            .collect();
        let rs = pclass_types::RuleSet::new("boxed", spec, rules).unwrap();
        let hc = HyperCutsClassifier::build(
            &rs,
            &HyperCutsConfig {
                binth: 2,
                spfac: 4.0,
                region_compaction: true,
                push_common_rules: true,
            },
        );
        let mut flat = FlatTree::from_tree(hc.tree());
        // A wildcard rule reaches far outside the compacted box: packets
        // out there must still match it after the insert.
        flat.insert(&Rule::wildcard(9, &spec)).unwrap();
        let outside = PacketHeader::from_fields([200, 200, 200, 200, 200]);
        assert_eq!(flat.classify(&outside, None), MatchResult::Matched(9));
        assert_matches_live_linear(&flat);
        flat.delete(9).unwrap();
        assert_eq!(flat.classify(&outside, None), MatchResult::NoMatch);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn empty_ruleset_flattens_to_single_leaf() {
        let spec = *toy::table1_ruleset().spec();
        let empty = pclass_types::RuleSet::new("empty", spec, vec![]).unwrap();
        let hc = HiCutsClassifier::build(&empty, &HiCutsConfig::paper_defaults());
        let flat = hc.flatten();
        assert_eq!(flat.flat_tree().node_count(), 1);
        let pkt = PacketHeader::from_fields([1, 2, 3, 4, 5]);
        assert_eq!(flat.classify(&pkt), MatchResult::NoMatch);
        let mut out = Vec::new();
        flat.classify_batch(&[pkt, pkt], &mut out);
        assert_eq!(out, vec![MatchResult::NoMatch; 2]);
    }
}
