//! Cache-compact flat arena representation of a decision tree, with a
//! batched level-synchronous traversal.
//!
//! The pointer trees built by [`crate::hicuts`] and [`crate::hypercuts`]
//! classify one packet at a time by chasing [`NodeId`] indirections through
//! an enum-of-`Vec`s [`DecisionTree`]: every step loads a large [`Node`]
//! (a 40-byte region, a depth, and a `NodeKind` whose `Vec` payloads live in
//! separate heap allocations), so a traversal is a chain of dependent cache
//! misses — exactly the memory-latency wall the HiCuts and HyperCuts papers
//! identify as the cost of decision-tree classification.
//!
//! [`FlatTree`] re-packs a built tree into a handful of dense arrays:
//!
//! * per-node *records* in struct-of-arrays form — a cut-slab span, a
//!   child-base index and a rule-slab span per node (the span length doubles
//!   as the leaf flag: a node with no cut records is a leaf);
//! * one shared **cut slab** of `(dimension, parts, lo, hi)` records, in
//!   dimension order so the mixed-radix child index of
//!   [`CutSpec::child_index`](crate::dtree::CutSpec::child_index) is reproduced exactly;
//! * one shared **child slab** holding every child pointer array
//!   back-to-back, addressed by `(child_base + index)`;
//! * one shared **rule slab** with all leaf rule lists and pushed-up rule
//!   lists packed end to end as inline rule *images* (id + the five range
//!   pairs), addressed by `(offset, len)` — a leaf scan is one sequential
//!   read, with no second indirection into a rules array.
//!
//! Nodes are renumbered in breadth-first discovery order during
//! [`FlatTree::from_tree`], so the records of one tree level are contiguous
//! in memory.  [`FlatTree::classify_batch`] exploits that: it advances a
//! whole batch of packets one level at a time (a per-batch worklist), so the
//! node records of the hot top levels are touched by every packet while they
//! are still in cache — the tree analogue of RFC's phase-major batched loop.
//!
//! The flat traversal is decision-for-decision identical to
//! [`DecisionTree::classify`]; the property tests in
//! `tests/flat_equivalence.rs` enforce this packet-for-packet across random
//! rulesets, builder configurations and batch sizes.

use crate::counters::LookupStats;
use crate::dtree::{DecisionTree, Node, NodeId, NodeKind};
use crate::hicuts::HiCutsClassifier;
use crate::hypercuts::HyperCutsClassifier;
use crate::Classifier;
use pclass_types::{ArenaStats, FieldRange, MatchResult, PacketHeader, Rule, RuleId, FIELD_COUNT};

/// Sentinel for "no match found yet" in the batched traversal (no rule id
/// can take this value: rule ids equal ruleset positions).
const NO_MATCH: u32 = u32::MAX;

/// A `(offset, len)` span into one of the shared slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u32,
}

impl Span {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// One cut dimension of an internal node: `parts` equal-width partitions of
/// the (possibly compacted) region `[lo, hi]` along dimension `dim`.
///
/// Records of one node are stored consecutively in dimension order, so
/// folding them most-significant-first reproduces the mixed-radix child
/// index of the pointer tree.
///
/// The partition parameters of [`FieldRange::index_of`] (`base` child
/// width, `rem` leading children one wider, `wide_span = rem * (base+1)`)
/// depend only on the region and `parts`, so they are precomputed at
/// flatten time — the per-packet child selection then needs at most one
/// division instead of three (the same division-removal idea the paper
/// applies in its hardware-oriented cut algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlatCut {
    dim: u32,
    parts: u32,
    lo: u32,
    hi: u32,
    /// Child width (`region_len / parts`); meaningless when `direct`.
    base: u32,
    /// Number of leading children of width `base + 1`.
    rem: u32,
    /// `rem * (base + 1)`: offsets below this fall in a wide child.
    wide_span: u32,
    /// 1 when `parts >= region_len`: the child index is just the offset.
    direct: u32,
}

impl FlatCut {
    /// Builds a cut record for `parts` partitions of `[lo, hi]` along
    /// dimension index `dim`.
    fn new(dim: usize, parts: u32, region: FieldRange) -> FlatCut {
        let total = region.len();
        let direct = u64::from(parts) >= total;
        let (base, rem) = if direct {
            (0, 0)
        } else {
            (total / u64::from(parts), total % u64::from(parts))
        };
        // rem * (base + 1) < total <= 2^32, so the narrowing casts are exact
        // (parts >= 2 for any real cut keeps base below 2^31).
        FlatCut {
            dim: dim as u32,
            parts,
            lo: region.lo,
            hi: region.hi,
            base: base as u32,
            rem: rem as u32,
            wide_span: (rem * (base + 1)) as u32,
            direct: u32::from(direct),
        }
    }

    /// Index of the child containing `v`, mirroring
    /// [`FieldRange::index_of`] over the precomputed parameters.  The
    /// caller has already checked `lo <= v <= hi`.
    #[inline]
    fn sub_index(&self, v: u32) -> u32 {
        let offset = v - self.lo;
        if self.direct != 0 {
            offset
        } else if offset < self.wide_span {
            offset / (self.base + 1)
        } else {
            self.rem + (offset - self.wide_span) / self.base
        }
    }
}

/// A rule image packed into the rule slab: the id (= priority) and the
/// five `[lo, hi]` range pairs, inline.
///
/// Storing the image instead of a rule *id* makes a leaf scan one
/// sequential read over the slab — no second indirection into a rules
/// array — the same idea as the paper's 144-bit packed software rule
/// images.  The match test is evaluated branch-free over all five
/// dimensions (non-lazy `&`), which trades a handful of always-executed
/// compares for the data-dependent branch mispredictions of the
/// short-circuiting [`Rule::matches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedRule {
    id: RuleId,
    lo: [u32; FIELD_COUNT],
    hi: [u32; FIELD_COUNT],
}

impl PackedRule {
    fn new(rule: &Rule) -> PackedRule {
        PackedRule {
            id: rule.id,
            lo: std::array::from_fn(|d| rule.ranges[d].lo),
            hi: std::array::from_fn(|d| rule.ranges[d].hi),
        }
    }

    #[inline]
    fn matches(&self, fields: &[u32; FIELD_COUNT]) -> bool {
        let mut ok = true;
        for ((&lo, &hi), &v) in self.lo.iter().zip(&self.hi).zip(fields) {
            ok &= (lo <= v) & (v <= hi);
        }
        ok
    }
}

/// A decision tree flattened into contiguous arrays (see the module docs
/// for the layout).  Built from a [`DecisionTree`] with
/// [`FlatTree::from_tree`]; the root is always record 0.  The arena is
/// self-contained: classification touches only these dense arrays (the
/// rule slab stores full rule images, not references).
#[derive(Debug, Clone)]
pub struct FlatTree {
    /// Per-node span into `cuts`; `len == 0` marks a leaf.
    node_cuts: Vec<Span>,
    /// Per-node base index into `children` (unused for leaves).
    node_child_base: Vec<u32>,
    /// Per-node span into `rule_slab`: the leaf rules of a leaf, the
    /// pushed-up stored rules of an internal node.
    node_rules: Vec<Span>,
    /// Shared cut-record slab.
    cuts: Vec<FlatCut>,
    /// Shared child-pointer slab (flat node ids).
    children: Vec<u32>,
    /// Shared packed-rule-image slab.
    rule_slab: Vec<PackedRule>,
}

impl FlatTree {
    /// Flattens a built pointer tree into the arena layout.
    ///
    /// Nodes are renumbered in breadth-first discovery order (root = 0), so
    /// shared nodes (merged leaves, the builders' shared empty leaf) keep a
    /// single record and records of one level stay contiguous.
    pub fn from_tree(tree: &DecisionTree) -> FlatTree {
        let nodes: &[Node] = tree.nodes();
        assert!(
            nodes.len() < u32::MAX as usize,
            "tree too large to flatten: {} nodes",
            nodes.len()
        );
        let mut map = vec![u32::MAX; nodes.len()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        map[tree.root() as usize] = 0;
        order.push(tree.root());

        let rules = tree.rules();
        let mut flat = FlatTree {
            node_cuts: Vec::with_capacity(nodes.len()),
            node_child_base: Vec::with_capacity(nodes.len()),
            node_rules: Vec::with_capacity(nodes.len()),
            cuts: Vec::new(),
            children: Vec::new(),
            rule_slab: Vec::new(),
        };

        let mut head = 0usize;
        while head < order.len() {
            let node = &nodes[order[head] as usize];
            head += 1;
            match &node.kind {
                NodeKind::Leaf { rules: ids } => {
                    flat.node_cuts.push(Span {
                        off: flat.cuts.len() as u32,
                        len: 0,
                    });
                    flat.node_child_base.push(0);
                    flat.node_rules
                        .push(push_slab(&mut flat.rule_slab, rules, ids));
                }
                NodeKind::Internal {
                    cuts,
                    children,
                    stored_rules,
                    cut_region,
                } => {
                    let off = flat.cuts.len() as u32;
                    for d in cuts.cut_dimensions() {
                        let i = d.index();
                        flat.cuts
                            .push(FlatCut::new(i, cuts.parts[i], cut_region[i]));
                    }
                    flat.node_cuts.push(Span {
                        off,
                        len: flat.cuts.len() as u32 - off,
                    });
                    flat.node_child_base.push(flat.children.len() as u32);
                    for &child in children {
                        let slot = &mut map[child as usize];
                        if *slot == u32::MAX {
                            *slot = order.len() as u32;
                            order.push(child);
                        }
                        flat.children.push(*slot);
                    }
                    flat.node_rules
                        .push(push_slab(&mut flat.rule_slab, rules, stored_rules));
                }
            }
        }
        assert!(
            flat.children.len() < u32::MAX as usize
                && flat.rule_slab.len() < u32::MAX as usize
                && flat.cuts.len() < u32::MAX as usize,
            "flat arena slab exceeds u32 addressing"
        );
        // Drop the growth slack so arena_stats' "actual in-memory bytes"
        // claim is true of the allocations, not just the lengths.
        flat.node_cuts.shrink_to_fit();
        flat.node_child_base.shrink_to_fit();
        flat.node_rules.shrink_to_fit();
        flat.cuts.shrink_to_fit();
        flat.children.shrink_to_fit();
        flat.rule_slab.shrink_to_fit();
        flat
    }

    /// Number of node records in the arena.
    pub fn node_count(&self) -> usize {
        self.node_cuts.len()
    }

    /// Sizes and actual in-memory footprint of the arena arrays (the
    /// "Arena" rows of the README's memory table and of
    /// `BENCH_throughput.json`'s `builds` records).
    pub fn arena_stats(&self) -> ArenaStats {
        use std::mem::size_of;
        let structure_bytes = self.node_cuts.len() * (size_of::<Span>() * 2 + size_of::<u32>())
            + self.cuts.len() * size_of::<FlatCut>()
            + self.children.len() * size_of::<u32>();
        ArenaStats {
            nodes: self.node_cuts.len(),
            cut_records: self.cuts.len(),
            child_slots: self.children.len(),
            rule_refs: self.rule_slab.len(),
            arena_bytes: structure_bytes,
            total_bytes: structure_bytes + self.rule_slab.len() * size_of::<PackedRule>(),
        }
    }

    /// Mixed-radix child index of `pkt` under the cut records `span`, or
    /// `None` when the packet lies outside the (compacted) cut region —
    /// the flat mirror of [`CutSpec::child_index`](crate::dtree::CutSpec::child_index).
    #[inline]
    fn child_index(&self, span: Span, pkt: &PacketHeader) -> Option<u64> {
        let mut idx: u64 = 0;
        for cut in &self.cuts[span.range()] {
            let v = pkt.fields[cut.dim as usize];
            if v < cut.lo || v > cut.hi {
                return None;
            }
            idx = idx * u64::from(cut.parts) + u64::from(cut.sub_index(v));
        }
        Some(idx)
    }

    /// Linear scan of a rule-slab span, updating the best (lowest id) match
    /// in `best` (`NO_MATCH` = none yet) and returning the number of rules
    /// compared (for operation accounting).  Mirrors the early-exit logic of
    /// the pointer tree's scan: slab lists are in ascending id order, so the
    /// first hit wins within a list and ids at or above the current best
    /// cannot improve it.
    #[inline]
    fn scan_slab(&self, span: Span, pkt: &PacketHeader, best: &mut u32) -> u64 {
        let mut compared = 0u64;
        for rule in &self.rule_slab[span.range()] {
            compared += 1;
            if rule.id >= *best {
                break;
            }
            if rule.matches(&pkt.fields) {
                *best = rule.id;
                break;
            }
        }
        compared
    }

    /// Classifies one packet by walking the arena, optionally recording the
    /// performed work into `stats` with the same accounting as
    /// [`DecisionTree::classify`].
    pub fn classify(&self, pkt: &PacketHeader, mut stats: Option<&mut LookupStats>) -> MatchResult {
        let mut best = NO_MATCH;
        let mut node = 0usize;
        loop {
            let cuts = self.node_cuts[node];
            let rules = self.node_rules[node];
            if let Some(s) = stats.as_deref_mut() {
                s.memory_accesses += 1;
                s.ops.loads += 2; // node record + cut span
                s.ops.alu += 4;
                s.ops.branches += 1;
            }
            if cuts.len == 0 {
                let compared = self.scan_slab(rules, pkt, &mut best);
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
                break;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.nodes_visited += 1;
            }
            if rules.len > 0 {
                let compared = self.scan_slab(rules, pkt, &mut best);
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
            }
            match self.child_index(cuts, pkt) {
                Some(idx) => {
                    if let Some(s) = stats.as_deref_mut() {
                        let dims = u64::from(cuts.len);
                        s.ops.alu += 3 * dims;
                        s.ops.muls += dims;
                        s.ops.loads += 1;
                    }
                    node =
                        self.children[self.node_child_base[node] as usize + idx as usize] as usize;
                }
                None => break,
            }
        }
        decode(best)
    }

    /// Classifies a batch of packets level-synchronously, appending one
    /// result per packet to `out` in input order.
    ///
    /// All packets advance through tree level *k* before any packet touches
    /// level *k + 1*; combined with the breadth-first record order this
    /// keeps the hot node records of the shallow levels in cache across the
    /// whole batch.  Results are exactly what per-packet
    /// [`FlatTree::classify`] calls would produce.
    pub fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        let n = pkts.len();
        let base = out.len();
        out.resize(base + n, MatchResult::NoMatch);
        if n == 0 {
            return;
        }
        let mut node = vec![0u32; n];
        let mut best = vec![NO_MATCH; n];
        let mut cur: Vec<u32> = (0..n as u32).collect();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        while !cur.is_empty() {
            for &p in &cur {
                let pi = p as usize;
                let nid = node[pi] as usize;
                let cuts = self.node_cuts[nid];
                let rules = self.node_rules[nid];
                let pkt = &pkts[pi];
                if cuts.len == 0 {
                    self.scan_slab(rules, pkt, &mut best[pi]);
                    out[base + pi] = decode(best[pi]);
                    continue;
                }
                if rules.len > 0 {
                    self.scan_slab(rules, pkt, &mut best[pi]);
                }
                match self.child_index(cuts, pkt) {
                    Some(idx) => {
                        node[pi] = self.children[self.node_child_base[nid] as usize + idx as usize];
                        next.push(p);
                    }
                    None => out[base + pi] = decode(best[pi]),
                }
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
        }
    }
}

#[inline]
fn decode(best: u32) -> MatchResult {
    if best == NO_MATCH {
        MatchResult::NoMatch
    } else {
        MatchResult::Matched(best)
    }
}

/// Appends the packed images of `ids` to `slab` and returns the span
/// covering them.
fn push_slab(slab: &mut Vec<PackedRule>, rules: &[Rule], ids: &[RuleId]) -> Span {
    let off = slab.len() as u32;
    slab.extend(ids.iter().map(|&id| PackedRule::new(&rules[id as usize])));
    Span {
        off,
        len: ids.len() as u32,
    }
}

/// Per-scanned-rule operation accounting, identical to the pointer tree's.
fn count_scan(s: &mut LookupStats, compared: u64) {
    s.rules_compared += compared;
    s.memory_accesses += compared;
    s.ops.loads += 5 * compared;
    s.ops.alu += 10 * compared;
    s.ops.branches += 5 * compared;
}

/// A [`Classifier`] serving a [`FlatTree`] arena.
///
/// Obtained from a built pointer-tree classifier via
/// [`HiCutsClassifier::flatten`] or [`HyperCutsClassifier::flatten`]; the
/// serving roster registers these as `hicuts-flat` / `hypercuts-flat`, so
/// the engine, the equivalence tests and the `throughput` harness pick the
/// flat variants up with no extra glue.
#[derive(Debug, Clone)]
pub struct FlatTreeClassifier {
    name: &'static str,
    flat: FlatTree,
    worst_case_accesses: u64,
}

impl FlatTreeClassifier {
    /// Wraps a flattened tree under a roster name.
    pub fn new(name: &'static str, flat: FlatTree, worst_case_accesses: u64) -> FlatTreeClassifier {
        FlatTreeClassifier {
            name,
            flat,
            worst_case_accesses,
        }
    }

    /// The underlying arena.
    pub fn flat_tree(&self) -> &FlatTree {
        &self.flat
    }

    /// Arena footprint statistics (recorded per build by the `throughput`
    /// harness).
    pub fn arena_stats(&self) -> ArenaStats {
        self.flat.arena_stats()
    }
}

impl Classifier for FlatTreeClassifier {
    fn name(&self) -> &'static str {
        self.name
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.flat.classify(pkt, None)
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        self.flat.classify_batch(pkts, out);
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        self.flat.classify(pkt, Some(stats))
    }

    fn memory_bytes(&self) -> usize {
        // The arena is measured by its actual in-memory bytes (that is the
        // point of the layout), not by the idealised 32-bit software model
        // the pointer trees report under.
        self.flat.arena_stats().total_bytes
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.worst_case_accesses)
    }
}

impl HiCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hicuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hicuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

impl HyperCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hypercuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hypercuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hicuts::HiCutsConfig;
    use crate::hypercuts::HyperCutsConfig;
    use pclass_types::toy;

    fn toy_flat() -> (HiCutsClassifier, FlatTreeClassifier) {
        let rs = toy::table1_ruleset();
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::figure1());
        let flat = hc.flatten();
        (hc, flat)
    }

    #[test]
    fn flat_agrees_with_pointer_tree_per_packet() {
        let (hc, flat) = toy_flat();
        for f0 in (0..=255u32).step_by(3) {
            for f4 in (0..=255u32).step_by(5) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(flat.classify(&pkt), hc.classify(&pkt), "pkt {pkt:?}");
            }
        }
    }

    #[test]
    fn flat_batch_matches_per_packet_all_batch_sizes() {
        let rs = toy::table1_ruleset();
        let hc = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
        let flat = hc.flatten();
        let pkts: Vec<PacketHeader> = (0..97u32)
            .map(|i| {
                PacketHeader::from_fields([(i * 37) % 256, 80, 40, (i * 11) % 256, (i * 53) % 256])
            })
            .collect();
        let per_packet: Vec<MatchResult> = pkts.iter().map(|p| flat.classify(p)).collect();
        for take in [0usize, 1, 2, 7, 96, 97] {
            let mut out = Vec::new();
            flat.classify_batch(&pkts[..take], &mut out);
            assert_eq!(out, per_packet[..take], "batch size {take}");
        }
    }

    #[test]
    fn batch_appends_after_existing_results() {
        let (_, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut out = vec![MatchResult::NoMatch];
        flat.classify_batch(&[pkt], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], flat.classify(&pkt));
    }

    #[test]
    fn root_is_record_zero_and_shared_leaves_are_deduplicated() {
        let (hc, flat) = toy_flat();
        let tree_nodes = hc.tree().nodes().len();
        // BFS renumbering visits each node at most once, so the arena can
        // only shrink relative to the node vector (unreachable nodes drop).
        assert!(flat.flat_tree().node_count() <= tree_nodes);
        assert!(flat.flat_tree().node_count() >= 2);
    }

    #[test]
    fn arena_stats_are_consistent() {
        let (hc, flat) = toy_flat();
        let stats = flat.arena_stats();
        assert_eq!(stats.nodes, flat.flat_tree().node_count());
        assert!(stats.cut_records >= 1);
        assert!(stats.child_slots >= 2);
        assert!(stats.arena_bytes > 0);
        assert!(stats.total_bytes > stats.arena_bytes);
        assert_eq!(flat.memory_bytes(), stats.total_bytes);
        assert_eq!(
            flat.worst_case_memory_accesses(),
            Some(hc.tree().stats().worst_case_accesses)
        );
        assert_eq!(flat.name(), "hicuts-flat");
    }

    #[test]
    fn lookup_stats_match_pointer_tree_accounting() {
        let (hc, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut a = LookupStats::new();
        let mut b = LookupStats::new();
        assert_eq!(
            hc.classify_with_stats(&pkt, &mut a),
            flat.classify_with_stats(&pkt, &mut b)
        );
        assert_eq!(a.nodes_visited, b.nodes_visited);
        assert_eq!(a.rules_compared, b.rules_compared);
        assert_eq!(a.memory_accesses, b.memory_accesses);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn empty_ruleset_flattens_to_single_leaf() {
        let spec = *toy::table1_ruleset().spec();
        let empty = pclass_types::RuleSet::new("empty", spec, vec![]).unwrap();
        let hc = HiCutsClassifier::build(&empty, &HiCutsConfig::paper_defaults());
        let flat = hc.flatten();
        assert_eq!(flat.flat_tree().node_count(), 1);
        let pkt = PacketHeader::from_fields([1, 2, 3, 4, 5]);
        assert_eq!(flat.classify(&pkt), MatchResult::NoMatch);
        let mut out = Vec::new();
        flat.classify_batch(&[pkt, pkt], &mut out);
        assert_eq!(out, vec![MatchResult::NoMatch; 2]);
    }
}
