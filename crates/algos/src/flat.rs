//! Cache-compact flat arena representation of a decision tree, with a
//! batched level-synchronous traversal.
//!
//! The pointer trees built by [`crate::hicuts`] and [`crate::hypercuts`]
//! classify one packet at a time by chasing [`NodeId`] indirections through
//! an enum-of-`Vec`s [`DecisionTree`]: every step loads a large [`Node`]
//! (a 40-byte region, a depth, and a `NodeKind` whose `Vec` payloads live in
//! separate heap allocations), so a traversal is a chain of dependent cache
//! misses — exactly the memory-latency wall the HiCuts and HyperCuts papers
//! identify as the cost of decision-tree classification.
//!
//! [`FlatTree`] re-packs a built tree into a handful of dense arrays:
//!
//! * one **64-byte, cache-line-aligned record per node** (`NodeRec`):
//!   the rule-slab span, the child-base index, the cut count (0 marks a
//!   leaf), the overflow mark *and the node's first cut record inline* —
//!   everything one walk step needs before branching, in exactly one
//!   potential cache miss;
//! * one shared **cut slab** of `(dimension, parts, lo, hi, magics)`
//!   records for cuts past each node's first (HyperCuts' extra
//!   dimensions; empty for HiCuts trees), in dimension order so the
//!   mixed-radix child index of
//!   [`CutSpec::child_index`](crate::dtree::CutSpec::child_index) is reproduced exactly;
//! * one shared **child slab** holding every child pointer array
//!   back-to-back, addressed by `(child_base + index)`;
//! * one shared **rule slab** with all leaf rule lists and pushed-up rule
//!   lists packed end to end as inline rule *images* (id + the five range
//!   pairs), addressed by `(offset, len)` — a leaf scan is one sequential
//!   read, with no second indirection into a rules array.
//!
//! Nodes are renumbered in breadth-first discovery order during
//! [`FlatTree::from_tree`], so the records of one tree level are contiguous
//! in memory.  [`FlatTree::classify_batch`] exploits that: it advances a
//! whole batch of packets one level at a time (a per-batch worklist), so the
//! node records of the hot top levels are touched by every packet while they
//! are still in cache — the tree analogue of RFC's phase-major batched loop.
//!
//! The flat traversal is decision-for-decision identical to
//! [`DecisionTree::classify`]; the property tests in
//! `tests/flat_equivalence.rs` enforce this packet-for-packet across random
//! rulesets, builder configurations and batch sizes.
//!
//! # Vectorised lane walk
//!
//! [`FlatTree::classify_batch`] does not merely iterate the worklist packet
//! by packet: it advances the level-synchronous worklist in **lanes** of
//! [`LaneWidth`] packets (hand-unrolled fixed-size arrays — no nightly
//! `std::simd`).  Each lane step first gathers one word from all `N` node
//! records with no branches in between, so the `N` one-line records are
//! fetched as overlapped, independent cache misses — memory-level
//! parallelism where the packet-at-a-time walk would serialise behind one
//! miss at a time — and then finishes each lane over the now-hot lines:
//!
//! * the per-cut `index_of` partition arithmetic runs over parameters
//!   precomputed at flatten time; the one division the lookup formula
//!   needs is replaced by a Granlund–Montgomery/Lemire multiply-shift
//!   *magic* (`FlatCut::new` stores `ceil(2^64 / divisor)`; a 64-bit
//!   high-multiply then divides exactly for every 32-bit offset), so the
//!   hot loop contains no division at all — and the first cut record is
//!   read straight off the node's record line, never from the cut slab;
//! * leaf and stored-rule scans compare the packed rule images **branch
//!   free** in blocks of `SCAN_BLOCK`: all five range pairs of a block
//!   are tested with non-short-circuiting compares into a bitmask and the
//!   first match is taken from the mask, preserving the scalar early-exit
//!   semantics (ids are ascending, so the first match is the best one);
//! * on advancing a packet, the walk issues a **portable read-ahead
//!   touch** (the crate forbids `unsafe`, so a `std::hint::black_box`
//!   read stands in for `_mm_prefetch`) of one word of the child's record
//!   line — a full level of work ahead of its use, so the next level's
//!   gather finds the line in cache.  Touches are only issued for arenas
//!   larger than `PREFETCH_MIN_BYTES`; a cache-resident arena gains
//!   nothing from them.
//!
//! The scalar walk remains as [`FlatTree::classify`] (the per-packet path
//! and the differential-test oracle) and serves worklist tails shorter
//! than a lane; `tests/vector_walk.rs` property-tests the lane walk
//! against it packet-for-packet across rulesets, lane widths, odd tail
//! sizes and post-churn arenas with live overflow entries.
//!
//! A second measured negative result, for the record: building with
//! `-C target-cpu=native` (AVX2/AVX-512 codegen on the reference host)
//! benchmarks *slower* than the portable x86-64 baseline on every arena
//! size — the walk's throughput is bounded by cache misses and branch
//! resolution, not by the width of its compare instructions, and the
//! wider vectors cost frequency.  The workspace therefore ships no
//! target-feature configuration; the vectorisation that pays here is the
//! memory-level kind, not the ALU kind.
//!
//! # Incremental updates
//!
//! The arena is *patchable in place* ([`FlatTree::insert`] /
//! [`FlatTree::delete`]): an update descends only the subtrees the rule's
//! ranges intersect (un-sharing merged leaves on the way down, exactly like
//! the pointer tree) and edits the leaf's rule span inside the slab.  A
//! delete shrinks the span, leaving a free slot of *slack* behind; an
//! insert first fills span slack and only when the span is full parks the
//! rule in a per-node **overflow side-table**, which lookups scan after the
//! span (a one-byte per-node mark keeps the static path free of hash
//! lookups).  The fraction of rules living outside their span — the
//! [`FlatTree::dirty_ratio`] — is what degrades the cache-compact layout,
//! so once it crosses a threshold [`FlatTreeClassifier`] triggers an
//! amortized [`FlatTree::reflatten`]: one sequential compaction pass that
//! rebuilds the slabs from the live node graph (no tree rebuild) and
//! re-provisions every span with fresh slack.

use crate::counters::LookupStats;
use crate::dtree::{DecisionTree, Node, NodeId, NodeKind};
use crate::hicuts::HiCutsClassifier;
use crate::hypercuts::HyperCutsClassifier;
use crate::update::UpdateError;
use crate::Classifier;
use pclass_types::{
    ArenaStats, Dimension, DimensionSpec, FieldRange, MatchResult, PacketHeader, Rule, RuleId,
    UpdateStats, FIELD_COUNT,
};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no match found yet" in the batched traversal (no rule id
/// can take this value: build-time ids equal ruleset positions, and
/// [`FlatTree::insert`] rejects ids at or above the sparse-id limit, which
/// is always below this sentinel).
const NO_MATCH: u32 = u32::MAX;

/// Number of packets one vectorised worklist lane advances together (the
/// `N` of the hand-unrolled `u32xN` arrays in the lane walk).
///
/// [`LaneWidth::Scalar`] is the per-packet fallback — the oracle the
/// property tests compare the vector widths against, and the tail path for
/// worklist levels shorter than a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneWidth {
    /// Per-packet worklist walk (lane width 1).
    Scalar,
    /// Lanes of 4 packets.
    X4,
    /// Lanes of 8 packets — the default: wide enough to overlap the
    /// dependent-load chains, narrow enough that a level's sub-lane tail
    /// stays cheap.
    #[default]
    X8,
    /// Lanes of 16 packets.
    X16,
}

impl LaneWidth {
    /// Every lane width, scalar first (test sweeps iterate this).
    pub const ALL: [LaneWidth; 4] = [
        LaneWidth::Scalar,
        LaneWidth::X4,
        LaneWidth::X8,
        LaneWidth::X16,
    ];

    /// The lane width as a packet count.
    pub fn width(self) -> usize {
        match self {
            LaneWidth::Scalar => 1,
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
            LaneWidth::X16 => 16,
        }
    }

    /// The widest supported lane width not exceeding `w` packets
    /// (`0` and `1` select the scalar walk).
    pub fn from_width(w: usize) -> LaneWidth {
        match w {
            0..=3 => LaneWidth::Scalar,
            4..=7 => LaneWidth::X4,
            8..=15 => LaneWidth::X8,
            _ => LaneWidth::X16,
        }
    }
}

/// Rules per branch-free scan block: the five range pairs of a whole block
/// are compared without short-circuiting into one bitmask, and only then
/// is the first match selected — data-dependent branches happen once per
/// block instead of once per rule.
const SCAN_BLOCK: usize = 4;

/// Serving-image size below which read-ahead touches are skipped: a
/// cache-resident arena cannot miss, so the touches would be pure
/// instruction overhead.  Set to a typical per-core L2 size.
const PREFETCH_MIN_BYTES: usize = 1 << 20;

/// A `(offset, len)` span into one of the shared slabs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    off: u32,
    len: u32,
}

impl Span {
    #[inline]
    fn range(self) -> std::ops::Range<usize> {
        self.off as usize..(self.off + self.len) as usize
    }
}

/// One cut dimension of an internal node: `parts` equal-width partitions of
/// the (possibly compacted) region `[lo, hi]` along dimension `dim`.
///
/// Records of one node are stored consecutively in dimension order, so
/// folding them most-significant-first reproduces the mixed-radix child
/// index of the pointer tree.
///
/// The partition parameters of [`FieldRange::index_of`] (`base` child
/// width, `rem` leading children one wider, `wide_span = rem * (base+1)`)
/// depend only on the region and `parts`, so they are precomputed at
/// flatten time.  The one division the lookup formula still needs is
/// replaced by a multiply-shift *magic*: for a 32-bit divisor `d`,
/// `m = ceil(2^64 / d)` makes `(offset * m) >> 64` an **exact** quotient
/// for every 32-bit `offset` (Granlund–Montgomery; the 32/64-bit bound is
/// Lemire & Kaser's), so the per-packet child selection is two multiplies
/// — no division at all, the same division-removal idea the paper applies
/// in its hardware-oriented cut algorithms, taken one step further.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlatCut {
    dim: u32,
    parts: u32,
    lo: u32,
    hi: u32,
    /// Number of leading children of width `base + 1`.
    rem: u32,
    /// `rem * (base + 1)`: offsets below this fall in a wide child.
    wide_span: u32,
    /// `ceil(2^64 / (base + 1))`: magic divisor for the wide children —
    /// or 0 when `parts >= region_len`, where the child index is just the
    /// offset (no divisor exists; doubles as the *direct* flag).
    m_wide: u64,
    /// `ceil(2^64 / base)`, or 0 when `base == 1` (divide-by-one needs no
    /// multiply; `ceil(2^64/1)` would not fit in 64 bits).
    m_base: u64,
}

/// `ceil(2^64 / d)` for `2 <= d < 2^32`: the multiply-shift magic making
/// `mul_hi64(n, magic(d)) == n / d` exact for every `n < 2^32`.
fn division_magic(d: u64) -> u64 {
    debug_assert!(d >= 2);
    (u64::MAX / d) + 1
}

/// High 64 bits of the 128-bit product — one `mul` instruction on 64-bit
/// targets.
#[inline]
fn mul_hi64(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) >> 64) as u64
}

impl FlatCut {
    /// Builds a cut record for `parts` partitions of `[lo, hi]` along
    /// dimension index `dim`.
    fn new(dim: usize, parts: u32, region: FieldRange) -> FlatCut {
        let total = region.len();
        let direct = u64::from(parts) >= total;
        let (base, rem) = if direct {
            (0, 0)
        } else {
            (total / u64::from(parts), total % u64::from(parts))
        };
        // rem * (base + 1) < total <= 2^32, so the narrowing casts are exact
        // (parts >= 2 for any real cut keeps base below 2^31).
        FlatCut {
            dim: dim as u32,
            parts,
            lo: region.lo,
            hi: region.hi,
            rem: rem as u32,
            wide_span: (rem * (base + 1)) as u32,
            // base == 0 only when direct; m_wide == 0 encodes direct.
            m_wide: if direct { 0 } else { division_magic(base + 1) },
            m_base: if direct || base == 1 {
                0
            } else {
                division_magic(base)
            },
        }
    }

    /// Filler for the inline cut slot of leaf records; never read because
    /// the cut count in [`NodeRec::meta`] guards every access.
    const DEAD: FlatCut = FlatCut {
        dim: 0,
        parts: 0,
        lo: 0,
        hi: 0,
        rem: 0,
        wide_span: 0,
        m_wide: 0,
        m_base: 0,
    };

    /// Index of the child containing `v`, mirroring
    /// [`FieldRange::index_of`] over the precomputed parameters — division
    /// free (see the struct docs).  The caller has already checked
    /// `lo <= v <= hi`.
    #[inline]
    fn sub_index(&self, v: u32) -> u32 {
        let offset = u64::from(v - self.lo);
        if self.m_wide == 0 {
            offset as u32
        } else if offset < u64::from(self.wide_span) {
            mul_hi64(offset, self.m_wide) as u32
        } else {
            let narrow = offset - u64::from(self.wide_span);
            // m_base == 0 encodes base == 1: dividing by one is identity.
            let q = if self.m_base == 0 {
                narrow
            } else {
                mul_hi64(narrow, self.m_base)
            };
            self.rem + q as u32
        }
    }
}

/// Bit of [`NodeRec::meta`] marking a node with overflow rules; the low
/// bits hold the cut count.
const META_OVERFLOW: u32 = 1 << 31;

/// The hot per-node record: **exactly one cache line**, 64-byte aligned,
/// holding everything a walk step needs before it knows which way to go —
/// the stored-rule span, the child base, the cut count, the overflow mark
/// *and the first cut record inline*.
///
/// The PR 3 arena kept these as parallel struct-of-arrays vectors (cut
/// span, child base, rule span, overflow mark) plus the shared cut slab;
/// on arenas past cache size that made one internal-node visit four to
/// five potential cache misses.  Folding them into a single aligned line
/// makes a visit cost one miss for the record (first cut included — every
/// HiCuts node and the first dimension of every HyperCuts node pay no
/// cut-slab access at all) plus one for the child pointer.  Only cut
/// records past the first (HyperCuts' extra dimensions) live in the
/// shared `cuts` slab, at `rest_off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
struct NodeRec {
    /// Span into `rule_slab`: the leaf rules of a leaf, the pushed-up
    /// stored rules of an internal node.
    rules: Span,
    /// Base index into `children` (unused for leaves).
    child_base: u32,
    /// Cut count in the low bits (0 marks a leaf), [`META_OVERFLOW`] when
    /// the node has overflow rules.
    meta: u32,
    /// Offset into `cuts` of cut records `1..cut_count` (the first is
    /// inline in `cut0`).
    rest_off: u32,
    /// The node's first cut record, inline (valid when `cut_count > 0`).
    cut0: FlatCut,
}

impl NodeRec {
    /// A leaf record over a rule span.
    fn leaf(rules: Span) -> NodeRec {
        NodeRec {
            rules,
            child_base: 0,
            meta: 0,
            rest_off: 0,
            cut0: FlatCut::DEAD,
        }
    }

    /// Number of cut records (0 for leaves).
    #[inline]
    fn cut_count(&self) -> u32 {
        self.meta & !META_OVERFLOW
    }

    /// Whether the node has rules in the overflow side-table.
    #[inline]
    fn has_overflow(&self) -> bool {
        self.meta & META_OVERFLOW != 0
    }
}

/// A rule image packed into the rule slab: the id (= priority) and the
/// five `[lo, hi]` range pairs, inline.
///
/// Storing the image instead of a rule *id* makes a leaf scan one
/// sequential read over the slab — no second indirection into a rules
/// array — the same idea as the paper's 144-bit packed software rule
/// images.  The match test is evaluated branch-free over all five
/// dimensions (non-lazy `&`), which trades a handful of always-executed
/// compares for the data-dependent branch mispredictions of the
/// short-circuiting [`Rule::matches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedRule {
    id: RuleId,
    lo: [u32; FIELD_COUNT],
    hi: [u32; FIELD_COUNT],
}

impl PackedRule {
    /// Filler image for unused slack slots inside a span (`len..cap`);
    /// never scanned because `len` guards every read.
    const DEAD: PackedRule = PackedRule {
        id: u32::MAX,
        lo: [0; FIELD_COUNT],
        hi: [0; FIELD_COUNT],
    };

    fn new(rule: &Rule) -> PackedRule {
        PackedRule {
            id: rule.id,
            lo: std::array::from_fn(|d| rule.ranges[d].lo),
            hi: std::array::from_fn(|d| rule.ranges[d].hi),
        }
    }

    /// The rule's ranges, reassembled from the packed image.
    fn ranges(&self) -> [FieldRange; FIELD_COUNT] {
        std::array::from_fn(|d| FieldRange::new(self.lo[d], self.hi[d]))
    }

    #[inline]
    fn matches(&self, fields: &[u32; FIELD_COUNT]) -> bool {
        let mut ok = true;
        for ((&lo, &hi), &v) in self.lo.iter().zip(&self.hi).zip(fields) {
            ok &= (lo <= v) & (v <= hi);
        }
        ok
    }
}

/// A decision tree flattened into contiguous arrays (see the module docs
/// for the layout).  Built from a [`DecisionTree`] with
/// [`FlatTree::from_tree`]; the root is always record 0.  The arena is
/// self-contained: classification touches only these dense arrays (the
/// rule slab stores full rule images, not references).
#[derive(Debug, Clone)]
pub struct FlatTree {
    /// The geometry the tree classifies over (needed to validate inserted
    /// rules and to rebuild a ruleset from the live set).
    spec: DimensionSpec,
    /// One cache-line record per node (see [`NodeRec`]).
    nodes: Vec<NodeRec>,
    /// Per-node capacity of the rule span: slots `len..cap` are free slack
    /// an insert may claim in place.  Always `cap >= len`.  Kept out of
    /// [`NodeRec`]: only the write path reads it.
    node_rule_cap: Vec<u32>,
    /// Shared slab of cut records past each node's first (HyperCuts'
    /// extra dimensions; empty for pure HiCuts trees).
    cuts: Vec<FlatCut>,
    /// Shared child-pointer slab (flat node ids).
    children: Vec<u32>,
    /// Shared packed-rule-image slab.
    rule_slab: Vec<PackedRule>,
    /// Overflow side-table: rules whose node span had no free slot, per
    /// node, in ascending id order.
    overflow: HashMap<u32, Vec<PackedRule>>,
    /// The live rules by id — delete needs the ranges to retrace the
    /// insert descent, and re-flatten verification needs the full set.
    live: BTreeMap<RuleId, PackedRule>,
    /// Per-node reference counts (child slots + 1 for the root), built
    /// lazily by the first update and maintained by un-sharing clones.
    refs: Option<Vec<u32>>,
    /// Update-activity counters since the build (or last re-flatten for
    /// the overflow gauge).
    update_stats: UpdateStats,
}

impl FlatTree {
    /// Flattens a built pointer tree into the arena layout.
    ///
    /// Nodes are renumbered in breadth-first discovery order (root = 0), so
    /// shared nodes (merged leaves, the builders' shared empty leaf) keep a
    /// single record and records of one level stay contiguous.
    pub fn from_tree(tree: &DecisionTree) -> FlatTree {
        let nodes: &[Node] = tree.nodes();
        assert!(
            nodes.len() < u32::MAX as usize,
            "tree too large to flatten: {} nodes",
            nodes.len()
        );
        let mut map = vec![u32::MAX; nodes.len()];
        let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
        map[tree.root() as usize] = 0;
        order.push(tree.root());

        let rules = tree.rules();
        let mut flat = FlatTree {
            spec: *tree.spec(),
            nodes: Vec::with_capacity(nodes.len()),
            node_rule_cap: Vec::with_capacity(nodes.len()),
            cuts: Vec::new(),
            children: Vec::new(),
            rule_slab: Vec::new(),
            overflow: HashMap::new(),
            live: rules
                .iter()
                .filter(|r| tree.is_live(r.id))
                .map(|r| (r.id, PackedRule::new(r)))
                .collect(),
            refs: None,
            update_stats: UpdateStats::default(),
        };

        let mut head = 0usize;
        while head < order.len() {
            let node = &nodes[order[head] as usize];
            head += 1;
            match &node.kind {
                NodeKind::Leaf { rules: ids } => {
                    let span = push_slab(&mut flat.rule_slab, rules, ids);
                    flat.nodes.push(NodeRec::leaf(span));
                    flat.node_rule_cap.push(span.len);
                }
                NodeKind::Internal {
                    cuts,
                    children,
                    stored_rules,
                    cut_region,
                } => {
                    let mut cut0 = FlatCut::DEAD;
                    let rest_off = flat.cuts.len() as u32;
                    let mut count = 0u32;
                    for d in cuts.cut_dimensions() {
                        let i = d.index();
                        let rec = FlatCut::new(i, cuts.parts[i], cut_region[i]);
                        if count == 0 {
                            cut0 = rec;
                        } else {
                            flat.cuts.push(rec);
                        }
                        count += 1;
                    }
                    let child_base = flat.children.len() as u32;
                    for &child in children {
                        let slot = &mut map[child as usize];
                        if *slot == u32::MAX {
                            *slot = order.len() as u32;
                            order.push(child);
                        }
                        flat.children.push(*slot);
                    }
                    let span = push_slab(&mut flat.rule_slab, rules, stored_rules);
                    flat.nodes.push(NodeRec {
                        rules: span,
                        child_base,
                        meta: count,
                        rest_off,
                        cut0,
                    });
                    flat.node_rule_cap.push(span.len);
                }
            }
        }
        assert!(
            flat.children.len() < u32::MAX as usize
                && flat.rule_slab.len() < u32::MAX as usize
                && flat.cuts.len() < u32::MAX as usize,
            "flat arena slab exceeds u32 addressing"
        );
        // Drop the growth slack so arena_stats' "actual in-memory bytes"
        // claim is true of the allocations, not just the lengths.
        flat.nodes.shrink_to_fit();
        flat.node_rule_cap.shrink_to_fit();
        flat.cuts.shrink_to_fit();
        flat.children.shrink_to_fit();
        flat.rule_slab.shrink_to_fit();
        flat
    }

    /// Number of node records in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The `k`-th cut record of a node record: the first is inline, the
    /// rest come from the shared slab.
    #[inline]
    fn cut_at<'a>(&'a self, rec: &'a NodeRec, k: u32) -> &'a FlatCut {
        if k == 0 {
            &rec.cut0
        } else {
            &self.cuts[(rec.rest_off + k - 1) as usize]
        }
    }

    /// Sizes and actual in-memory footprint of the arena arrays (the
    /// "Arena" rows of the README's memory table and of
    /// `BENCH_throughput.json`'s `builds` records).
    ///
    /// Counts the *serving image* — node records, slabs and overflow
    /// rules, everything a lookup can touch — not the write-path
    /// bookkeeping (`live` map, lazy refcounts; see
    /// [`ArenaStats`]'s docs).
    pub fn arena_stats(&self) -> ArenaStats {
        use std::mem::size_of;
        // Per node: the one-line record (first cut inline) plus the
        // write-path rule-span capacity.
        let structure_bytes = self.nodes.len() * (size_of::<NodeRec>() + size_of::<u32>())
            + self.cuts.len() * size_of::<FlatCut>()
            + self.children.len() * size_of::<u32>();
        let overflow_rules: usize = self.overflow.values().map(Vec::len).sum();
        ArenaStats {
            nodes: self.nodes.len(),
            // Slab records plus the inline first cut of every internal node.
            cut_records: self.cuts.len() + self.nodes.iter().filter(|r| r.cut_count() > 0).count(),
            child_slots: self.children.len(),
            rule_refs: self.rule_slab.len() + overflow_rules,
            arena_bytes: structure_bytes,
            total_bytes: structure_bytes
                + (self.rule_slab.len() + overflow_rules) * size_of::<PackedRule>(),
        }
    }

    /// Mixed-radix child index of `pkt` under an internal node's cut
    /// records (first inline, rest from the slab), or `None` when the
    /// packet lies outside the (compacted) cut region — the flat mirror of
    /// [`CutSpec::child_index`](crate::dtree::CutSpec::child_index).
    #[inline]
    fn child_index(&self, rec: &NodeRec, pkt: &PacketHeader) -> Option<u64> {
        let mut idx: u64 = 0;
        for k in 0..rec.cut_count() {
            let cut = self.cut_at(rec, k);
            let v = pkt.fields[cut.dim as usize];
            if v < cut.lo || v > cut.hi {
                return None;
            }
            idx = idx * u64::from(cut.parts) + u64::from(cut.sub_index(v));
        }
        Some(idx)
    }

    /// Linear scan of a rule-slab span, updating the best (lowest id) match
    /// in `best` (`NO_MATCH` = none yet) and returning the number of rules
    /// compared (for operation accounting).  Mirrors the early-exit logic of
    /// the pointer tree's scan: slab lists are in ascending id order, so the
    /// first hit wins within a list and ids at or above the current best
    /// cannot improve it.
    #[inline]
    fn scan_slab(&self, span: Span, pkt: &PacketHeader, best: &mut u32) -> u64 {
        let mut compared = 0u64;
        for rule in &self.rule_slab[span.range()] {
            compared += 1;
            if rule.id >= *best {
                break;
            }
            if rule.matches(&pkt.fields) {
                *best = rule.id;
                break;
            }
        }
        compared
    }

    /// Whether the lane walk should issue read-ahead touches: only when
    /// the serving image outgrows [`PREFETCH_MIN_BYTES`] (a cache-resident
    /// arena cannot miss).  Deliberately cheaper than
    /// [`FlatTree::arena_stats`] — no overflow-table walk — because it
    /// runs once per served batch.
    #[inline]
    fn prefetch_hint(&self) -> bool {
        use std::mem::size_of;
        let bytes = self.rule_slab.len() * size_of::<PackedRule>()
            + self.nodes.len() * size_of::<NodeRec>()
            + self.children.len() * size_of::<u32>()
            + self.cuts.len() * size_of::<FlatCut>();
        bytes > PREFETCH_MIN_BYTES
    }

    /// Scans a node's overflow list with the same early-exit semantics as
    /// [`FlatTree::scan_slab`].  Called only when the node's overflow mark
    /// is set, so the untouched (no-churn) hot path never hashes.
    #[inline]
    fn scan_overflow(&self, node: u32, pkt: &PacketHeader, best: &mut u32) -> u64 {
        let Some(list) = self.overflow.get(&node) else {
            return 0;
        };
        let mut compared = 0u64;
        for rule in list {
            compared += 1;
            if rule.id >= *best {
                break;
            }
            if rule.matches(&pkt.fields) {
                *best = rule.id;
                break;
            }
        }
        compared
    }

    /// Classifies one packet by walking the arena, optionally recording the
    /// performed work into `stats` with the same accounting as
    /// [`DecisionTree::classify`].
    pub fn classify(&self, pkt: &PacketHeader, mut stats: Option<&mut LookupStats>) -> MatchResult {
        let mut best = NO_MATCH;
        let mut node = 0usize;
        loop {
            let rec = self.nodes[node];
            let rules = rec.rules;
            if let Some(s) = stats.as_deref_mut() {
                s.memory_accesses += 1;
                s.ops.loads += 2; // node record + cut span
                s.ops.alu += 4;
                s.ops.branches += 1;
            }
            if rec.cut_count() == 0 {
                let mut compared = self.scan_slab(rules, pkt, &mut best);
                if rec.has_overflow() {
                    compared += self.scan_overflow(node as u32, pkt, &mut best);
                }
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
                break;
            }
            if let Some(s) = stats.as_deref_mut() {
                s.nodes_visited += 1;
            }
            if rules.len > 0 || rec.has_overflow() {
                let mut compared = self.scan_slab(rules, pkt, &mut best);
                if rec.has_overflow() {
                    compared += self.scan_overflow(node as u32, pkt, &mut best);
                }
                if let Some(s) = stats.as_deref_mut() {
                    count_scan(s, compared);
                }
            }
            match self.child_index(&rec, pkt) {
                Some(idx) => {
                    if let Some(s) = stats.as_deref_mut() {
                        let dims = u64::from(rec.cut_count());
                        s.ops.alu += 3 * dims;
                        s.ops.muls += dims;
                        s.ops.loads += 1;
                    }
                    node = self.children[rec.child_base as usize + idx as usize] as usize;
                }
                None => break,
            }
        }
        decode(best)
    }

    /// Classifies a batch of packets level-synchronously with the default
    /// [`LaneWidth`], appending one result per packet to `out` in input
    /// order.
    ///
    /// All packets advance through tree level *k* before any packet touches
    /// level *k + 1*; combined with the breadth-first record order this
    /// keeps the hot node records of the shallow levels in cache across the
    /// whole batch.  Results are exactly what per-packet
    /// [`FlatTree::classify`] calls would produce; see the module docs for
    /// the vectorised lane walk this dispatches to.
    pub fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        self.classify_batch_lanes(pkts, out, LaneWidth::default());
    }

    /// [`FlatTree::classify_batch`] with an explicit lane width —
    /// [`LaneWidth::Scalar`] serves the batch through the per-packet
    /// worklist step (the differential-test oracle), the vector widths
    /// through the hand-unrolled lane walk.  Results are identical for
    /// every width.
    pub fn classify_batch_lanes(
        &self,
        pkts: &[PacketHeader],
        out: &mut Vec<MatchResult>,
        lanes: LaneWidth,
    ) {
        let n = pkts.len();
        let base = out.len();
        out.resize(base + n, MatchResult::NoMatch);
        if n == 0 {
            return;
        }
        let out = &mut out[base..];
        match lanes {
            LaneWidth::Scalar => self.walk_scalar(pkts, out),
            LaneWidth::X4 => self.walk_lanes::<4>(pkts, out),
            LaneWidth::X8 => self.walk_lanes::<8>(pkts, out),
            LaneWidth::X16 => self.walk_lanes::<16>(pkts, out),
        }
    }

    /// One worklist step of one packet: scan what the node stores, then
    /// either finish the packet (leaf, or outside the cut region) or
    /// advance it to its child and keep it on the worklist.  Shared by the
    /// scalar batch walk and the lane walk's tail.
    #[inline]
    fn step_packet(
        &self,
        pkts: &[PacketHeader],
        p: u32,
        node: &mut [u32],
        best: &mut [u32],
        out: &mut [MatchResult],
        next: &mut Vec<u32>,
    ) {
        let pi = p as usize;
        let nid = node[pi] as usize;
        let rec = self.nodes[nid];
        let pkt = &pkts[pi];
        if rec.cut_count() == 0 {
            self.scan_slab(rec.rules, pkt, &mut best[pi]);
            if rec.has_overflow() {
                self.scan_overflow(nid as u32, pkt, &mut best[pi]);
            }
            out[pi] = decode(best[pi]);
            return;
        }
        if rec.rules.len > 0 {
            self.scan_slab(rec.rules, pkt, &mut best[pi]);
        }
        if rec.has_overflow() {
            self.scan_overflow(nid as u32, pkt, &mut best[pi]);
        }
        match self.child_index(&rec, pkt) {
            Some(idx) => {
                node[pi] = self.children[rec.child_base as usize + idx as usize];
                next.push(p);
            }
            None => out[pi] = decode(best[pi]),
        }
    }

    /// The scalar level-synchronous walk (lane width 1): one packet at a
    /// time through [`FlatTree::step_packet`].
    fn walk_scalar(&self, pkts: &[PacketHeader], out: &mut [MatchResult]) {
        let n = pkts.len();
        let mut node = vec![0u32; n];
        let mut best = vec![NO_MATCH; n];
        let mut cur: Vec<u32> = (0..n as u32).collect();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        while !cur.is_empty() {
            for &p in &cur {
                self.step_packet(pkts, p, &mut node, &mut best, out, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
        }
    }

    /// The vectorised walk: the worklist of every level is served in lanes
    /// of `L` packets (see the module docs).  Full lanes go through
    /// [`FlatTree::step_lane`]; the sub-lane tail of each level falls back
    /// to the scalar step.
    ///
    /// The worklist is served in trace order.  (Re-sorting each level by
    /// node id was tried for locality and measured *slower* on the large
    /// DRAM-bound arenas: the sort's own passes over the worklist cost
    /// more than the extra row-buffer hits saved.)
    fn walk_lanes<const L: usize>(&self, pkts: &[PacketHeader], out: &mut [MatchResult]) {
        let n = pkts.len();
        let mut node = vec![0u32; n];
        let mut best = vec![NO_MATCH; n];
        let mut cur: Vec<u32> = (0..n as u32).collect();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        let prefetch = self.prefetch_hint();
        while !cur.is_empty() {
            let m = cur.len();
            let mut start = 0usize;
            while start + L <= m {
                self.step_lane::<L>(
                    pkts,
                    &cur[start..start + L],
                    &mut node,
                    &mut best,
                    out,
                    &mut next,
                    prefetch,
                );
                start += L;
            }
            for &p in &cur[start..m] {
                self.step_packet(pkts, p, &mut node, &mut best, out, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
        }
    }

    /// One level step of a full lane of `L` packets, in three
    /// lane-parallel stages: gather the `L` one-line node records (`L`
    /// independent loads with no branches between them, so their cache
    /// misses overlap — the lane walk's memory-level parallelism), run the
    /// per-cut partition arithmetic across lanes (fixed-size arrays, the
    /// division-free magics of [`FlatCut`]), then scan/advance each lane —
    /// touching the next level's record as soon as the child is known, a
    /// full level of work ahead of its use.
    #[allow(clippy::too_many_arguments)] // hot-path state is deliberately SoA
    #[inline]
    fn step_lane<const L: usize>(
        &self,
        pkts: &[PacketHeader],
        lane: &[u32],
        node: &mut [u32],
        best: &mut [u32],
        out: &mut [MatchResult],
        next: &mut Vec<u32>,
        prefetch: bool,
    ) {
        // Stage 1: gather one word of each lane's node record (the record
        // is one aligned line, so this issues exactly one potential miss
        // per lane with no branches in between — the misses overlap, and
        // the full line is hot for the later stages).
        let mut nid = [0usize; L];
        for i in 0..L {
            nid[i] = node[lane[i] as usize] as usize;
        }
        let mut meta = [0u32; L];
        for i in 0..L {
            meta[i] = self.nodes[nid[i]].meta;
        }
        let meta = std::hint::black_box(meta);

        // Stage 2: cut arithmetic, block scans and advancement per lane,
        // reading the now-hot record lines.  The first cut comes straight
        // off the record line, so HiCuts nodes (and the first HyperCuts
        // dimension) never touch the cut slab.
        for i in 0..L {
            let rec = self.nodes[nid[i]];
            let pi = lane[i] as usize;
            let fields = &pkts[pi].fields;
            if meta[i] & !META_OVERFLOW == 0 {
                scan_rules_blocks(&self.rule_slab[rec.rules.range()], fields, &mut best[pi]);
                if rec.has_overflow() {
                    if let Some(list) = self.overflow.get(&(nid[i] as u32)) {
                        scan_rules_blocks(list, fields, &mut best[pi]);
                    }
                }
                out[pi] = decode(best[pi]);
                continue;
            }
            if rec.rules.len > 0 {
                scan_rules_blocks(&self.rule_slab[rec.rules.range()], fields, &mut best[pi]);
            }
            if rec.has_overflow() {
                if let Some(list) = self.overflow.get(&(nid[i] as u32)) {
                    scan_rules_blocks(list, fields, &mut best[pi]);
                }
            }
            match self.child_index(&rec, &pkts[pi]) {
                Some(idx) => {
                    let child = self.children[rec.child_base as usize + idx as usize] as usize;
                    node[pi] = child as u32;
                    if prefetch {
                        // Read-ahead: one word of the child's record line,
                        // pulled a full level of work ahead of its use so
                        // the next gather finds it in cache.
                        std::hint::black_box(self.nodes[child].meta);
                    }
                    next.push(lane[i]);
                }
                None => out[pi] = decode(best[pi]),
            }
        }
    }

    /// The geometry the arena classifies over.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }

    /// The live rules in ascending id (= priority) order, reassembled from
    /// the packed images.
    pub fn live_rules(&self) -> Vec<Rule> {
        self.live
            .iter()
            .map(|(&id, img)| Rule::new(id, img.ranges()))
            .collect()
    }

    /// Number of live rules.
    pub fn live_rule_count(&self) -> usize {
        self.live.len()
    }

    /// Update-activity counters since the build (`overflow_rules` is a
    /// gauge: it drops back to 0 on re-flatten).
    pub fn update_stats(&self) -> UpdateStats {
        self.update_stats
    }

    /// Fraction of rule images living in the overflow side-table instead
    /// of their node's slab span — the measure of how far the arena has
    /// drifted from its cache-compact layout.  0 when untouched.
    pub fn dirty_ratio(&self) -> f64 {
        let overflow = self.update_stats.overflow_rules as f64;
        let total = self.rule_slab.len() as f64 + overflow;
        if total == 0.0 {
            0.0
        } else {
            overflow / total
        }
    }

    /// Inserts a rule at the (currently unused) priority slot `rule.id` by
    /// patching the arena in place — no rebuild, no re-flatten.
    ///
    /// The descent mirrors [`DecisionTree::insert`]: only subtrees the
    /// rule's ranges intersect are visited, shared nodes are un-shared by
    /// cloning (the clone's span gets fresh slack at the slab end), a rule
    /// reaching beyond a node's compacted cut region in a cut dimension is
    /// parked in that node's stored span, and the rule image lands in each
    /// target span in ascending id order — via span slack when there is a
    /// free slot, via the overflow side-table when the span is full.
    pub fn insert(&mut self, rule: &Rule) -> Result<(), UpdateError> {
        let id = rule.id;
        if self.live.contains_key(&id) {
            return Err(UpdateError::DuplicateRuleId(id));
        }
        // Same sparse-id bound as the pointer tree; also keeps every live
        // id strictly below the NO_MATCH lookup sentinel.
        let occupied_end = self
            .live
            .last_key_value()
            .map(|(&k, _)| k as usize + 1)
            .unwrap_or(0);
        let limit = crate::update::id_limit(occupied_end);
        if id >= limit {
            return Err(UpdateError::RuleIdTooSparse { rule: id, limit });
        }
        for d in Dimension::ALL {
            if rule.range(d).hi > self.spec.max_value(d) {
                return Err(UpdateError::RangeExceedsWidth {
                    rule: id,
                    dimension: d,
                });
            }
        }
        self.ensure_refs();
        let img = PackedRule::new(rule);
        self.insert_at(0, rule.ranges, img);
        self.live.insert(id, img);
        self.update_stats.inserts += 1;
        Ok(())
    }

    /// Deletes the live rule `id`, removing its image from every span and
    /// overflow list the insert/build placement could have put it in.
    pub fn delete(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let Some(img) = self.live.get(&id) else {
            return Err(UpdateError::UnknownRuleId(id));
        };
        let ranges = img.ranges();
        self.delete_at(0, &ranges, id);
        self.live.remove(&id);
        self.update_stats.deletes += 1;
        Ok(())
    }

    /// Builds the per-node reference counts on the first update.
    fn ensure_refs(&mut self) {
        if self.refs.is_some() {
            return;
        }
        let mut refs = vec![0u32; self.nodes.len()];
        refs[0] += 1; // the root
        for &c in &self.children {
            refs[c as usize] += 1;
        }
        self.refs = Some(refs);
    }

    /// Number of children of an internal node (the product of its cut
    /// record partition counts; not stored, the child slab span is
    /// implicit).
    fn child_count(&self, node: usize) -> usize {
        let rec = self.nodes[node];
        (0..rec.cut_count())
            .map(|k| self.cut_at(&rec, k).parts as usize)
            .product()
    }

    /// Clones node `n` so one child slot can diverge from its sharers: the
    /// immutable cut span is shared, the child slots and the rule span are
    /// copied to their slab ends (the rule span with fresh slack), and the
    /// overflow list (if any) is duplicated.
    fn clone_node(&mut self, n: u32) -> u32 {
        let nu = n as usize;
        let clone = self.nodes.len() as u32;
        let refs = self.refs.as_mut().expect("refs built before cloning");
        refs[nu] -= 1;
        refs.push(1);
        // The cut records (inline first cut, shared slab rest) are
        // immutable and carried over verbatim by the record copy.
        let mut rec = self.nodes[nu];
        if rec.cut_count() > 0 {
            let base = rec.child_base as usize;
            let count = self.child_count(nu);
            rec.child_base = self.children.len() as u32;
            for j in 0..count {
                let g = self.children[base + j];
                self.children.push(g);
                self.refs.as_mut().expect("refs built")[g as usize] += 1;
            }
        } else {
            rec.child_base = 0;
        }
        let span = rec.rules;
        let len = span.len;
        let cap = len + span_slack(len);
        let new_off = self.rule_slab.len() as u32;
        for j in span.range() {
            let img = self.rule_slab[j];
            self.rule_slab.push(img);
        }
        self.rule_slab
            .extend(std::iter::repeat_n(PackedRule::DEAD, (cap - len) as usize));
        rec.rules = Span { off: new_off, len };
        self.node_rule_cap.push(cap);
        let cloned_overflow = self.overflow.get(&n).cloned();
        if cloned_overflow.is_some() {
            rec.meta |= META_OVERFLOW;
        } else {
            rec.meta &= !META_OVERFLOW;
        }
        self.nodes.push(rec);
        if let Some(list) = cloned_overflow {
            self.update_stats.overflow_rules += list.len() as u64;
            self.overflow.insert(clone, list);
        }
        clone
    }

    /// Adds a rule image to a node's rule list: into span slack when a
    /// free slot exists, into the overflow side-table otherwise.
    fn add_rule(&mut self, node: usize, img: PackedRule) {
        let span = self.nodes[node].rules;
        let (start, len) = (span.off as usize, span.len as usize);
        if span.len < self.node_rule_cap[node] {
            let pos =
                match self.rule_slab[start..start + len].binary_search_by_key(&img.id, |r| r.id) {
                    Ok(_) => return, // already present (defensive; descent visits once)
                    Err(pos) => pos,
                };
            for j in (start + pos..start + len).rev() {
                self.rule_slab[j + 1] = self.rule_slab[j];
            }
            self.rule_slab[start + pos] = img;
            self.nodes[node].rules.len += 1;
        } else {
            let list = self.overflow.entry(node as u32).or_default();
            if let Err(pos) = list.binary_search_by_key(&img.id, |r| r.id) {
                list.insert(pos, img);
                self.nodes[node].meta |= META_OVERFLOW;
                self.update_stats.overflow_rules += 1;
            }
        }
    }

    /// Removes a rule id from a node's span or overflow list; returns
    /// whether it was present.  A vacated span slot becomes slack.
    fn remove_rule(&mut self, node: usize, id: RuleId) -> bool {
        let span = self.nodes[node].rules;
        let (start, len) = (span.off as usize, span.len as usize);
        if let Ok(pos) = self.rule_slab[start..start + len].binary_search_by_key(&id, |r| r.id) {
            for j in start + pos..start + len - 1 {
                self.rule_slab[j] = self.rule_slab[j + 1];
            }
            self.rule_slab[start + len - 1] = PackedRule::DEAD;
            self.nodes[node].rules.len -= 1;
            return true;
        }
        if self.nodes[node].has_overflow() {
            if let Some(list) = self.overflow.get_mut(&(node as u32)) {
                if let Ok(pos) = list.binary_search_by_key(&id, |r| r.id) {
                    list.remove(pos);
                    self.update_stats.overflow_rules -= 1;
                    if list.is_empty() {
                        self.overflow.remove(&(node as u32));
                        self.nodes[node].meta &= !META_OVERFLOW;
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Whether `clip` escapes the node's (possibly compacted) cut region
    /// in any cut dimension — if so, packets outside the region stop at
    /// this node and the rule must be searched here.
    fn escapes_cut_region(&self, node: usize, clip: &[FieldRange; FIELD_COUNT]) -> bool {
        let rec = self.nodes[node];
        (0..rec.cut_count()).any(|k| {
            let cut = self.cut_at(&rec, k);
            let r = clip[cut.dim as usize];
            r.lo < cut.lo || r.hi > cut.hi
        })
    }

    /// Recursive insert descent (see [`FlatTree::insert`]).
    fn insert_at(&mut self, node: usize, clip: [FieldRange; FIELD_COUNT], img: PackedRule) {
        if self.nodes[node].cut_count() == 0 || self.escapes_cut_region(node, &clip) {
            self.add_rule(node, img);
            return;
        }
        self.for_each_intersecting_child(node, clip, &mut |flat, slot, child_clip| {
            let mut child = flat.children[slot];
            if flat.refs.as_ref().expect("refs built")[child as usize] > 1 {
                let clone = flat.clone_node(child);
                flat.children[slot] = clone;
                child = clone;
            }
            flat.insert_at(child as usize, child_clip, img);
        });
    }

    /// Recursive delete descent: a hit in an internal node's stored span
    /// (or overflow) prunes the subtree below it.
    fn delete_at(&mut self, node: usize, ranges: &[FieldRange; FIELD_COUNT], id: RuleId) {
        if self.nodes[node].cut_count() == 0 || self.escapes_cut_region(node, ranges) {
            self.remove_rule(node, id);
            return;
        }
        if self.remove_rule(node, id) {
            return;
        }
        self.for_each_intersecting_child(node, *ranges, &mut |flat, slot, child_clip| {
            flat.delete_at(flat.children[slot] as usize, &child_clip, id);
        });
    }

    /// Enumerates the mixed-radix child indices whose sub-regions
    /// intersect `clip` (caller has verified `clip` does not escape the
    /// cut region), invoking `visit(self, child_slot, clipped_ranges)` for
    /// each.
    fn for_each_intersecting_child(
        &mut self,
        node: usize,
        clip: [FieldRange; FIELD_COUNT],
        visit: &mut impl FnMut(&mut FlatTree, usize, [FieldRange; FIELD_COUNT]),
    ) {
        let rec = self.nodes[node];
        self.enumerate_children(&rec, 0, 0, clip, visit);
    }

    fn enumerate_children(
        &mut self,
        rec: &NodeRec,
        k: u32,
        idx: u64,
        clip: [FieldRange; FIELD_COUNT],
        visit: &mut impl FnMut(&mut FlatTree, usize, [FieldRange; FIELD_COUNT]),
    ) {
        if k == rec.cut_count() {
            let slot = rec.child_base as usize + idx as usize;
            visit(self, slot, clip);
            return;
        }
        let cut = *self.cut_at(rec, k);
        let region = FieldRange::new(cut.lo, cut.hi);
        let r = clip[cut.dim as usize];
        let (a, b) = (cut.sub_index(r.lo), cut.sub_index(r.hi));
        for i in a..=b {
            let child_range = region.split_child(cut.parts, i);
            let Some(clipped) = r.intersect(&child_range) else {
                continue;
            };
            let mut child_clip = clip;
            child_clip[cut.dim as usize] = clipped;
            self.enumerate_children(
                rec,
                k + 1,
                idx * u64::from(cut.parts) + u64::from(i),
                child_clip,
                visit,
            );
        }
    }

    /// Rebuilds the slabs compactly from the live node graph — one
    /// sequential pass, no tree rebuild.  Overflow rules are merged back
    /// into their node's span, every span is re-provisioned with fresh
    /// slack for future in-place inserts, and records left unreferenced by
    /// un-sharing clones are dropped.  Classification results are
    /// unchanged.
    pub fn reflatten(&mut self) {
        let old_nodes = self.nodes.len();
        let mut map = vec![u32::MAX; old_nodes];
        let mut order: Vec<u32> = vec![0];
        map[0] = 0;

        let mut new = FlatTree {
            spec: self.spec,
            nodes: Vec::with_capacity(old_nodes),
            node_rule_cap: Vec::with_capacity(old_nodes),
            cuts: Vec::new(),
            children: Vec::new(),
            rule_slab: Vec::new(),
            overflow: HashMap::new(),
            live: std::mem::take(&mut self.live),
            refs: None,
            update_stats: UpdateStats {
                overflow_rules: 0,
                reflattens: self.update_stats.reflattens + 1,
                ..self.update_stats
            },
        };

        let mut head = 0usize;
        while head < order.len() {
            let old = order[head] as usize;
            head += 1;
            let old_rec = self.nodes[old];
            let mut rec = old_rec;
            rec.meta &= !META_OVERFLOW;

            // Carry the slab cut records over compactly (the inline first
            // cut travels in the record copy).
            let extra = old_rec.cut_count().saturating_sub(1);
            rec.rest_off = new.cuts.len() as u32;
            for k in 0..extra {
                new.cuts.push(self.cuts[(old_rec.rest_off + k) as usize]);
            }

            if old_rec.cut_count() > 0 {
                let base = old_rec.child_base as usize;
                let count = self.child_count(old);
                rec.child_base = new.children.len() as u32;
                for j in 0..count {
                    let child = self.children[base + j] as usize;
                    if map[child] == u32::MAX {
                        map[child] = order.len() as u32;
                        order.push(child as u32);
                    }
                    new.children.push(map[child]);
                }
            } else {
                rec.child_base = 0;
            }

            let span = old_rec.rules;
            let new_off = new.rule_slab.len() as u32;
            new.rule_slab
                .extend_from_slice(&self.rule_slab[span.range()]);
            if let Some(list) = self.overflow.get(&(old as u32)) {
                new.rule_slab.extend_from_slice(list);
                new.rule_slab[new_off as usize..].sort_unstable_by_key(|r| r.id);
            }
            let len = new.rule_slab.len() as u32 - new_off;
            let cap = len + span_slack(len);
            new.rule_slab
                .extend(std::iter::repeat_n(PackedRule::DEAD, (cap - len) as usize));
            rec.rules = Span { off: new_off, len };
            new.nodes.push(rec);
            new.node_rule_cap.push(cap);
        }
        *self = new;
    }
}

/// Slack slots appended to a re-provisioned rule span so the next few
/// inserts into the node patch in place instead of overflowing.
fn span_slack(len: u32) -> u32 {
    (len / 4).max(2)
}

/// Branch-free block scan of an ascending-id rule list, updating `best`
/// (`NO_MATCH` = none yet) exactly like the scalar early-exit scan: within
/// each [`SCAN_BLOCK`]-rule block every packed image is compared without
/// short-circuiting (a bitmask of matches), then the first set bit — the
/// lowest matching id, because lists are id-sorted — resolves the block.
/// Blocks whose first id cannot improve `best` end the scan, preserving
/// the scalar semantics rule for rule.
#[inline]
fn scan_rules_blocks(rules: &[PackedRule], fields: &[u32; FIELD_COUNT], best: &mut u32) {
    for block in rules.chunks(SCAN_BLOCK) {
        if block[0].id >= *best {
            return;
        }
        let mut mask = 0u32;
        for (j, rule) in block.iter().enumerate() {
            mask |= u32::from(rule.matches(fields)) << j;
        }
        if mask != 0 {
            let id = block[mask.trailing_zeros() as usize].id;
            if id < *best {
                *best = id;
            }
            return;
        }
    }
}

#[inline]
fn decode(best: u32) -> MatchResult {
    if best == NO_MATCH {
        MatchResult::NoMatch
    } else {
        MatchResult::Matched(best)
    }
}

/// Appends the packed images of `ids` to `slab` and returns the span
/// covering them.
fn push_slab(slab: &mut Vec<PackedRule>, rules: &[Rule], ids: &[RuleId]) -> Span {
    let off = slab.len() as u32;
    slab.extend(ids.iter().map(|&id| PackedRule::new(&rules[id as usize])));
    Span {
        off,
        len: ids.len() as u32,
    }
}

/// Per-scanned-rule operation accounting, identical to the pointer tree's.
fn count_scan(s: &mut LookupStats, compared: u64) {
    s.rules_compared += compared;
    s.memory_accesses += compared;
    s.ops.loads += 5 * compared;
    s.ops.alu += 10 * compared;
    s.ops.branches += 5 * compared;
}

/// A [`Classifier`] serving a [`FlatTree`] arena.
///
/// Obtained from a built pointer-tree classifier via
/// [`HiCutsClassifier::flatten`] or [`HyperCutsClassifier::flatten`]; the
/// serving roster registers these as `hicuts-flat` / `hypercuts-flat`, so
/// the engine, the equivalence tests and the `throughput` harness pick the
/// flat variants up with no extra glue.
#[derive(Debug, Clone)]
pub struct FlatTreeClassifier {
    name: &'static str,
    flat: FlatTree,
    worst_case_accesses: u64,
    dirty_threshold: f64,
    lanes: LaneWidth,
}

/// Default [`FlatTree::dirty_ratio`] past which [`FlatTreeClassifier`]
/// triggers an amortized re-flatten after an update.
pub const DEFAULT_DIRTY_THRESHOLD: f64 = 0.05;

/// The serving/update tuning of a [`FlatTreeClassifier`], applied in one
/// shot through [`FlatTreeClassifier::with_settings`].
///
/// The settings bundle is the *only* tuning path: construction sites name
/// the fields they override and inherit the rest from
/// [`FlatSettings::default`], so adding a tuning axis never multiplies
/// `with_*` methods (`pclass_engine::EngineConfig` plays the same role
/// one layer up, and its lane width is plumbed down into this struct by
/// the bench roster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatSettings {
    /// Lane width of the batched vectorised walk ([`LaneWidth::Scalar`]
    /// selects the per-packet fallback).
    pub lanes: LaneWidth,
    /// Dirty-ratio threshold past which an update triggers an amortized
    /// re-flatten (`f64::INFINITY` disables compaction).
    pub dirty_threshold: f64,
}

impl Default for FlatSettings {
    fn default() -> FlatSettings {
        FlatSettings {
            lanes: LaneWidth::default(),
            dirty_threshold: DEFAULT_DIRTY_THRESHOLD,
        }
    }
}

impl FlatTreeClassifier {
    /// Wraps a flattened tree under a roster name (default [`LaneWidth`]).
    pub fn new(name: &'static str, flat: FlatTree, worst_case_accesses: u64) -> FlatTreeClassifier {
        FlatTreeClassifier {
            name,
            flat,
            worst_case_accesses,
            dirty_threshold: DEFAULT_DIRTY_THRESHOLD,
            lanes: LaneWidth::default(),
        }
    }

    /// Applies a [`FlatSettings`] bundle — the one construction path for
    /// every tuning axis (tests use tiny dirty thresholds to force the
    /// compaction path; the serving layers route
    /// `pclass_engine::EngineConfig`'s lane width here).
    pub fn with_settings(mut self, settings: FlatSettings) -> FlatTreeClassifier {
        self.lanes = settings.lanes;
        self.dirty_threshold = settings.dirty_threshold;
        self
    }

    /// The current settings bundle.
    pub fn settings(&self) -> FlatSettings {
        FlatSettings {
            lanes: self.lanes,
            dirty_threshold: self.dirty_threshold,
        }
    }

    /// The lane width the batched walk serves with.
    pub fn lanes(&self) -> LaneWidth {
        self.lanes
    }

    /// The underlying arena.
    pub fn flat_tree(&self) -> &FlatTree {
        &self.flat
    }

    /// Arena footprint statistics (recorded per build by the `throughput`
    /// harness).
    pub fn arena_stats(&self) -> ArenaStats {
        self.flat.arena_stats()
    }

    fn maybe_reflatten(&mut self) {
        if self.flat.dirty_ratio() > self.dirty_threshold {
            self.flat.reflatten();
        }
    }
}

impl crate::update::UpdatableClassifier for FlatTreeClassifier {
    fn insert(&mut self, rule: Rule) -> Result<(), UpdateError> {
        self.flat.insert(&rule)?;
        self.maybe_reflatten();
        Ok(())
    }

    fn delete(&mut self, rule_id: RuleId) -> Result<(), UpdateError> {
        self.flat.delete(rule_id)?;
        self.maybe_reflatten();
        Ok(())
    }

    fn live_rules(&self) -> Vec<Rule> {
        self.flat.live_rules()
    }

    fn spec(&self) -> DimensionSpec {
        *self.flat.spec()
    }

    fn update_stats(&self) -> UpdateStats {
        self.flat.update_stats()
    }
}

impl Classifier for FlatTreeClassifier {
    fn name(&self) -> &'static str {
        self.name
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        self.flat.classify(pkt, None)
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        self.flat.classify_batch_lanes(pkts, out, self.lanes);
    }

    fn classify_with_stats(&self, pkt: &PacketHeader, stats: &mut LookupStats) -> MatchResult {
        self.flat.classify(pkt, Some(stats))
    }

    fn memory_bytes(&self) -> usize {
        // The arena is measured by its actual in-memory bytes (that is the
        // point of the layout), not by the idealised 32-bit software model
        // the pointer trees report under.
        self.flat.arena_stats().total_bytes
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(self.worst_case_accesses)
    }

    fn arena_stats(&self) -> Option<ArenaStats> {
        Some(self.flat.arena_stats())
    }
}

impl HiCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hicuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hicuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

impl HyperCutsClassifier {
    /// Flattens the built tree into a cache-compact arena classifier
    /// (roster name `hypercuts-flat`).
    pub fn flatten(&self) -> FlatTreeClassifier {
        FlatTreeClassifier::new(
            "hypercuts-flat",
            FlatTree::from_tree(self.tree()),
            self.tree().stats().worst_case_accesses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hicuts::HiCutsConfig;
    use crate::hypercuts::HyperCutsConfig;
    use pclass_types::toy;

    fn toy_flat() -> (HiCutsClassifier, FlatTreeClassifier) {
        let rs = toy::table1_ruleset();
        let hc = HiCutsClassifier::build(&rs, &HiCutsConfig::figure1());
        let flat = hc.flatten();
        (hc, flat)
    }

    #[test]
    fn division_magic_sub_index_matches_index_of_exactly() {
        // The magic multiply must reproduce FieldRange::index_of for every
        // (region, parts) shape the builders produce, including the d == 1
        // narrow-child case (m_base == 0), power-of-two divisors, and the
        // full 32-bit region.
        let regions = [
            FieldRange::new(0, u32::MAX),
            FieldRange::new(0, 255),
            FieldRange::new(3, 7),
            FieldRange::new(10, 14), // total 5, parts 4 -> base 1
            FieldRange::new(1_000, 1_000_000),
            FieldRange::new(u32::MAX - 65_536, u32::MAX),
        ];
        let mut checked = 0u64;
        for region in regions {
            for parts in [2u32, 3, 4, 7, 8, 16, 64, 256, 65_536] {
                let cut = FlatCut::new(0, parts, region);
                let total = region.len();
                let step = (total / 257).max(1);
                let mut v = u64::from(region.lo);
                while v <= u64::from(region.hi) {
                    let vv = v as u32;
                    assert_eq!(
                        cut.sub_index(vv),
                        region.index_of(parts, vv),
                        "region {region:?} parts {parts} v {vv}"
                    );
                    checked += 1;
                    v += step;
                }
                // The region ends are where off-by-ones would live.
                for vv in [region.lo, region.hi] {
                    assert_eq!(cut.sub_index(vv), region.index_of(parts, vv));
                }
            }
        }
        assert!(checked > 1_000);
    }

    #[test]
    fn lane_widths_agree_with_scalar_walk() {
        let (_, flat) = toy_flat();
        let pkts: Vec<PacketHeader> = (0..131u32)
            .map(|i| {
                PacketHeader::from_fields([(i * 37) % 256, 80, 40, (i * 11) % 256, (i * 53) % 256])
            })
            .collect();
        let mut scalar = Vec::new();
        flat.flat_tree()
            .classify_batch_lanes(&pkts, &mut scalar, LaneWidth::Scalar);
        for lanes in LaneWidth::ALL {
            let mut out = Vec::new();
            flat.flat_tree()
                .classify_batch_lanes(&pkts, &mut out, lanes);
            assert_eq!(out, scalar, "{lanes:?}");
        }
        // And the width round-down mapping is total.
        for (w, expect) in [
            (0usize, LaneWidth::Scalar),
            (1, LaneWidth::Scalar),
            (4, LaneWidth::X4),
            (6, LaneWidth::X4),
            (8, LaneWidth::X8),
            (15, LaneWidth::X8),
            (16, LaneWidth::X16),
            (64, LaneWidth::X16),
        ] {
            assert_eq!(LaneWidth::from_width(w), expect, "width {w}");
            assert_eq!(LaneWidth::from_width(expect.width()), expect);
        }
    }

    #[test]
    fn flat_agrees_with_pointer_tree_per_packet() {
        let (hc, flat) = toy_flat();
        for f0 in (0..=255u32).step_by(3) {
            for f4 in (0..=255u32).step_by(5) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(flat.classify(&pkt), hc.classify(&pkt), "pkt {pkt:?}");
            }
        }
    }

    #[test]
    fn flat_batch_matches_per_packet_all_batch_sizes() {
        let rs = toy::table1_ruleset();
        let hc = HyperCutsClassifier::build(&rs, &HyperCutsConfig::paper_defaults());
        let flat = hc.flatten();
        let pkts: Vec<PacketHeader> = (0..97u32)
            .map(|i| {
                PacketHeader::from_fields([(i * 37) % 256, 80, 40, (i * 11) % 256, (i * 53) % 256])
            })
            .collect();
        let per_packet: Vec<MatchResult> = pkts.iter().map(|p| flat.classify(p)).collect();
        for take in [0usize, 1, 2, 7, 96, 97] {
            let mut out = Vec::new();
            flat.classify_batch(&pkts[..take], &mut out);
            assert_eq!(out, per_packet[..take], "batch size {take}");
        }
    }

    #[test]
    fn batch_appends_after_existing_results() {
        let (_, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut out = vec![MatchResult::NoMatch];
        flat.classify_batch(&[pkt], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], flat.classify(&pkt));
    }

    #[test]
    fn root_is_record_zero_and_shared_leaves_are_deduplicated() {
        let (hc, flat) = toy_flat();
        let tree_nodes = hc.tree().nodes().len();
        // BFS renumbering visits each node at most once, so the arena can
        // only shrink relative to the node vector (unreachable nodes drop).
        assert!(flat.flat_tree().node_count() <= tree_nodes);
        assert!(flat.flat_tree().node_count() >= 2);
    }

    #[test]
    fn arena_stats_are_consistent() {
        let (hc, flat) = toy_flat();
        let stats = flat.arena_stats();
        assert_eq!(stats.nodes, flat.flat_tree().node_count());
        assert!(stats.cut_records >= 1);
        assert!(stats.child_slots >= 2);
        assert!(stats.arena_bytes > 0);
        assert!(stats.total_bytes > stats.arena_bytes);
        assert_eq!(flat.memory_bytes(), stats.total_bytes);
        assert_eq!(
            flat.worst_case_memory_accesses(),
            Some(hc.tree().stats().worst_case_accesses)
        );
        assert_eq!(flat.name(), "hicuts-flat");
    }

    #[test]
    fn lookup_stats_match_pointer_tree_accounting() {
        let (hc, flat) = toy_flat();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut a = LookupStats::new();
        let mut b = LookupStats::new();
        assert_eq!(
            hc.classify_with_stats(&pkt, &mut a),
            flat.classify_with_stats(&pkt, &mut b)
        );
        assert_eq!(a.nodes_visited, b.nodes_visited);
        assert_eq!(a.rules_compared, b.rules_compared);
        assert_eq!(a.memory_accesses, b.memory_accesses);
        assert_eq!(a.ops, b.ops);
    }

    /// Sweeps a packet grid comparing the arena against linear search over
    /// its live rules (per packet and batched).
    fn assert_matches_live_linear(flat: &FlatTree) {
        let live = flat.live_rules();
        let mut pkts = Vec::new();
        for f0 in (0..256).step_by(5) {
            for f4 in (0..256).step_by(9) {
                pkts.push(PacketHeader::from_fields([f0, 80, 40, 180, f4]));
            }
        }
        let expected: Vec<MatchResult> = pkts
            .iter()
            .map(|p| crate::update::classify_live_linear(&live, p))
            .collect();
        for (pkt, want) in pkts.iter().zip(&expected) {
            assert_eq!(flat.classify(pkt, None), *want, "packet {pkt:?}");
        }
        let mut out = Vec::new();
        for chunk in pkts.chunks(7) {
            flat.classify_batch(chunk, &mut out);
        }
        assert_eq!(out, expected, "batched");
    }

    #[test]
    fn delete_then_reinsert_round_trips_with_slack_reuse() {
        let rs = toy::table1_ruleset();
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        assert_eq!(flat.live_rule_count(), 10);
        assert_eq!(flat.dirty_ratio(), 0.0);
        flat.delete(5).unwrap();
        assert_eq!(flat.live_rule_count(), 9);
        assert_matches_live_linear(&flat);
        assert_eq!(flat.delete(5), Err(UpdateError::UnknownRuleId(5)));
        // Re-inserting fills the slack the delete left behind: no overflow.
        flat.insert(&rs.rules()[5]).unwrap();
        assert_eq!(flat.update_stats().overflow_rules, 0);
        assert_eq!(flat.dirty_ratio(), 0.0);
        assert_matches_live_linear(&flat);
        assert_eq!(
            flat.insert(&rs.rules()[5]),
            Err(UpdateError::DuplicateRuleId(5))
        );
        let stats = flat.update_stats();
        assert_eq!((stats.inserts, stats.deletes, stats.reflattens), (1, 1, 0));
    }

    #[test]
    fn full_spans_spill_to_overflow_and_reflatten_compacts() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        // Fresh ids land in full spans: they must spill to the overflow
        // side-table (the pristine arena has zero slack) and still serve.
        for id in [20u32, 21, 22] {
            flat.insert(&Rule::wildcard(id, &spec)).unwrap();
        }
        assert!(flat.update_stats().overflow_rules > 0);
        assert!(flat.dirty_ratio() > 0.0);
        assert_matches_live_linear(&flat);
        let before = flat.update_stats();
        flat.reflatten();
        let after = flat.update_stats();
        assert_eq!(after.overflow_rules, 0);
        assert_eq!(after.reflattens, before.reflattens + 1);
        assert_eq!(flat.dirty_ratio(), 0.0);
        assert_eq!(flat.live_rule_count(), 13);
        assert_matches_live_linear(&flat);
        // Post-reflatten spans carry slack: the next insert is in place.
        flat.delete(20).unwrap();
        flat.insert(&Rule::wildcard(20, &spec)).unwrap();
        assert_eq!(flat.update_stats().overflow_rules, 0);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn classifier_triggers_amortized_reflatten_past_threshold() {
        use crate::update::UpdatableClassifier;
        let (_, flatc) = toy_flat();
        let mut c = flatc.with_settings(FlatSettings {
            dirty_threshold: 0.01,
            ..FlatSettings::default()
        });
        let spec = UpdatableClassifier::spec(&c);
        for id in [30u32, 31] {
            c.insert(Rule::wildcard(id, &spec)).unwrap();
        }
        let stats = c.update_stats();
        assert!(stats.reflattens >= 1, "{stats:?}");
        assert_eq!(stats.overflow_rules, 0);
        assert_eq!(c.live_rules().len(), 12);
        // And with the threshold effectively off, overflow accumulates.
        let (_, flatc) = toy_flat();
        let mut c = flatc.with_settings(FlatSettings {
            dirty_threshold: f64::INFINITY,
            ..FlatSettings::default()
        });
        c.insert(Rule::wildcard(30, &spec)).unwrap();
        assert_eq!(c.update_stats().reflattens, 0);
        assert!(c.update_stats().overflow_rules > 0);
    }

    #[test]
    fn updates_unshare_merged_leaves() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        // A narrow rule: any leaf shared with an untouched region must be
        // cloned, not mutated in place.
        let mut rule = Rule::wildcard(12, &spec);
        rule.ranges[0] = FieldRange::new(3, 7);
        rule.ranges[4] = FieldRange::new(200, 210);
        flat.insert(&rule).unwrap();
        assert_matches_live_linear(&flat);
        flat.delete(12).unwrap();
        assert_matches_live_linear(&flat);
        for id in [0u32, 3, 9] {
            flat.delete(id).unwrap();
        }
        assert_matches_live_linear(&flat);
        flat.reflatten();
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn insert_rejects_ids_far_beyond_the_occupied_range() {
        let (_, flatc) = toy_flat();
        let mut flat = flatc.flat_tree().clone();
        let spec = *flat.spec();
        flat.insert(&Rule::wildcard(1_000, &spec)).unwrap();
        // The NO_MATCH sentinel (u32::MAX) must never become a live id —
        // it would be silently unmatchable.
        let err = flat.insert(&Rule::wildcard(u32::MAX, &spec)).unwrap_err();
        assert!(matches!(err, UpdateError::RuleIdTooSparse { .. }));
        let err = flat.insert(&Rule::wildcard(2_000_000, &spec)).unwrap_err();
        assert!(matches!(err, UpdateError::RuleIdTooSparse { .. }));
        assert_eq!(flat.live_rule_count(), 11);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn insert_escaping_a_compacted_cut_region_is_still_found() {
        use crate::hypercuts::HyperCutsConfig;
        // A ruleset clustered in a small box, so region compaction shrinks
        // the root cut region well below the full space.
        let spec = *toy::table1_ruleset().spec();
        let rules: Vec<Rule> = (0..8u32)
            .map(|i| {
                let mut r = Rule::wildcard(i, &spec);
                r.ranges[0] = FieldRange::new(10 + i, 30 + i);
                r.ranges[4] = FieldRange::new(40, 60);
                r
            })
            .collect();
        let rs = pclass_types::RuleSet::new("boxed", spec, rules).unwrap();
        let hc = HyperCutsClassifier::build(
            &rs,
            &HyperCutsConfig {
                binth: 2,
                spfac: 4.0,
                region_compaction: true,
                push_common_rules: true,
            },
        );
        let mut flat = FlatTree::from_tree(hc.tree());
        // A wildcard rule reaches far outside the compacted box: packets
        // out there must still match it after the insert.
        flat.insert(&Rule::wildcard(9, &spec)).unwrap();
        let outside = PacketHeader::from_fields([200, 200, 200, 200, 200]);
        assert_eq!(flat.classify(&outside, None), MatchResult::Matched(9));
        assert_matches_live_linear(&flat);
        flat.delete(9).unwrap();
        assert_eq!(flat.classify(&outside, None), MatchResult::NoMatch);
        assert_matches_live_linear(&flat);
    }

    #[test]
    fn empty_ruleset_flattens_to_single_leaf() {
        let spec = *toy::table1_ruleset().spec();
        let empty = pclass_types::RuleSet::new("empty", spec, vec![]).unwrap();
        let hc = HiCutsClassifier::build(&empty, &HiCutsConfig::paper_defaults());
        let flat = hc.flatten();
        assert_eq!(flat.flat_tree().node_count(), 1);
        let pkt = PacketHeader::from_fields([1, 2, 3, 4, 5]);
        assert_eq!(flat.classify(&pkt), MatchResult::NoMatch);
        let mut out = Vec::new();
        flat.classify_batch(&[pkt, pkt], &mut out);
        assert_eq!(out, vec![MatchResult::NoMatch; 2]);
    }
}
