//! Shared decision-tree representation for the software HiCuts and HyperCuts
//! classifiers.
//!
//! Both algorithms produce the same kind of structure — a tree whose internal
//! nodes cut the covered region into equal-width children along one or more
//! dimensions and whose leaves hold at most `binth` rules — so the tree
//! container, the lookup procedure, the memory model and the statistics are
//! implemented once here.  The two builders differ only in how they choose
//! the dimensions and the number of cuts; those policies live in
//! [`crate::hicuts`] and [`crate::hypercuts`].

use crate::counters::LookupStats;
use crate::update::UpdateError;
use pclass_types::{
    Dimension, DimensionSpec, FieldRange, MatchResult, PacketHeader, Rule, RuleId, RuleSet,
    UpdateStats, FIELD_COUNT,
};

/// Index of a node inside a [`DecisionTree`].
pub type NodeId = u32;

/// A cut specification at an internal node: how many equal-width children
/// each dimension is divided into (1 = not cut).  The child array is indexed
/// in mixed radix with the *first* cut dimension as the most significant
/// digit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutSpec {
    /// Number of partitions per dimension (all ≥ 1; product = child count).
    pub parts: [u32; FIELD_COUNT],
}

impl CutSpec {
    /// A cut specification that does not cut anything.
    pub fn unit() -> CutSpec {
        CutSpec {
            parts: [1; FIELD_COUNT],
        }
    }

    /// Cut a single dimension into `n` parts (the HiCuts case).
    pub fn single(dim: Dimension, n: u32) -> CutSpec {
        let mut parts = [1u32; FIELD_COUNT];
        parts[dim.index()] = n;
        CutSpec { parts }
    }

    /// Total number of children this cut produces.
    pub fn child_count(&self) -> u64 {
        self.parts.iter().map(|&p| u64::from(p)).product()
    }

    /// Dimensions that are actually cut (parts > 1).
    pub fn cut_dimensions(&self) -> Vec<Dimension> {
        Dimension::ALL
            .iter()
            .copied()
            .filter(|d| self.parts[d.index()] > 1)
            .collect()
    }

    /// Mixed-radix child index for a packet, relative to `region`.
    ///
    /// Returns `None` when the packet lies outside the region in a cut
    /// dimension (possible only when region compaction shrank the region) —
    /// in that case no rule stored below this node can match.
    pub fn child_index(
        &self,
        region: &[FieldRange; FIELD_COUNT],
        pkt: &PacketHeader,
    ) -> Option<u64> {
        let mut idx: u64 = 0;
        for d in Dimension::ALL {
            let parts = self.parts[d.index()];
            if parts <= 1 {
                continue;
            }
            let r = region[d.index()];
            let v = pkt.fields[d.index()];
            if !r.contains(v) {
                return None;
            }
            idx = idx * u64::from(parts) + u64::from(r.index_of(parts, v));
        }
        Some(idx)
    }

    /// Region of the `i`-th child (mixed-radix decomposition of `i`).
    pub fn child_region(
        &self,
        region: &[FieldRange; FIELD_COUNT],
        mut i: u64,
    ) -> [FieldRange; FIELD_COUNT] {
        let mut out = *region;
        // Decompose from the least significant digit (last cut dimension).
        for d in Dimension::ALL.iter().rev() {
            let parts = self.parts[d.index()];
            if parts <= 1 {
                continue;
            }
            let digit = (i % u64::from(parts)) as u32;
            i /= u64::from(parts);
            out[d.index()] = region[d.index()].split_child(parts, digit);
        }
        out
    }
}

/// Kind-specific payload of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node that cuts its region.
    Internal {
        /// How the region is cut.
        cuts: CutSpec,
        /// Children in mixed-radix cut order; always `cuts.child_count()`
        /// entries, possibly referring to shared/merged nodes.
        children: Vec<NodeId>,
        /// Rules common to every child that were pushed up to this node
        /// (HyperCuts heuristic); searched linearly during traversal.
        stored_rules: Vec<RuleId>,
        /// The (possibly compacted) region the cuts apply to.  Equal to the
        /// node's covered region unless the HyperCuts region-compaction
        /// heuristic shrank it.
        cut_region: [FieldRange; FIELD_COUNT],
    },
    /// A leaf holding at most `binth` rules (in priority order).
    Leaf {
        /// Rule ids stored in this leaf, ascending (priority order).
        rules: Vec<RuleId>,
    },
}

/// One node of the decision tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The region of header space this node covers.
    pub region: [FieldRange; FIELD_COUNT],
    /// Depth of the node (root = 0).
    pub depth: u32,
    /// Payload.
    pub kind: NodeKind,
}

impl Node {
    /// `true` if the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// Memory model used to account the size of *software* search structures
/// (the "Software" columns of Table 2).
///
/// The constants approximate a C implementation on a 32-bit network
/// processor:
///
/// * an internal node stores its cut description and a child-pointer array —
///   [`MemoryModel::INTERNAL_HEADER_BYTES`] plus
///   [`MemoryModel::CHILD_POINTER_BYTES`] per child slot;
/// * a leaf stores a rule count plus one pointer per rule —
///   [`MemoryModel::LEAF_HEADER_BYTES`] plus
///   [`MemoryModel::RULE_POINTER_BYTES`] per stored rule reference;
/// * the ruleset itself is stored once at
///   [`MemoryModel::RULE_BYTES`] per rule (five 32-bit lo/hi pairs packed to
///   18 bytes the way the paper's 144-bit software rule images are).
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel;

impl MemoryModel {
    /// Bytes per internal node excluding the child pointer array.
    pub const INTERNAL_HEADER_BYTES: usize = 16;
    /// Bytes per child pointer slot.
    pub const CHILD_POINTER_BYTES: usize = 4;
    /// Bytes per leaf node excluding the rule pointer array.
    pub const LEAF_HEADER_BYTES: usize = 8;
    /// Bytes per rule pointer stored in a leaf (or in an internal node's
    /// pushed-up rule list).
    pub const RULE_POINTER_BYTES: usize = 4;
    /// Bytes per rule of the stored ruleset.
    pub const RULE_BYTES: usize = 18;
}

/// Aggregate statistics of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of internal nodes.
    pub internal_nodes: usize,
    /// Number of leaf nodes (after merging, i.e. distinct leaves).
    pub leaf_nodes: usize,
    /// Total rule references stored in leaves and pushed-up lists.
    pub stored_rule_refs: usize,
    /// Maximum depth (root = 0).
    pub max_depth: u32,
    /// Maximum number of rules in any leaf.
    pub max_leaf_rules: usize,
    /// Worst-case memory accesses of a lookup: internal nodes on the longest
    /// path (including the root) plus one access per rule of the largest leaf
    /// on that path plus any pushed-up rules checked along the way.
    pub worst_case_accesses: u64,
}

/// A decision tree over a ruleset, produced by a HiCuts- or HyperCuts-style
/// builder.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    spec: DimensionSpec,
    rules: Vec<Rule>,
    nodes: Vec<Node>,
    root: NodeId,
    /// Per rule slot: is the id currently live?  Deletes tombstone the slot
    /// (the `Rule` content of a dead slot is never read); inserts may revive
    /// it with a new rule or extend the vector.
    live: Vec<bool>,
    /// Number of live rule slots.
    live_count: usize,
    /// Per-node reference counts (how many child slots, plus 1 for the
    /// root, point at each node) — built lazily by the first update and
    /// maintained by the un-sharing clones thereafter.
    refs: Option<Vec<u32>>,
    /// Update-activity counters since the build.
    update_stats: UpdateStats,
}

impl DecisionTree {
    /// Assembles a tree from parts.  `nodes[root]` must exist and every
    /// child index must be in bounds (checked in debug builds).
    pub fn new(ruleset: &RuleSet, nodes: Vec<Node>, root: NodeId) -> DecisionTree {
        debug_assert!((root as usize) < nodes.len());
        let live_count = ruleset.len();
        DecisionTree {
            spec: *ruleset.spec(),
            rules: ruleset.rules().to_vec(),
            nodes,
            root,
            live: vec![true; live_count],
            live_count,
            refs: None,
            update_stats: UpdateStats::default(),
        }
    }

    /// The tree's nodes (for encoders and diagnostics).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The geometry of the ruleset the tree was built over.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }

    /// The rules the tree classifies against (copied from the ruleset at
    /// build time so the tree is self-contained).  After deletions the
    /// vector keeps tombstoned slots; filter through [`DecisionTree::is_live`]
    /// when enumerating.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Whether the rule slot `id` currently holds a live rule.
    pub fn is_live(&self, id: RuleId) -> bool {
        self.live.get(id as usize).copied().unwrap_or(false)
    }

    /// Number of live rules.
    pub fn live_rule_count(&self) -> usize {
        self.live_count
    }

    /// The live rules in ascending id (= priority) order.
    pub fn live_rules(&self) -> Vec<Rule> {
        self.rules
            .iter()
            .zip(&self.live)
            .filter(|(_, &l)| l)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Update-activity counters since the build.
    pub fn update_stats(&self) -> UpdateStats {
        self.update_stats
    }

    /// Inserts a rule at the priority slot `rule.id` (which must not be
    /// live) by descending only the subtrees the rule's ranges intersect —
    /// no rebuild.
    ///
    /// Placement mirrors what a fresh build would do: the rule lands in
    /// every leaf a matching packet can reach.  Two structural cases are
    /// handled on the way down:
    ///
    /// * **shared nodes** (merged identical leaves, the builders' shared
    ///   empty leaf) are un-shared by cloning before mutation, so sharers
    ///   whose regions the rule does not cover keep their old contents;
    /// * **compacted cut regions** (HyperCuts region compaction): when the
    ///   rule extends beyond a node's compacted cut region in a cut
    ///   dimension, packets outside that region stop at the node — so the
    ///   rule is parked in the node's `stored_rules` list, which every
    ///   packet reaching the node scans, instead of descending below it.
    pub fn insert(&mut self, rule: Rule) -> Result<(), UpdateError> {
        let id = rule.id;
        let idx = id as usize;
        if idx < self.rules.len() && self.live[idx] {
            return Err(UpdateError::DuplicateRuleId(id));
        }
        // Bound the sparse-id gap: the slot vector grows to the maximum id,
        // so an unbounded id would allocate unboundedly (and u32::MAX is
        // the lookup sentinel).  The limit is computed from the highest
        // *live* id — the same base the flat arena uses — so the two
        // structures accept exactly the same update streams.
        let occupied_end = self.live.iter().rposition(|&l| l).map_or(0, |i| i + 1);
        let limit = crate::update::id_limit(occupied_end);
        if id >= limit {
            return Err(UpdateError::RuleIdTooSparse { rule: id, limit });
        }
        for d in Dimension::ALL {
            if rule.range(d).hi > self.spec.max_value(d) {
                return Err(UpdateError::RangeExceedsWidth {
                    rule: id,
                    dimension: d,
                });
            }
        }
        while self.rules.len() <= idx {
            // Filler content for the intermediate dead slots; never read.
            let dead_id = self.rules.len() as RuleId;
            self.rules.push(Rule::new(dead_id, rule.ranges));
            self.live.push(false);
        }
        self.rules[idx] = rule;
        self.live[idx] = true;
        self.live_count += 1;
        self.ensure_refs();
        self.insert_at(self.root, rule.ranges, id);
        self.update_stats.inserts += 1;
        Ok(())
    }

    /// Deletes the live rule `id`, descending only the subtrees its ranges
    /// intersect and tombstoning its rule slot.
    pub fn delete(&mut self, id: RuleId) -> Result<(), UpdateError> {
        if !self.is_live(id) {
            return Err(UpdateError::UnknownRuleId(id));
        }
        let ranges = self.rules[id as usize].ranges;
        self.delete_at(self.root, &ranges, id);
        self.live[id as usize] = false;
        self.live_count -= 1;
        self.update_stats.deletes += 1;
        Ok(())
    }

    /// Builds the per-node reference counts on the first update.
    fn ensure_refs(&mut self) {
        if self.refs.is_some() {
            return;
        }
        let mut refs = vec![0u32; self.nodes.len()];
        refs[self.root as usize] = 1;
        for node in &self.nodes {
            if let NodeKind::Internal { children, .. } = &node.kind {
                for &c in children {
                    refs[c as usize] += 1;
                }
            }
        }
        self.refs = Some(refs);
    }

    /// Clones node `n` (sharing its grandchildren), returning the clone's
    /// id.  The caller repoints exactly one child slot from `n` to the
    /// clone; reference counts are adjusted here.
    fn clone_node(&mut self, n: NodeId) -> NodeId {
        let clone = self.nodes[n as usize].clone();
        let clone_id = self.nodes.len() as NodeId;
        let refs = self.refs.as_mut().expect("refs built before cloning");
        refs[n as usize] -= 1;
        refs.push(1);
        if let NodeKind::Internal { children, .. } = &clone.kind {
            for &g in children {
                refs[g as usize] += 1;
            }
        }
        self.nodes.push(clone);
        clone_id
    }

    /// Recursive insert descent (see [`DecisionTree::insert`]).  `clip` is
    /// the rule's ranges intersected with the cut constraints accumulated
    /// along the path; only cut dimensions matter for placement, because
    /// traversal routes packets by cut dimensions alone.
    fn insert_at(&mut self, node_id: NodeId, clip: [FieldRange; FIELD_COUNT], id: RuleId) {
        let (cuts, cut_region, child_count) = match &self.nodes[node_id as usize].kind {
            NodeKind::Leaf { .. } => {
                if let NodeKind::Leaf { rules } = &mut self.nodes[node_id as usize].kind {
                    if let Err(pos) = rules.binary_search(&id) {
                        rules.insert(pos, id);
                    }
                }
                return;
            }
            NodeKind::Internal {
                cuts,
                cut_region,
                children,
                ..
            } => (cuts.clone(), *cut_region, children.len()),
        };

        // Compaction escape: packets outside the compacted cut region stop
        // at this node, so a rule reaching beyond it in a cut dimension
        // must be searched *at* this node.
        let escapes = cuts.cut_dimensions().iter().any(|d| {
            let i = d.index();
            clip[i].lo < cut_region[i].lo || clip[i].hi > cut_region[i].hi
        });
        if escapes {
            if let NodeKind::Internal { stored_rules, .. } = &mut self.nodes[node_id as usize].kind
            {
                if let Err(pos) = stored_rules.binary_search(&id) {
                    stored_rules.insert(pos, id);
                }
            }
            return;
        }

        for i in 0..child_count as u64 {
            let child_region = cuts.child_region(&cut_region, i);
            let mut child_clip = clip;
            let mut intersects = true;
            for d in cuts.cut_dimensions() {
                let di = d.index();
                match clip[di].intersect(&child_region[di]) {
                    Some(r) => child_clip[di] = r,
                    None => {
                        intersects = false;
                        break;
                    }
                }
            }
            if !intersects {
                continue;
            }
            let mut child = match &self.nodes[node_id as usize].kind {
                NodeKind::Internal { children, .. } => children[i as usize],
                NodeKind::Leaf { .. } => unreachable!("kind checked above"),
            };
            if self.refs.as_ref().expect("refs built")[child as usize] > 1 {
                let clone = self.clone_node(child);
                if let NodeKind::Internal { children, .. } = &mut self.nodes[node_id as usize].kind
                {
                    children[i as usize] = clone;
                }
                child = clone;
            }
            self.insert_at(child, child_clip, id);
        }
    }

    /// Recursive delete descent: retraces every path an insert or a fresh
    /// build could have placed the rule on.  A hit in a `stored_rules`
    /// list prunes the subtree below it (a stored rule is never also
    /// stored deeper down).
    fn delete_at(&mut self, node_id: NodeId, ranges: &[FieldRange; FIELD_COUNT], id: RuleId) {
        let (cuts, cut_region, child_count) = match &mut self.nodes[node_id as usize].kind {
            NodeKind::Leaf { rules } => {
                if let Ok(pos) = rules.binary_search(&id) {
                    rules.remove(pos);
                }
                return;
            }
            NodeKind::Internal {
                cuts,
                cut_region,
                children,
                stored_rules,
            } => {
                if let Ok(pos) = stored_rules.binary_search(&id) {
                    stored_rules.remove(pos);
                    return;
                }
                (cuts.clone(), *cut_region, children.len())
            }
        };
        for i in 0..child_count as u64 {
            let child_region = cuts.child_region(&cut_region, i);
            let intersects = cuts
                .cut_dimensions()
                .iter()
                .all(|d| ranges[d.index()].overlaps(&child_region[d.index()]));
            if !intersects {
                continue;
            }
            let child = match &self.nodes[node_id as usize].kind {
                NodeKind::Internal { children, .. } => children[i as usize],
                NodeKind::Leaf { .. } => unreachable!("kind checked above"),
            };
            self.delete_at(child, ranges, id);
        }
    }

    /// Classifies a packet, optionally recording work into `stats`.
    pub fn classify(&self, pkt: &PacketHeader, mut stats: Option<&mut LookupStats>) -> MatchResult {
        let mut best: Option<RuleId> = None;
        let mut node_id = self.root;
        loop {
            let node = &self.nodes[node_id as usize];
            if let Some(s) = stats.as_deref_mut() {
                s.memory_accesses += 1;
                s.ops.loads += 2; // node header + cut description
                s.ops.alu += 4;
                s.ops.branches += 1;
            }
            match &node.kind {
                NodeKind::Leaf { rules } => {
                    self.scan_rules(rules, pkt, &mut best, stats.as_deref_mut());
                    break;
                }
                NodeKind::Internal {
                    cuts,
                    children,
                    stored_rules,
                    cut_region,
                } => {
                    if let Some(s) = stats.as_deref_mut() {
                        s.nodes_visited += 1;
                    }
                    if !stored_rules.is_empty() {
                        self.scan_rules(stored_rules, pkt, &mut best, stats.as_deref_mut());
                    }
                    match cuts.child_index(cut_region, pkt) {
                        Some(idx) => {
                            if let Some(s) = stats.as_deref_mut() {
                                // Index arithmetic: one mul/add/compare per cut dimension
                                // plus the child-pointer load.
                                let dims = cuts.cut_dimensions().len() as u64;
                                s.ops.alu += 3 * dims;
                                s.ops.muls += dims;
                                s.ops.loads += 1;
                            }
                            node_id = children[idx as usize];
                        }
                        None => break, // outside the compacted region: nothing below can match
                    }
                }
            }
        }
        match best {
            Some(id) => MatchResult::Matched(id),
            None => MatchResult::NoMatch,
        }
    }

    /// Linear scan of a rule-id list, updating the best (lowest id) match.
    fn scan_rules(
        &self,
        ids: &[RuleId],
        pkt: &PacketHeader,
        best: &mut Option<RuleId>,
        mut stats: Option<&mut LookupStats>,
    ) {
        for &id in ids {
            if let Some(s) = stats.as_deref_mut() {
                s.rules_compared += 1;
                s.memory_accesses += 1;
                s.ops.loads += 5; // five range pairs (packed words)
                s.ops.alu += 10;
                s.ops.branches += 5;
            }
            // Rules are stored in ascending id order, so the first hit in a
            // list is the best within that list; still guard against an
            // earlier stored-rule hit from a shallower node.
            if best.is_none_or(|b| id < b) && self.rules[id as usize].matches(pkt) {
                *best = Some(best.map_or(id, |b| b.min(id)));
                break;
            }
            // Once the ids exceed the current best there is no point
            // continuing: everything later has lower priority.
            if let Some(b) = *best {
                if id >= b {
                    break;
                }
            }
        }
    }

    /// Memory footprint of the structure plus the stored ruleset under the
    /// software [`MemoryModel`].
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.live_count * MemoryModel::RULE_BYTES;
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Internal {
                    children,
                    stored_rules,
                    ..
                } => {
                    bytes += MemoryModel::INTERNAL_HEADER_BYTES
                        + children.len() * MemoryModel::CHILD_POINTER_BYTES
                        + stored_rules.len() * MemoryModel::RULE_POINTER_BYTES;
                }
                NodeKind::Leaf { rules } => {
                    bytes += MemoryModel::LEAF_HEADER_BYTES
                        + rules.len() * MemoryModel::RULE_POINTER_BYTES;
                }
            }
        }
        bytes
    }

    /// Aggregate statistics (node counts, depth, worst-case accesses).
    pub fn stats(&self) -> TreeStats {
        let mut internal = 0usize;
        let mut leaves = 0usize;
        let mut refs = 0usize;
        let mut max_depth = 0u32;
        let mut max_leaf_rules = 0usize;
        for node in &self.nodes {
            max_depth = max_depth.max(node.depth);
            match &node.kind {
                NodeKind::Internal { stored_rules, .. } => {
                    internal += 1;
                    refs += stored_rules.len();
                }
                NodeKind::Leaf { rules } => {
                    leaves += 1;
                    refs += rules.len();
                    max_leaf_rules = max_leaf_rules.max(rules.len());
                }
            }
        }
        TreeStats {
            internal_nodes: internal,
            leaf_nodes: leaves,
            stored_rule_refs: refs,
            max_depth,
            max_leaf_rules,
            worst_case_accesses: self.worst_case_accesses(self.root, 0),
        }
    }

    /// Worst-case memory accesses from `node_id` to any leaf below it.
    fn worst_case_accesses(&self, node_id: NodeId, mut pushed: u64) -> u64 {
        let node = &self.nodes[node_id as usize];
        match &node.kind {
            NodeKind::Leaf { rules } => 1 + pushed + rules.len() as u64,
            NodeKind::Internal {
                children,
                stored_rules,
                ..
            } => {
                pushed += stored_rules.len() as u64;
                let mut worst = 0u64;
                let mut seen: Vec<NodeId> = Vec::new();
                for &c in children {
                    if seen.contains(&c) {
                        continue;
                    }
                    seen.push(c);
                    worst = worst.max(self.worst_case_accesses(c, pushed));
                }
                1 + worst
            }
        }
    }

    /// Renders the tree as an indented text dump (used by the quickstart
    /// example to reproduce Figures 1 and 3 of the paper).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(self.root, 0, &mut out);
        out
    }

    fn dump_node(&self, node_id: NodeId, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        let node = &self.nodes[node_id as usize];
        let pad = "  ".repeat(indent);
        match &node.kind {
            NodeKind::Leaf { rules } => {
                let names: Vec<String> = rules.iter().map(|r| format!("R{r}")).collect();
                let _ = writeln!(out, "{pad}leaf [{}]", names.join(" "));
            }
            NodeKind::Internal {
                cuts,
                children,
                stored_rules,
                ..
            } => {
                let desc: Vec<String> = cuts
                    .cut_dimensions()
                    .iter()
                    .map(|d| format!("{} x{}", d.name(), cuts.parts[d.index()]))
                    .collect();
                let stored = if stored_rules.is_empty() {
                    String::new()
                } else {
                    format!(" stored={:?}", stored_rules)
                };
                let _ = writeln!(out, "{pad}node cut[{}]{stored}", desc.join(", "));
                let mut seen: Vec<NodeId> = Vec::new();
                for &c in children {
                    if seen.contains(&c) {
                        continue;
                    }
                    seen.push(c);
                    self.dump_node(c, indent + 1, out);
                }
            }
        }
    }
}

/// Returns the ids of `candidates` whose rules intersect `region`
/// (in ascending id order).  Shared by every tree builder.
pub fn rules_intersecting(
    rules: &[Rule],
    candidates: &[RuleId],
    region: &[FieldRange; FIELD_COUNT],
) -> Vec<RuleId> {
    candidates
        .iter()
        .copied()
        .filter(|&id| rules[id as usize].intersects_region(region))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::toy;

    /// Hand-builds a tiny tree over the Table 1 ruleset:
    /// root cuts field 0 into 4, children are leaves.
    fn tiny_tree() -> DecisionTree {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let cuts = CutSpec::single(Dimension::SrcIp, 4);
        let rules: Vec<RuleId> = (0..rs.len() as u32).collect();
        let mut nodes = vec![Node {
            region,
            depth: 0,
            kind: NodeKind::Leaf { rules: vec![] }, // placeholder, replaced below
        }];
        let mut children = Vec::new();
        for i in 0..4u64 {
            let child_region = cuts.child_region(&region, i);
            let child_rules = rules_intersecting(rs.rules(), &rules, &child_region);
            let id = nodes.len() as NodeId;
            nodes.push(Node {
                region: child_region,
                depth: 1,
                kind: NodeKind::Leaf { rules: child_rules },
            });
            children.push(id);
        }
        nodes[0] = Node {
            region,
            depth: 0,
            kind: NodeKind::Internal {
                cuts,
                children,
                stored_rules: vec![],
                cut_region: region,
            },
        };
        DecisionTree::new(&rs, nodes, 0)
    }

    #[test]
    fn cutspec_child_count_and_dims() {
        let c = CutSpec::single(Dimension::DstIp, 8);
        assert_eq!(c.child_count(), 8);
        assert_eq!(c.cut_dimensions(), vec![Dimension::DstIp]);
        let mut multi = CutSpec::unit();
        multi.parts[0] = 2;
        multi.parts[4] = 2;
        assert_eq!(multi.child_count(), 4);
        assert_eq!(
            multi.cut_dimensions(),
            vec![Dimension::SrcIp, Dimension::Protocol]
        );
        assert_eq!(CutSpec::unit().child_count(), 1);
    }

    #[test]
    fn child_regions_partition_parent() {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let mut cuts = CutSpec::unit();
        cuts.parts[0] = 2;
        cuts.parts[4] = 2;
        let mut covered: u64 = 0;
        for i in 0..4u64 {
            let child = cuts.child_region(&region, i);
            covered += child[0].len() * child[4].len();
            // Uncut dimensions keep the full region.
            assert_eq!(child[1], region[1]);
        }
        assert_eq!(covered, region[0].len() * region[4].len());
    }

    #[test]
    fn child_index_matches_region() {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let mut cuts = CutSpec::unit();
        cuts.parts[0] = 4;
        cuts.parts[4] = 2;
        for f0 in [0u32, 63, 64, 200, 255] {
            for f4 in [0u32, 127, 128, 255] {
                let pkt = PacketHeader::from_fields([f0, 0, 0, 0, f4]);
                let idx = cuts.child_index(&region, &pkt).unwrap();
                let child = cuts.child_region(&region, idx);
                assert!(child[0].contains(f0) && child[4].contains(f4));
            }
        }
    }

    #[test]
    fn child_index_outside_compacted_region_is_none() {
        let cuts = CutSpec::single(Dimension::SrcIp, 2);
        let mut region = toy::table1_ruleset().full_region();
        region[0] = FieldRange::new(100, 200);
        let pkt = PacketHeader::from_fields([50, 0, 0, 0, 0]);
        assert_eq!(cuts.child_index(&region, &pkt), None);
    }

    #[test]
    fn tiny_tree_agrees_with_linear_search() {
        let rs = toy::table1_ruleset();
        let tree = tiny_tree();
        // Exhaustive-ish sweep over a grid of the toy space.
        for f0 in (0..256).step_by(7) {
            for f4 in (0..256).step_by(13) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(
                    tree.classify(&pkt, None),
                    rs.classify_linear(&pkt),
                    "packet {pkt:?}"
                );
            }
        }
    }

    #[test]
    fn stats_and_memory_are_sane() {
        let tree = tiny_tree();
        let stats = tree.stats();
        assert_eq!(stats.internal_nodes, 1);
        assert_eq!(stats.leaf_nodes, 4);
        assert_eq!(stats.max_depth, 1);
        assert!(stats.max_leaf_rules >= 3);
        assert!(stats.worst_case_accesses >= 2);
        let bytes = tree.memory_bytes();
        // 10 rules * 18 + 1 internal (16 + 4*4) + leaves.
        assert!(bytes > 10 * MemoryModel::RULE_BYTES);
        assert!(bytes < 1_000);
    }

    #[test]
    fn lookup_stats_are_recorded() {
        let tree = tiny_tree();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut stats = LookupStats::new();
        let result = tree.classify(&pkt, Some(&mut stats));
        assert_eq!(result, MatchResult::Matched(5));
        assert!(stats.nodes_visited >= 1);
        assert!(stats.rules_compared >= 1);
        assert!(stats.memory_accesses >= 2);
        assert!(stats.ops.loads > 0);
    }

    #[test]
    fn dump_mentions_cut_dimension_and_leaves() {
        let tree = tiny_tree();
        let dump = tree.dump();
        assert!(dump.contains("src_ip x4"));
        assert!(dump.contains("leaf ["));
    }

    /// Sweeps a packet grid comparing the tree against linear search over
    /// its live rules.
    fn assert_matches_live_linear(tree: &DecisionTree) {
        let live = tree.live_rules();
        for f0 in (0..256).step_by(5) {
            for f4 in (0..256).step_by(9) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                let expected = crate::update::classify_live_linear(&live, &pkt);
                assert_eq!(tree.classify(&pkt, None), expected, "packet {pkt:?}");
            }
        }
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let rs = toy::table1_ruleset();
        let mut tree = tiny_tree();
        assert_eq!(tree.live_rule_count(), 10);
        tree.delete(5).unwrap();
        assert!(!tree.is_live(5));
        assert_eq!(tree.live_rule_count(), 9);
        assert_matches_live_linear(&tree);
        assert_eq!(tree.delete(5), Err(UpdateError::UnknownRuleId(5)));
        tree.insert(rs.rules()[5]).unwrap();
        assert!(tree.is_live(5));
        assert_matches_live_linear(&tree);
        assert_eq!(
            tree.insert(rs.rules()[5]),
            Err(UpdateError::DuplicateRuleId(5))
        );
        let stats = tree.update_stats();
        assert_eq!((stats.inserts, stats.deletes), (1, 1));
    }

    #[test]
    fn insert_beyond_current_ids_appends_at_lowest_priority() {
        let mut tree = tiny_tree();
        // A wildcard rule far past the current id range: matches whenever
        // nothing else does.
        let spec = *tree.spec();
        tree.insert(Rule::wildcard(17, &spec)).unwrap();
        assert!(tree.is_live(17));
        assert!(!tree.is_live(12));
        assert_eq!(tree.live_rule_count(), 11);
        assert_matches_live_linear(&tree);
        // Every packet now matches something.
        let pkt = PacketHeader::from_fields([255, 255, 255, 255, 255]);
        assert_eq!(tree.classify(&pkt, None), MatchResult::Matched(17));
    }

    #[test]
    fn insert_rejects_ids_far_beyond_the_occupied_range() {
        let mut tree = tiny_tree();
        let spec = *tree.spec();
        // Within the gap: fine (and allocates only gap-many slots).
        tree.insert(Rule::wildcard(1_000, &spec)).unwrap();
        // u32::MAX is the lookup sentinel and unboundedly far: rejected
        // without allocating.
        let err = tree.insert(Rule::wildcard(u32::MAX, &spec)).unwrap_err();
        assert!(matches!(err, UpdateError::RuleIdTooSparse { .. }));
        let err = tree.insert(Rule::wildcard(2_000_000, &spec)).unwrap_err();
        assert!(
            matches!(
                err,
                UpdateError::RuleIdTooSparse {
                    rule: 2_000_000,
                    ..
                }
            ),
            "{err:?}"
        );
        assert_eq!(tree.live_rule_count(), 11);
    }

    #[test]
    fn insert_rejects_out_of_width_ranges() {
        let mut tree = tiny_tree();
        let mut rule = Rule::wildcard(20, tree.spec());
        rule.ranges[0] = FieldRange::new(0, 300); // exceeds the toy 8-bit dim
        assert!(matches!(
            tree.insert(rule),
            Err(UpdateError::RangeExceedsWidth { rule: 20, .. })
        ));
        assert!(!tree.is_live(20));
        assert_eq!(tree.live_rule_count(), 10);
    }

    #[test]
    fn updates_unshare_merged_leaves() {
        use crate::hicuts::{HiCutsClassifier, HiCutsConfig};
        let rs = toy::table1_ruleset();
        let built = HiCutsClassifier::build(&rs, &HiCutsConfig::figure1());
        let mut tree = built.tree().clone();
        // A narrow rule that reaches only part of the space: any leaf
        // shared with an untouched region must be unshared, not mutated.
        let mut rule = Rule::wildcard(12, tree.spec());
        rule.ranges[0] = FieldRange::new(3, 7);
        rule.ranges[4] = FieldRange::new(200, 210);
        tree.insert(rule).unwrap();
        assert_matches_live_linear(&tree);
        tree.delete(12).unwrap();
        assert_matches_live_linear(&tree);
        for id in [0u32, 3, 9] {
            tree.delete(id).unwrap();
        }
        assert_matches_live_linear(&tree);
    }
}
