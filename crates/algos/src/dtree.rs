//! Shared decision-tree representation for the software HiCuts and HyperCuts
//! classifiers.
//!
//! Both algorithms produce the same kind of structure — a tree whose internal
//! nodes cut the covered region into equal-width children along one or more
//! dimensions and whose leaves hold at most `binth` rules — so the tree
//! container, the lookup procedure, the memory model and the statistics are
//! implemented once here.  The two builders differ only in how they choose
//! the dimensions and the number of cuts; those policies live in
//! [`crate::hicuts`] and [`crate::hypercuts`].

use crate::counters::LookupStats;
use pclass_types::{
    Dimension, DimensionSpec, FieldRange, MatchResult, PacketHeader, Rule, RuleId, RuleSet,
    FIELD_COUNT,
};

/// Index of a node inside a [`DecisionTree`].
pub type NodeId = u32;

/// A cut specification at an internal node: how many equal-width children
/// each dimension is divided into (1 = not cut).  The child array is indexed
/// in mixed radix with the *first* cut dimension as the most significant
/// digit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutSpec {
    /// Number of partitions per dimension (all ≥ 1; product = child count).
    pub parts: [u32; FIELD_COUNT],
}

impl CutSpec {
    /// A cut specification that does not cut anything.
    pub fn unit() -> CutSpec {
        CutSpec {
            parts: [1; FIELD_COUNT],
        }
    }

    /// Cut a single dimension into `n` parts (the HiCuts case).
    pub fn single(dim: Dimension, n: u32) -> CutSpec {
        let mut parts = [1u32; FIELD_COUNT];
        parts[dim.index()] = n;
        CutSpec { parts }
    }

    /// Total number of children this cut produces.
    pub fn child_count(&self) -> u64 {
        self.parts.iter().map(|&p| u64::from(p)).product()
    }

    /// Dimensions that are actually cut (parts > 1).
    pub fn cut_dimensions(&self) -> Vec<Dimension> {
        Dimension::ALL
            .iter()
            .copied()
            .filter(|d| self.parts[d.index()] > 1)
            .collect()
    }

    /// Mixed-radix child index for a packet, relative to `region`.
    ///
    /// Returns `None` when the packet lies outside the region in a cut
    /// dimension (possible only when region compaction shrank the region) —
    /// in that case no rule stored below this node can match.
    pub fn child_index(
        &self,
        region: &[FieldRange; FIELD_COUNT],
        pkt: &PacketHeader,
    ) -> Option<u64> {
        let mut idx: u64 = 0;
        for d in Dimension::ALL {
            let parts = self.parts[d.index()];
            if parts <= 1 {
                continue;
            }
            let r = region[d.index()];
            let v = pkt.fields[d.index()];
            if !r.contains(v) {
                return None;
            }
            idx = idx * u64::from(parts) + u64::from(r.index_of(parts, v));
        }
        Some(idx)
    }

    /// Region of the `i`-th child (mixed-radix decomposition of `i`).
    pub fn child_region(
        &self,
        region: &[FieldRange; FIELD_COUNT],
        mut i: u64,
    ) -> [FieldRange; FIELD_COUNT] {
        let mut out = *region;
        // Decompose from the least significant digit (last cut dimension).
        for d in Dimension::ALL.iter().rev() {
            let parts = self.parts[d.index()];
            if parts <= 1 {
                continue;
            }
            let digit = (i % u64::from(parts)) as u32;
            i /= u64::from(parts);
            out[d.index()] = region[d.index()].split_child(parts, digit);
        }
        out
    }
}

/// Kind-specific payload of a tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node that cuts its region.
    Internal {
        /// How the region is cut.
        cuts: CutSpec,
        /// Children in mixed-radix cut order; always `cuts.child_count()`
        /// entries, possibly referring to shared/merged nodes.
        children: Vec<NodeId>,
        /// Rules common to every child that were pushed up to this node
        /// (HyperCuts heuristic); searched linearly during traversal.
        stored_rules: Vec<RuleId>,
        /// The (possibly compacted) region the cuts apply to.  Equal to the
        /// node's covered region unless the HyperCuts region-compaction
        /// heuristic shrank it.
        cut_region: [FieldRange; FIELD_COUNT],
    },
    /// A leaf holding at most `binth` rules (in priority order).
    Leaf {
        /// Rule ids stored in this leaf, ascending (priority order).
        rules: Vec<RuleId>,
    },
}

/// One node of the decision tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The region of header space this node covers.
    pub region: [FieldRange; FIELD_COUNT],
    /// Depth of the node (root = 0).
    pub depth: u32,
    /// Payload.
    pub kind: NodeKind,
}

impl Node {
    /// `true` if the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// Memory model used to account the size of *software* search structures
/// (the "Software" columns of Table 2).
///
/// The constants approximate a C implementation on a 32-bit network
/// processor:
///
/// * an internal node stores its cut description and a child-pointer array —
///   [`MemoryModel::INTERNAL_HEADER_BYTES`] plus
///   [`MemoryModel::CHILD_POINTER_BYTES`] per child slot;
/// * a leaf stores a rule count plus one pointer per rule —
///   [`MemoryModel::LEAF_HEADER_BYTES`] plus
///   [`MemoryModel::RULE_POINTER_BYTES`] per stored rule reference;
/// * the ruleset itself is stored once at
///   [`MemoryModel::RULE_BYTES`] per rule (five 32-bit lo/hi pairs packed to
///   18 bytes the way the paper's 144-bit software rule images are).
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel;

impl MemoryModel {
    /// Bytes per internal node excluding the child pointer array.
    pub const INTERNAL_HEADER_BYTES: usize = 16;
    /// Bytes per child pointer slot.
    pub const CHILD_POINTER_BYTES: usize = 4;
    /// Bytes per leaf node excluding the rule pointer array.
    pub const LEAF_HEADER_BYTES: usize = 8;
    /// Bytes per rule pointer stored in a leaf (or in an internal node's
    /// pushed-up rule list).
    pub const RULE_POINTER_BYTES: usize = 4;
    /// Bytes per rule of the stored ruleset.
    pub const RULE_BYTES: usize = 18;
}

/// Aggregate statistics of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of internal nodes.
    pub internal_nodes: usize,
    /// Number of leaf nodes (after merging, i.e. distinct leaves).
    pub leaf_nodes: usize,
    /// Total rule references stored in leaves and pushed-up lists.
    pub stored_rule_refs: usize,
    /// Maximum depth (root = 0).
    pub max_depth: u32,
    /// Maximum number of rules in any leaf.
    pub max_leaf_rules: usize,
    /// Worst-case memory accesses of a lookup: internal nodes on the longest
    /// path (including the root) plus one access per rule of the largest leaf
    /// on that path plus any pushed-up rules checked along the way.
    pub worst_case_accesses: u64,
}

/// A decision tree over a ruleset, produced by a HiCuts- or HyperCuts-style
/// builder.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    spec: DimensionSpec,
    rules: Vec<Rule>,
    nodes: Vec<Node>,
    root: NodeId,
}

impl DecisionTree {
    /// Assembles a tree from parts.  `nodes[root]` must exist and every
    /// child index must be in bounds (checked in debug builds).
    pub fn new(ruleset: &RuleSet, nodes: Vec<Node>, root: NodeId) -> DecisionTree {
        debug_assert!((root as usize) < nodes.len());
        DecisionTree {
            spec: *ruleset.spec(),
            rules: ruleset.rules().to_vec(),
            nodes,
            root,
        }
    }

    /// The tree's nodes (for encoders and diagnostics).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The geometry of the ruleset the tree was built over.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }

    /// The rules the tree classifies against (copied from the ruleset at
    /// build time so the tree is self-contained).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Classifies a packet, optionally recording work into `stats`.
    pub fn classify(&self, pkt: &PacketHeader, mut stats: Option<&mut LookupStats>) -> MatchResult {
        let mut best: Option<RuleId> = None;
        let mut node_id = self.root;
        loop {
            let node = &self.nodes[node_id as usize];
            if let Some(s) = stats.as_deref_mut() {
                s.memory_accesses += 1;
                s.ops.loads += 2; // node header + cut description
                s.ops.alu += 4;
                s.ops.branches += 1;
            }
            match &node.kind {
                NodeKind::Leaf { rules } => {
                    self.scan_rules(rules, pkt, &mut best, stats.as_deref_mut());
                    break;
                }
                NodeKind::Internal {
                    cuts,
                    children,
                    stored_rules,
                    cut_region,
                } => {
                    if let Some(s) = stats.as_deref_mut() {
                        s.nodes_visited += 1;
                    }
                    if !stored_rules.is_empty() {
                        self.scan_rules(stored_rules, pkt, &mut best, stats.as_deref_mut());
                    }
                    match cuts.child_index(cut_region, pkt) {
                        Some(idx) => {
                            if let Some(s) = stats.as_deref_mut() {
                                // Index arithmetic: one mul/add/compare per cut dimension
                                // plus the child-pointer load.
                                let dims = cuts.cut_dimensions().len() as u64;
                                s.ops.alu += 3 * dims;
                                s.ops.muls += dims;
                                s.ops.loads += 1;
                            }
                            node_id = children[idx as usize];
                        }
                        None => break, // outside the compacted region: nothing below can match
                    }
                }
            }
        }
        match best {
            Some(id) => MatchResult::Matched(id),
            None => MatchResult::NoMatch,
        }
    }

    /// Linear scan of a rule-id list, updating the best (lowest id) match.
    fn scan_rules(
        &self,
        ids: &[RuleId],
        pkt: &PacketHeader,
        best: &mut Option<RuleId>,
        mut stats: Option<&mut LookupStats>,
    ) {
        for &id in ids {
            if let Some(s) = stats.as_deref_mut() {
                s.rules_compared += 1;
                s.memory_accesses += 1;
                s.ops.loads += 5; // five range pairs (packed words)
                s.ops.alu += 10;
                s.ops.branches += 5;
            }
            // Rules are stored in ascending id order, so the first hit in a
            // list is the best within that list; still guard against an
            // earlier stored-rule hit from a shallower node.
            if best.is_none_or(|b| id < b) && self.rules[id as usize].matches(pkt) {
                *best = Some(best.map_or(id, |b| b.min(id)));
                break;
            }
            // Once the ids exceed the current best there is no point
            // continuing: everything later has lower priority.
            if let Some(b) = *best {
                if id >= b {
                    break;
                }
            }
        }
    }

    /// Memory footprint of the structure plus the stored ruleset under the
    /// software [`MemoryModel`].
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.rules.len() * MemoryModel::RULE_BYTES;
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Internal {
                    children,
                    stored_rules,
                    ..
                } => {
                    bytes += MemoryModel::INTERNAL_HEADER_BYTES
                        + children.len() * MemoryModel::CHILD_POINTER_BYTES
                        + stored_rules.len() * MemoryModel::RULE_POINTER_BYTES;
                }
                NodeKind::Leaf { rules } => {
                    bytes += MemoryModel::LEAF_HEADER_BYTES
                        + rules.len() * MemoryModel::RULE_POINTER_BYTES;
                }
            }
        }
        bytes
    }

    /// Aggregate statistics (node counts, depth, worst-case accesses).
    pub fn stats(&self) -> TreeStats {
        let mut internal = 0usize;
        let mut leaves = 0usize;
        let mut refs = 0usize;
        let mut max_depth = 0u32;
        let mut max_leaf_rules = 0usize;
        for node in &self.nodes {
            max_depth = max_depth.max(node.depth);
            match &node.kind {
                NodeKind::Internal { stored_rules, .. } => {
                    internal += 1;
                    refs += stored_rules.len();
                }
                NodeKind::Leaf { rules } => {
                    leaves += 1;
                    refs += rules.len();
                    max_leaf_rules = max_leaf_rules.max(rules.len());
                }
            }
        }
        TreeStats {
            internal_nodes: internal,
            leaf_nodes: leaves,
            stored_rule_refs: refs,
            max_depth,
            max_leaf_rules,
            worst_case_accesses: self.worst_case_accesses(self.root, 0),
        }
    }

    /// Worst-case memory accesses from `node_id` to any leaf below it.
    fn worst_case_accesses(&self, node_id: NodeId, mut pushed: u64) -> u64 {
        let node = &self.nodes[node_id as usize];
        match &node.kind {
            NodeKind::Leaf { rules } => 1 + pushed + rules.len() as u64,
            NodeKind::Internal {
                children,
                stored_rules,
                ..
            } => {
                pushed += stored_rules.len() as u64;
                let mut worst = 0u64;
                let mut seen: Vec<NodeId> = Vec::new();
                for &c in children {
                    if seen.contains(&c) {
                        continue;
                    }
                    seen.push(c);
                    worst = worst.max(self.worst_case_accesses(c, pushed));
                }
                1 + worst
            }
        }
    }

    /// Renders the tree as an indented text dump (used by the quickstart
    /// example to reproduce Figures 1 and 3 of the paper).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(self.root, 0, &mut out);
        out
    }

    fn dump_node(&self, node_id: NodeId, indent: usize, out: &mut String) {
        use std::fmt::Write as _;
        let node = &self.nodes[node_id as usize];
        let pad = "  ".repeat(indent);
        match &node.kind {
            NodeKind::Leaf { rules } => {
                let names: Vec<String> = rules.iter().map(|r| format!("R{r}")).collect();
                let _ = writeln!(out, "{pad}leaf [{}]", names.join(" "));
            }
            NodeKind::Internal {
                cuts,
                children,
                stored_rules,
                ..
            } => {
                let desc: Vec<String> = cuts
                    .cut_dimensions()
                    .iter()
                    .map(|d| format!("{} x{}", d.name(), cuts.parts[d.index()]))
                    .collect();
                let stored = if stored_rules.is_empty() {
                    String::new()
                } else {
                    format!(" stored={:?}", stored_rules)
                };
                let _ = writeln!(out, "{pad}node cut[{}]{stored}", desc.join(", "));
                let mut seen: Vec<NodeId> = Vec::new();
                for &c in children {
                    if seen.contains(&c) {
                        continue;
                    }
                    seen.push(c);
                    self.dump_node(c, indent + 1, out);
                }
            }
        }
    }
}

/// Returns the ids of `candidates` whose rules intersect `region`
/// (in ascending id order).  Shared by every tree builder.
pub fn rules_intersecting(
    rules: &[Rule],
    candidates: &[RuleId],
    region: &[FieldRange; FIELD_COUNT],
) -> Vec<RuleId> {
    candidates
        .iter()
        .copied()
        .filter(|&id| rules[id as usize].intersects_region(region))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_types::toy;

    /// Hand-builds a tiny tree over the Table 1 ruleset:
    /// root cuts field 0 into 4, children are leaves.
    fn tiny_tree() -> DecisionTree {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let cuts = CutSpec::single(Dimension::SrcIp, 4);
        let rules: Vec<RuleId> = (0..rs.len() as u32).collect();
        let mut nodes = vec![Node {
            region,
            depth: 0,
            kind: NodeKind::Leaf { rules: vec![] }, // placeholder, replaced below
        }];
        let mut children = Vec::new();
        for i in 0..4u64 {
            let child_region = cuts.child_region(&region, i);
            let child_rules = rules_intersecting(rs.rules(), &rules, &child_region);
            let id = nodes.len() as NodeId;
            nodes.push(Node {
                region: child_region,
                depth: 1,
                kind: NodeKind::Leaf { rules: child_rules },
            });
            children.push(id);
        }
        nodes[0] = Node {
            region,
            depth: 0,
            kind: NodeKind::Internal {
                cuts,
                children,
                stored_rules: vec![],
                cut_region: region,
            },
        };
        DecisionTree::new(&rs, nodes, 0)
    }

    #[test]
    fn cutspec_child_count_and_dims() {
        let c = CutSpec::single(Dimension::DstIp, 8);
        assert_eq!(c.child_count(), 8);
        assert_eq!(c.cut_dimensions(), vec![Dimension::DstIp]);
        let mut multi = CutSpec::unit();
        multi.parts[0] = 2;
        multi.parts[4] = 2;
        assert_eq!(multi.child_count(), 4);
        assert_eq!(
            multi.cut_dimensions(),
            vec![Dimension::SrcIp, Dimension::Protocol]
        );
        assert_eq!(CutSpec::unit().child_count(), 1);
    }

    #[test]
    fn child_regions_partition_parent() {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let mut cuts = CutSpec::unit();
        cuts.parts[0] = 2;
        cuts.parts[4] = 2;
        let mut covered: u64 = 0;
        for i in 0..4u64 {
            let child = cuts.child_region(&region, i);
            covered += child[0].len() * child[4].len();
            // Uncut dimensions keep the full region.
            assert_eq!(child[1], region[1]);
        }
        assert_eq!(covered, region[0].len() * region[4].len());
    }

    #[test]
    fn child_index_matches_region() {
        let rs = toy::table1_ruleset();
        let region = rs.full_region();
        let mut cuts = CutSpec::unit();
        cuts.parts[0] = 4;
        cuts.parts[4] = 2;
        for f0 in [0u32, 63, 64, 200, 255] {
            for f4 in [0u32, 127, 128, 255] {
                let pkt = PacketHeader::from_fields([f0, 0, 0, 0, f4]);
                let idx = cuts.child_index(&region, &pkt).unwrap();
                let child = cuts.child_region(&region, idx);
                assert!(child[0].contains(f0) && child[4].contains(f4));
            }
        }
    }

    #[test]
    fn child_index_outside_compacted_region_is_none() {
        let cuts = CutSpec::single(Dimension::SrcIp, 2);
        let mut region = toy::table1_ruleset().full_region();
        region[0] = FieldRange::new(100, 200);
        let pkt = PacketHeader::from_fields([50, 0, 0, 0, 0]);
        assert_eq!(cuts.child_index(&region, &pkt), None);
    }

    #[test]
    fn tiny_tree_agrees_with_linear_search() {
        let rs = toy::table1_ruleset();
        let tree = tiny_tree();
        // Exhaustive-ish sweep over a grid of the toy space.
        for f0 in (0..256).step_by(7) {
            for f4 in (0..256).step_by(13) {
                let pkt = PacketHeader::from_fields([f0, 80, 40, 180, f4]);
                assert_eq!(
                    tree.classify(&pkt, None),
                    rs.classify_linear(&pkt),
                    "packet {pkt:?}"
                );
            }
        }
    }

    #[test]
    fn stats_and_memory_are_sane() {
        let tree = tiny_tree();
        let stats = tree.stats();
        assert_eq!(stats.internal_nodes, 1);
        assert_eq!(stats.leaf_nodes, 4);
        assert_eq!(stats.max_depth, 1);
        assert!(stats.max_leaf_rules >= 3);
        assert!(stats.worst_case_accesses >= 2);
        let bytes = tree.memory_bytes();
        // 10 rules * 18 + 1 internal (16 + 4*4) + leaves.
        assert!(bytes > 10 * MemoryModel::RULE_BYTES);
        assert!(bytes < 1_000);
    }

    #[test]
    fn lookup_stats_are_recorded() {
        let tree = tiny_tree();
        let pkt = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        let mut stats = LookupStats::new();
        let result = tree.classify(&pkt, Some(&mut stats));
        assert_eq!(result, MatchResult::Matched(5));
        assert!(stats.nodes_visited >= 1);
        assert!(stats.rules_compared >= 1);
        assert!(stats.memory_accesses >= 2);
        assert!(stats.ops.loads > 0);
    }

    #[test]
    fn dump_mentions_cut_dimension_and_leaves() {
        let tree = tiny_tree();
        let dump = tree.dump();
        assert!(dump.contains("src_ip x4"));
        assert!(dump.contains("leaf ["));
    }
}
