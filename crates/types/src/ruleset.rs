//! Rulesets: ordered rule collections with first-match semantics and text I/O.

use crate::dimension::{Dimension, DimensionSpec, FIELD_COUNT};
use crate::packet::PacketHeader;
use crate::prefix::Prefix;
use crate::range::FieldRange;
use crate::rule::{Rule, RuleId};
use crate::stats::RuleSetStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Result of classifying a packet against a ruleset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchResult {
    /// The packet matched the rule with this id (the highest-priority match).
    Matched(RuleId),
    /// No rule matched; the packet takes the default action.
    NoMatch,
}

impl MatchResult {
    /// The matched rule id, if any.
    pub fn rule_id(self) -> Option<RuleId> {
        match self {
            MatchResult::Matched(id) => Some(id),
            MatchResult::NoMatch => None,
        }
    }
}

/// Errors produced when constructing or parsing rulesets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleSetError {
    /// A rule's range exceeds the width of its dimension.
    RangeExceedsWidth {
        /// Offending rule id.
        rule: RuleId,
        /// Offending dimension.
        dimension: Dimension,
    },
    /// Rule ids must equal their position so that id order == priority order.
    NonSequentialIds {
        /// Position in the rule vector.
        index: usize,
        /// Id found at that position.
        found: RuleId,
    },
    /// A line of the ClassBench-style text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleSetError::RangeExceedsWidth { rule, dimension } => {
                write!(
                    f,
                    "rule {rule} has a range wider than dimension {dimension}"
                )
            }
            RuleSetError::NonSequentialIds { index, found } => {
                write!(
                    f,
                    "rule at position {index} has id {found}; ids must be sequential"
                )
            }
            RuleSetError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RuleSetError {}

/// An ordered collection of rules over a common geometry.
///
/// Priority is positional: rule 0 beats rule 1 and so on, which is the
/// convention used by ClassBench filter files and by Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    name: String,
    spec: DimensionSpec,
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates a ruleset after validating that every rule fits the geometry
    /// and that ids are sequential (id == position).
    pub fn new(
        name: impl Into<String>,
        spec: DimensionSpec,
        rules: Vec<Rule>,
    ) -> Result<RuleSet, RuleSetError> {
        for (i, rule) in rules.iter().enumerate() {
            if rule.id != i as RuleId {
                return Err(RuleSetError::NonSequentialIds {
                    index: i,
                    found: rule.id,
                });
            }
            for d in Dimension::ALL {
                if rule.range(d).hi > spec.max_value(d) {
                    return Err(RuleSetError::RangeExceedsWidth {
                        rule: rule.id,
                        dimension: d,
                    });
                }
            }
        }
        Ok(RuleSet {
            name: name.into(),
            spec,
            rules,
        })
    }

    /// Creates a ruleset, renumbering the rules so ids follow their position.
    pub fn from_rules_renumbered(
        name: impl Into<String>,
        spec: DimensionSpec,
        mut rules: Vec<Rule>,
    ) -> Result<RuleSet, RuleSetError> {
        for (i, r) in rules.iter_mut().enumerate() {
            r.id = i as RuleId;
        }
        RuleSet::new(name, spec, rules)
    }

    /// Human-readable name of the ruleset (e.g. `acl1_2191`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The geometry this ruleset is defined over.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if the ruleset has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule by id (ids are positions).
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id as usize)
    }

    /// Reference linear-search classification: scans rules in priority order
    /// and returns the first match.  Every other classifier in the workspace
    /// is checked against this function.
    pub fn classify_linear(&self, pkt: &PacketHeader) -> MatchResult {
        for rule in &self.rules {
            if rule.matches(pkt) {
                return MatchResult::Matched(rule.id);
            }
        }
        MatchResult::NoMatch
    }

    /// All rules matching the packet, in priority order (used by tests to
    /// check shadowing behaviour).
    pub fn matching_rules(&self, pkt: &PacketHeader) -> Vec<RuleId> {
        self.rules
            .iter()
            .filter(|r| r.matches(pkt))
            .map(|r| r.id)
            .collect()
    }

    /// The full covered region of the geometry (one wildcard range per
    /// dimension) — the root region of any decision tree over this ruleset.
    pub fn full_region(&self) -> [FieldRange; FIELD_COUNT] {
        let mut region = [FieldRange::exact(0); FIELD_COUNT];
        for d in Dimension::ALL {
            region[d.index()] = FieldRange::full(self.spec.width(d));
        }
        region
    }

    /// Takes the first `n` rules as a new ruleset (used to build the paper's
    /// 60/150/500/1000/1600/2191-rule subsets from one generated set).
    pub fn truncated(&self, n: usize, name: impl Into<String>) -> RuleSet {
        let rules: Vec<Rule> = self.rules.iter().take(n).cloned().collect();
        RuleSet::from_rules_renumbered(name, self.spec, rules)
            .expect("truncating a valid ruleset keeps it valid")
    }

    /// Structural statistics used by generators, heuristics and reports.
    pub fn stats(&self) -> RuleSetStats {
        RuleSetStats::compute(self)
    }

    /// Serialises the ruleset into the ClassBench-like text format
    /// understood by [`RuleSet::parse_classbench`]:
    ///
    /// ```text
    /// @10.0.0.0/8  192.168.1.0/24  1024 : 65535  80 : 80  0x06/0xFF
    /// ```
    ///
    /// IP fields that are not expressible as prefixes are written as
    /// `lo-hi` ranges, which the parser also accepts.
    pub fn to_classbench_text(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            let ip_field = |r: FieldRange| -> String {
                match Prefix::from_range(r, 32) {
                    Some(p) => p.to_string(),
                    None => format!("{}-{}", r.lo, r.hi),
                }
            };
            let proto = rule.range(Dimension::Protocol);
            let proto_str = if proto == FieldRange::full(8) {
                "0x00/0x00".to_string()
            } else if proto.is_exact() {
                format!("{:#04x}/0xFF", proto.lo)
            } else {
                format!("{}-{}", proto.lo, proto.hi)
            };
            writeln!(
                out,
                "@{}\t{}\t{} : {}\t{} : {}\t{}",
                ip_field(rule.range(Dimension::SrcIp)),
                ip_field(rule.range(Dimension::DstIp)),
                rule.range(Dimension::SrcPort).lo,
                rule.range(Dimension::SrcPort).hi,
                rule.range(Dimension::DstPort).lo,
                rule.range(Dimension::DstPort).hi,
                proto_str
            )
            .expect("writing to a String cannot fail");
        }
        out
    }

    /// Parses the ClassBench-like text format produced by
    /// [`RuleSet::to_classbench_text`].
    pub fn parse_classbench(name: impl Into<String>, text: &str) -> Result<RuleSet, RuleSetError> {
        let mut rules = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let line_idx = lineno + 1;
            let parse_err = |message: String| RuleSetError::Parse {
                line: line_idx,
                message,
            };
            let body = line.strip_prefix('@').unwrap_or(line);
            let cols: Vec<&str> = body.split_whitespace().collect();
            if cols.len() < 8 {
                return Err(parse_err(format!(
                    "expected at least 8 columns, found {}",
                    cols.len()
                )));
            }
            let src = parse_ip_field(cols[0]).map_err(&parse_err)?;
            let dst = parse_ip_field(cols[1]).map_err(&parse_err)?;
            // Port columns are "lo : hi" → three tokens each.
            if cols[3] != ":" || cols[6] != ":" {
                return Err(parse_err("expected 'lo : hi' port syntax".to_string()));
            }
            let sp_lo: u32 = cols[2]
                .parse()
                .map_err(|_| parse_err(format!("bad port {}", cols[2])))?;
            let sp_hi: u32 = cols[4]
                .parse()
                .map_err(|_| parse_err(format!("bad port {}", cols[4])))?;
            let dp_lo: u32 = cols[5]
                .parse()
                .map_err(|_| parse_err(format!("bad port {}", cols[5])))?;
            let dp_hi: u32 = cols[7]
                .parse()
                .map_err(|_| parse_err(format!("bad port {}", cols[7])))?;
            if sp_lo > sp_hi || dp_lo > dp_hi || sp_hi > 65535 || dp_hi > 65535 {
                return Err(parse_err(
                    "port range out of order or out of bounds".to_string(),
                ));
            }
            let proto = if cols.len() > 8 {
                parse_protocol_field(cols[8]).map_err(parse_err)?
            } else {
                FieldRange::full(8)
            };
            let id = rules.len() as RuleId;
            rules.push(Rule::new(
                id,
                [
                    src,
                    dst,
                    FieldRange::new(sp_lo, sp_hi),
                    FieldRange::new(dp_lo, dp_hi),
                    proto,
                ],
            ));
        }
        RuleSet::new(name, DimensionSpec::FIVE_TUPLE, rules)
    }
}

/// Parses `a.b.c.d/len`, a bare `a.b.c.d` (treated as /32) or `lo-hi`.
fn parse_ip_field(s: &str) -> Result<FieldRange, String> {
    if let Some((lo, hi)) = s.split_once('-') {
        let lo: u32 = parse_ip_or_int(lo)?;
        let hi: u32 = parse_ip_or_int(hi)?;
        if lo > hi {
            return Err(format!("inverted IP range {s}"));
        }
        return Ok(FieldRange::new(lo, hi));
    }
    let (addr_str, len_str) = match s.split_once('/') {
        Some((a, l)) => (a, l),
        None => (s, "32"),
    };
    let addr = parse_ip_or_int(addr_str)?;
    let len: u8 = len_str
        .parse()
        .map_err(|_| format!("bad prefix length {len_str}"))?;
    if len > 32 {
        return Err(format!("prefix length {len} exceeds 32"));
    }
    Ok(Prefix::ipv4(addr, len).to_range())
}

/// Parses dotted-quad or plain decimal/hex integers.
fn parse_ip_or_int(s: &str) -> Result<u32, String> {
    if s.contains('.') {
        let octets: Vec<&str> = s.split('.').collect();
        if octets.len() != 4 {
            return Err(format!("bad IPv4 address {s}"));
        }
        let mut v: u32 = 0;
        for o in octets {
            let b: u32 = o.parse().map_err(|_| format!("bad IPv4 octet {o}"))?;
            if b > 255 {
                return Err(format!("IPv4 octet {b} out of range"));
            }
            v = (v << 8) | b;
        }
        Ok(v)
    } else if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad hex value {s}"))
    } else {
        s.parse().map_err(|_| format!("bad integer {s}"))
    }
}

/// Parses `0xNN/0xFF` (exact), `0x00/0x00` (wildcard) or `lo-hi`.
fn parse_protocol_field(s: &str) -> Result<FieldRange, String> {
    if let Some((val, mask)) = s.split_once('/') {
        let v = parse_ip_or_int(val)?;
        let m = parse_ip_or_int(mask)?;
        if v > 255 || m > 255 {
            return Err(format!("protocol field {s} out of range"));
        }
        if m == 0 {
            Ok(FieldRange::full(8))
        } else if m == 0xFF {
            Ok(FieldRange::exact(v))
        } else {
            Err(format!(
                "unsupported protocol mask {s} (must be 0x00 or 0xFF)"
            ))
        }
    } else if let Some((lo, hi)) = s.split_once('-') {
        let lo = parse_ip_or_int(lo)?;
        let hi = parse_ip_or_int(hi)?;
        if lo > hi || hi > 255 {
            return Err(format!("bad protocol range {s}"));
        }
        Ok(FieldRange::new(lo, hi))
    } else {
        let v = parse_ip_or_int(s)?;
        if v > 255 {
            return Err(format!("protocol {v} out of range"));
        }
        Ok(FieldRange::exact(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleBuilder;
    use crate::toy;

    fn small_set() -> RuleSet {
        let rules = vec![
            RuleBuilder::new(0)
                .src_prefix(0x0A00_0000, 8)
                .dst_port(80)
                .protocol(6)
                .build(),
            RuleBuilder::new(1)
                .src_prefix(0x0A00_0000, 8)
                .protocol(6)
                .build(),
            RuleBuilder::new(2).build(),
        ];
        RuleSet::new("small", DimensionSpec::FIVE_TUPLE, rules).unwrap()
    }

    #[test]
    fn first_match_wins() {
        let rs = small_set();
        let http = PacketHeader::five_tuple(0x0A01_0101, 0x01020304, 1234, 80, 6);
        assert_eq!(rs.classify_linear(&http), MatchResult::Matched(0));
        let ssh = PacketHeader::five_tuple(0x0A01_0101, 0x01020304, 1234, 22, 6);
        assert_eq!(rs.classify_linear(&ssh), MatchResult::Matched(1));
        let udp = PacketHeader::five_tuple(0x0B01_0101, 0x01020304, 1234, 53, 17);
        assert_eq!(rs.classify_linear(&udp), MatchResult::Matched(2));
        assert_eq!(rs.matching_rules(&http), vec![0, 1, 2]);
    }

    #[test]
    fn no_match_without_default_rule() {
        let rules = vec![RuleBuilder::new(0).protocol(6).build()];
        let rs = RuleSet::new("tcp_only", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let udp = PacketHeader::five_tuple(1, 2, 3, 4, 17);
        assert_eq!(rs.classify_linear(&udp), MatchResult::NoMatch);
        assert_eq!(rs.classify_linear(&udp).rule_id(), None);
    }

    #[test]
    fn rejects_non_sequential_ids() {
        let rules = vec![RuleBuilder::new(5).build()];
        let err = RuleSet::new("bad", DimensionSpec::FIVE_TUPLE, rules).unwrap_err();
        assert!(matches!(
            err,
            RuleSetError::NonSequentialIds { index: 0, found: 5 }
        ));
    }

    #[test]
    fn rejects_out_of_width_ranges() {
        let mut rule = Rule::wildcard(0, &DimensionSpec::TOY);
        rule.ranges[0] = FieldRange::new(0, 300); // exceeds 8 bits
        let err = RuleSet::new("bad", DimensionSpec::TOY, vec![rule]).unwrap_err();
        assert!(matches!(err, RuleSetError::RangeExceedsWidth { .. }));
    }

    #[test]
    fn truncated_keeps_prefix_of_rules() {
        let rs = small_set();
        let t = rs.truncated(2, "small_2");
        assert_eq!(t.len(), 2);
        assert_eq!(t.rules()[0].ranges, rs.rules()[0].ranges);
        assert_eq!(t.name(), "small_2");
    }

    #[test]
    fn classbench_text_roundtrip() {
        let rs = small_set();
        let text = rs.to_classbench_text();
        let parsed = RuleSet::parse_classbench("small", &text).unwrap();
        assert_eq!(parsed.len(), rs.len());
        for (a, b) in parsed.rules().iter().zip(rs.rules()) {
            assert_eq!(a.ranges, b.ranges);
        }
    }

    #[test]
    fn classbench_text_roundtrip_toy_ruleset_as_ranges() {
        // The toy ruleset has non-prefix IP ranges; they serialise as lo-hi.
        let toy = toy::table1_ruleset();
        // Re-express it in the 5-tuple geometry for text I/O purposes.
        let rules: Vec<Rule> = toy.rules().to_vec();
        let rs = RuleSet::new("toy5", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let text = rs.to_classbench_text();
        let parsed = RuleSet::parse_classbench("toy5", &text).unwrap();
        for (a, b) in parsed.rules().iter().zip(rs.rules()) {
            assert_eq!(a.ranges, b.ranges);
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(RuleSet::parse_classbench("x", "@10.0.0.0/8").is_err());
        assert!(
            RuleSet::parse_classbench("x", "@10.0.0.0/8 1.2.3.4 0 : 5 0 : bad 0x06/0xFF").is_err()
        );
        assert!(
            RuleSet::parse_classbench("x", "@10.0.0.0/40 1.2.3.4 0 : 5 0 : 9 0x06/0xFF").is_err()
        );
        // Comments and blank lines are fine.
        let ok = RuleSet::parse_classbench(
            "x",
            "# comment\n\n@10.0.0.0/8\t1.2.3.4\t0 : 5\t0 : 9\t0x06/0xFF\n",
        );
        assert_eq!(ok.unwrap().len(), 1);
    }

    #[test]
    fn full_region_matches_spec() {
        let rs = small_set();
        let region = rs.full_region();
        assert_eq!(region[0], FieldRange::full(32));
        assert_eq!(region[2], FieldRange::full(16));
        assert_eq!(region[4], FieldRange::full(8));
    }
}
