//! Packet headers — points in the 5-dimensional classification space.

use crate::dimension::{Dimension, DimensionSpec, FIELD_COUNT};
use serde::{Deserialize, Serialize};

/// A packet header reduced to the five classification fields.
///
/// The header is stored as one `u32` per dimension in field order
/// (src IP, dst IP, src port, dst port, protocol).  For the real 5-tuple
/// geometry the port and protocol values simply occupy the low bits of their
/// word.  Use the convenience constructors for readable call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Field values in dimension order.
    pub fields: [u32; FIELD_COUNT],
}

impl PacketHeader {
    /// Builds a header directly from the five field values in field order.
    #[inline]
    pub const fn from_fields(fields: [u32; FIELD_COUNT]) -> PacketHeader {
        PacketHeader { fields }
    }

    /// Builds a real 5-tuple header.
    #[inline]
    pub fn five_tuple(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        protocol: u8,
    ) -> PacketHeader {
        PacketHeader {
            fields: [
                src_ip,
                dst_ip,
                u32::from(src_port),
                u32::from(dst_port),
                u32::from(protocol),
            ],
        }
    }

    /// Value of the header in dimension `dim`.
    #[inline]
    pub fn field(&self, dim: Dimension) -> u32 {
        self.fields[dim.index()]
    }

    /// Source IP address.
    #[inline]
    pub fn src_ip(&self) -> u32 {
        self.fields[0]
    }

    /// Destination IP address.
    #[inline]
    pub fn dst_ip(&self) -> u32 {
        self.fields[1]
    }

    /// Source port.
    #[inline]
    pub fn src_port(&self) -> u16 {
        self.fields[2] as u16
    }

    /// Destination port.
    #[inline]
    pub fn dst_port(&self) -> u16 {
        self.fields[3] as u16
    }

    /// Protocol number.
    #[inline]
    pub fn protocol(&self) -> u8 {
        self.fields[4] as u8
    }

    /// The 8 most significant bits of every dimension, as used by the
    /// hardware accelerator's index computation (mask → shift → add).
    #[inline]
    pub fn msb8(&self, spec: &DimensionSpec) -> [u8; FIELD_COUNT] {
        let mut out = [0u8; FIELD_COUNT];
        for d in Dimension::ALL {
            out[d.index()] = spec.msb8(d, self.fields[d.index()]);
        }
        out
    }

    /// `true` if every field value fits inside the given dimension widths.
    pub fn fits(&self, spec: &DimensionSpec) -> bool {
        Dimension::ALL
            .iter()
            .all(|&d| self.fields[d.index()] <= spec.max_value(d))
    }
}

impl std::fmt::Display for PacketHeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ip = |v: u32| {
            format!(
                "{}.{}.{}.{}",
                (v >> 24) & 0xFF,
                (v >> 16) & 0xFF,
                (v >> 8) & 0xFF,
                v & 0xFF
            )
        };
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            ip(self.src_ip()),
            self.src_port(),
            ip(self.dst_ip()),
            self.dst_port(),
            self.protocol()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tuple_accessors() {
        let p = PacketHeader::five_tuple(0xC0A8_0001, 0x0A00_0002, 1234, 80, 6);
        assert_eq!(p.src_ip(), 0xC0A8_0001);
        assert_eq!(p.dst_ip(), 0x0A00_0002);
        assert_eq!(p.src_port(), 1234);
        assert_eq!(p.dst_port(), 80);
        assert_eq!(p.protocol(), 6);
        assert_eq!(p.field(Dimension::DstPort), 80);
    }

    #[test]
    fn msb8_extraction() {
        let p = PacketHeader::five_tuple(0xAB12_3456, 0xCD00_0000, 0x1F00, 0x0080, 17);
        let spec = DimensionSpec::FIVE_TUPLE;
        let msb = p.msb8(&spec);
        assert_eq!(msb[0], 0xAB);
        assert_eq!(msb[1], 0xCD);
        assert_eq!(msb[2], 0x1F);
        assert_eq!(msb[3], 0x00);
        assert_eq!(msb[4], 17);
    }

    #[test]
    fn fits_checks_widths() {
        let spec = DimensionSpec::TOY;
        assert!(PacketHeader::from_fields([1, 2, 3, 4, 5]).fits(&spec));
        assert!(!PacketHeader::from_fields([256, 2, 3, 4, 5]).fits(&spec));
    }

    #[test]
    fn display_is_human_readable() {
        let p = PacketHeader::five_tuple(0xC0A8_0001, 0x0A00_0002, 1234, 80, 6);
        assert_eq!(p.to_string(), "192.168.0.1:1234 -> 10.0.0.2:80 proto 6");
    }
}
