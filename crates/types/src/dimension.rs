//! Packet-header dimensions and per-dimension bit widths.

use serde::{Deserialize, Serialize};

/// Number of header fields (dimensions) used for classification.
pub const FIELD_COUNT: usize = 5;

/// One of the five classification dimensions.
///
/// The ordering matches the field order used throughout the paper and the
/// ClassBench filter format: source address, destination address, source
/// port, destination port, protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum Dimension {
    /// Source IPv4 address (32 bits).
    SrcIp = 0,
    /// Destination IPv4 address (32 bits).
    DstIp = 1,
    /// Transport-layer source port (16 bits).
    SrcPort = 2,
    /// Transport-layer destination port (16 bits).
    DstPort = 3,
    /// IP protocol number (8 bits).
    Protocol = 4,
}

impl Dimension {
    /// All dimensions in field order.
    pub const ALL: [Dimension; FIELD_COUNT] = [
        Dimension::SrcIp,
        Dimension::DstIp,
        Dimension::SrcPort,
        Dimension::DstPort,
        Dimension::Protocol,
    ];

    /// Index of this dimension in field order (0..5).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dimension from its field index. Panics if `idx >= 5`.
    #[inline]
    pub fn from_index(idx: usize) -> Dimension {
        Dimension::ALL[idx]
    }

    /// Short human-readable name used by dump/debug output.
    pub const fn name(self) -> &'static str {
        match self {
            Dimension::SrcIp => "src_ip",
            Dimension::DstIp => "dst_ip",
            Dimension::SrcPort => "src_port",
            Dimension::DstPort => "dst_port",
            Dimension::Protocol => "protocol",
        }
    }
}

impl std::fmt::Display for Dimension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-dimension bit widths of the classification space.
///
/// The standard 5-tuple geometry is [`DimensionSpec::FIVE_TUPLE`]
/// (32/32/16/16/8 bits).  The toy ruleset of Table 1 in the paper uses five
/// 8-bit fields ([`DimensionSpec::TOY`]).  All algorithms take the widths
/// from the ruleset rather than hard-coding them so that both geometries (and
/// any test geometry) are exercised by the same code paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimensionSpec {
    /// Bit width of each dimension in field order.
    pub bits: [u8; FIELD_COUNT],
}

impl DimensionSpec {
    /// The real IPv4 5-tuple geometry: 32, 32, 16, 16 and 8 bits.
    pub const FIVE_TUPLE: DimensionSpec = DimensionSpec {
        bits: [32, 32, 16, 16, 8],
    };

    /// The toy geometry of Table 1 in the paper: five 8-bit fields.
    pub const TOY: DimensionSpec = DimensionSpec {
        bits: [8, 8, 8, 8, 8],
    };

    /// Creates a spec from explicit per-dimension bit widths.
    ///
    /// # Panics
    /// Panics if any width is 0 or greater than 32.
    pub fn new(bits: [u8; FIELD_COUNT]) -> DimensionSpec {
        for (i, &b) in bits.iter().enumerate() {
            assert!(
                (1..=32).contains(&b),
                "dimension {i} width must be in 1..=32, got {b}"
            );
        }
        DimensionSpec { bits }
    }

    /// Bit width of dimension `dim`.
    #[inline]
    pub const fn width(&self, dim: Dimension) -> u8 {
        self.bits[dim as usize]
    }

    /// Maximum representable value of dimension `dim`
    /// (i.e. `2^width - 1`).
    #[inline]
    pub fn max_value(&self, dim: Dimension) -> u32 {
        let w = self.width(dim) as u32;
        if w >= 32 {
            u32::MAX
        } else {
            (1u32 << w) - 1
        }
    }

    /// Total number of header bits across all dimensions.
    pub fn total_bits(&self) -> u32 {
        self.bits.iter().map(|&b| b as u32).sum()
    }

    /// The 8 most significant bits of a value in dimension `dim`.
    ///
    /// The hardware accelerator's cut-selection logic operates on the 8 MSBs
    /// of every dimension (Section 3 of the paper); narrower dimensions are
    /// left-aligned so the protocol field uses all of its 8 bits.
    #[inline]
    pub fn msb8(&self, dim: Dimension, value: u32) -> u8 {
        let w = self.width(dim) as u32;
        if w <= 8 {
            (value << (8 - w)) as u8
        } else {
            (value >> (w - 8)) as u8
        }
    }
}

impl Default for DimensionSpec {
    fn default() -> Self {
        DimensionSpec::FIVE_TUPLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_roundtrip() {
        for (i, d) in Dimension::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dimension::from_index(i), *d);
        }
    }

    #[test]
    fn dimension_names_unique() {
        let mut names: Vec<&str> = Dimension::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FIELD_COUNT);
    }

    #[test]
    fn five_tuple_widths() {
        let s = DimensionSpec::FIVE_TUPLE;
        assert_eq!(s.width(Dimension::SrcIp), 32);
        assert_eq!(s.width(Dimension::DstIp), 32);
        assert_eq!(s.width(Dimension::SrcPort), 16);
        assert_eq!(s.width(Dimension::DstPort), 16);
        assert_eq!(s.width(Dimension::Protocol), 8);
        assert_eq!(s.total_bits(), 104);
    }

    #[test]
    fn toy_widths() {
        let s = DimensionSpec::TOY;
        assert_eq!(s.total_bits(), 40);
        for d in Dimension::ALL {
            assert_eq!(s.max_value(d), 255);
        }
    }

    #[test]
    fn max_values() {
        let s = DimensionSpec::FIVE_TUPLE;
        assert_eq!(s.max_value(Dimension::SrcIp), u32::MAX);
        assert_eq!(s.max_value(Dimension::SrcPort), 65535);
        assert_eq!(s.max_value(Dimension::Protocol), 255);
    }

    #[test]
    fn msb8_wide_dimension() {
        let s = DimensionSpec::FIVE_TUPLE;
        assert_eq!(s.msb8(Dimension::SrcIp, 0xAB00_0000), 0xAB);
        assert_eq!(s.msb8(Dimension::SrcPort, 0xAB00), 0xAB);
    }

    #[test]
    fn msb8_narrow_dimension_is_left_aligned() {
        let s = DimensionSpec::FIVE_TUPLE;
        assert_eq!(s.msb8(Dimension::Protocol, 0x11), 0x11);
        let toy = DimensionSpec::new([4, 8, 8, 8, 8]);
        // 4-bit dimension: value 0xF maps to the top nibble.
        assert_eq!(toy.msb8(Dimension::SrcIp, 0xF), 0xF0);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        DimensionSpec::new([0, 32, 16, 16, 8]);
    }

    #[test]
    #[should_panic]
    fn oversized_width_rejected() {
        DimensionSpec::new([33, 32, 16, 16, 8]);
    }
}
