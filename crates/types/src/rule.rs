//! Classification rules — hyper-rectangles with an identity and priority.

use crate::dimension::{Dimension, DimensionSpec, FIELD_COUNT};
use crate::packet::PacketHeader;
use crate::prefix::Prefix;
use crate::range::FieldRange;
use serde::{Deserialize, Serialize};

/// Identifier of a rule inside a ruleset.
///
/// The id doubles as the priority: lower ids are matched first, mirroring the
/// ordering of ClassBench filter files and Table 1 of the paper (R0 … R9).
pub type RuleId = u32;

/// Protocol field specification of a rule: either an exact protocol number or
/// a wildcard, matching the 8-bit value + 1-bit mask layout the hardware
/// encoding of the paper uses (9 bits in total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Match any protocol.
    Any,
    /// Match exactly this protocol number.
    Exact(u8),
}

impl Protocol {
    /// The range over the 8-bit protocol dimension this specification covers.
    pub fn to_range(self) -> FieldRange {
        match self {
            Protocol::Any => FieldRange::full(8),
            Protocol::Exact(p) => FieldRange::exact(u32::from(p)),
        }
    }

    /// Recovers a protocol specification from a range if it is expressible.
    pub fn from_range(range: FieldRange) -> Option<Protocol> {
        if range == FieldRange::full(8) {
            Some(Protocol::Any)
        } else if range.is_exact() && range.lo <= 255 {
            Some(Protocol::Exact(range.lo as u8))
        } else {
            None
        }
    }
}

/// A classification rule: one inclusive range per dimension plus an id.
///
/// Rules are pure data; matching semantics live here, priority resolution in
/// [`crate::ruleset::RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Identifier / priority of the rule within its ruleset.
    pub id: RuleId,
    /// Matching range for every dimension, in field order.
    pub ranges: [FieldRange; FIELD_COUNT],
}

impl Rule {
    /// Creates a rule from explicit per-dimension ranges.
    pub fn new(id: RuleId, ranges: [FieldRange; FIELD_COUNT]) -> Rule {
        Rule { id, ranges }
    }

    /// Creates a rule that matches everything (all dimensions wildcarded) for
    /// the given geometry.
    pub fn wildcard(id: RuleId, spec: &DimensionSpec) -> Rule {
        let mut ranges = [FieldRange::exact(0); FIELD_COUNT];
        for d in Dimension::ALL {
            ranges[d.index()] = FieldRange::full(spec.width(d));
        }
        Rule { id, ranges }
    }

    /// Range of the rule in dimension `dim`.
    #[inline]
    pub fn range(&self, dim: Dimension) -> FieldRange {
        self.ranges[dim.index()]
    }

    /// `true` if the packet lies inside the rule on every dimension.
    #[inline]
    pub fn matches(&self, pkt: &PacketHeader) -> bool {
        // Manually unrolled over the fixed field count: this is the innermost
        // loop of the linear-search baseline and of every leaf-node search.
        self.ranges[0].contains(pkt.fields[0])
            && self.ranges[1].contains(pkt.fields[1])
            && self.ranges[2].contains(pkt.fields[2])
            && self.ranges[3].contains(pkt.fields[3])
            && self.ranges[4].contains(pkt.fields[4])
    }

    /// `true` if the rule's hyper-rectangle intersects the given region
    /// (one range per dimension).  This is the overlap test the decision-tree
    /// builders use when deciding which rules belong to a child node.
    #[inline]
    pub fn intersects_region(&self, region: &[FieldRange; FIELD_COUNT]) -> bool {
        self.ranges
            .iter()
            .zip(region.iter())
            .all(|(r, reg)| r.overlaps(reg))
    }

    /// `true` if the rule is a full wildcard in dimension `dim` for the given
    /// geometry.
    pub fn is_wildcard_in(&self, dim: Dimension, spec: &DimensionSpec) -> bool {
        self.range(dim) == FieldRange::full(spec.width(dim))
    }

    /// Number of dimensions in which the rule is a full wildcard.
    pub fn wildcard_count(&self, spec: &DimensionSpec) -> usize {
        Dimension::ALL
            .iter()
            .filter(|&&d| self.is_wildcard_in(d, spec))
            .count()
    }

    /// `true` if this rule's region is entirely contained in `other`'s region
    /// (i.e. `other` shadows this rule whenever `other` has higher priority).
    pub fn covered_by(&self, other: &Rule) -> bool {
        self.ranges
            .iter()
            .zip(other.ranges.iter())
            .all(|(a, b)| b.covers(a))
    }

    /// Source IP range expressed as a prefix, when it is one.
    pub fn src_prefix(&self) -> Option<Prefix> {
        Prefix::from_range(self.range(Dimension::SrcIp), 32)
    }

    /// Destination IP range expressed as a prefix, when it is one.
    pub fn dst_prefix(&self) -> Option<Prefix> {
        Prefix::from_range(self.range(Dimension::DstIp), 32)
    }

    /// Protocol specification, when the protocol range is an exact value or
    /// the full 8-bit wildcard.
    pub fn protocol(&self) -> Option<Protocol> {
        Protocol::from_range(self.range(Dimension::Protocol))
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R{}: src {} dst {} sport {} dport {} proto {}",
            self.id, self.ranges[0], self.ranges[1], self.ranges[2], self.ranges[3], self.ranges[4]
        )
    }
}

/// Convenience builder for 5-tuple rules in the real geometry.
///
/// ```
/// use pclass_types::{RuleBuilder, PacketHeader};
///
/// let rule = RuleBuilder::new(0)
///     .src_prefix(0x0A00_0000, 8)        // 10.0.0.0/8
///     .dst_prefix(0xC0A8_0100, 24)       // 192.168.1.0/24
///     .src_port_range(1024, 65535)
///     .dst_port(80)
///     .protocol(6)
///     .build();
///
/// let pkt = PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_0105, 40000, 80, 6);
/// assert!(rule.matches(&pkt));
/// ```
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    id: RuleId,
    ranges: [FieldRange; FIELD_COUNT],
}

impl RuleBuilder {
    /// Starts a builder for rule `id`; every dimension defaults to wildcard
    /// in the 5-tuple geometry.
    pub fn new(id: RuleId) -> RuleBuilder {
        let spec = DimensionSpec::FIVE_TUPLE;
        RuleBuilder {
            id,
            ranges: [
                FieldRange::full(spec.bits[0]),
                FieldRange::full(spec.bits[1]),
                FieldRange::full(spec.bits[2]),
                FieldRange::full(spec.bits[3]),
                FieldRange::full(spec.bits[4]),
            ],
        }
    }

    /// Sets the source IP prefix.
    pub fn src_prefix(mut self, addr: u32, length: u8) -> Self {
        self.ranges[0] = Prefix::ipv4(addr, length).to_range();
        self
    }

    /// Sets the destination IP prefix.
    pub fn dst_prefix(mut self, addr: u32, length: u8) -> Self {
        self.ranges[1] = Prefix::ipv4(addr, length).to_range();
        self
    }

    /// Sets an arbitrary source IP range.
    pub fn src_ip_range(mut self, lo: u32, hi: u32) -> Self {
        self.ranges[0] = FieldRange::new(lo, hi);
        self
    }

    /// Sets an arbitrary destination IP range.
    pub fn dst_ip_range(mut self, lo: u32, hi: u32) -> Self {
        self.ranges[1] = FieldRange::new(lo, hi);
        self
    }

    /// Sets the source port range.
    pub fn src_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.ranges[2] = FieldRange::new(u32::from(lo), u32::from(hi));
        self
    }

    /// Sets an exact source port.
    pub fn src_port(self, port: u16) -> Self {
        self.src_port_range(port, port)
    }

    /// Sets the destination port range.
    pub fn dst_port_range(mut self, lo: u16, hi: u16) -> Self {
        self.ranges[3] = FieldRange::new(u32::from(lo), u32::from(hi));
        self
    }

    /// Sets an exact destination port.
    pub fn dst_port(self, port: u16) -> Self {
        self.dst_port_range(port, port)
    }

    /// Sets an exact protocol number.
    pub fn protocol(mut self, proto: u8) -> Self {
        self.ranges[4] = FieldRange::exact(u32::from(proto));
        self
    }

    /// Leaves the protocol as a wildcard (the default).
    pub fn any_protocol(mut self) -> Self {
        self.ranges[4] = FieldRange::full(8);
        self
    }

    /// Finishes the rule.
    pub fn build(self) -> Rule {
        Rule::new(self.id, self.ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_rule() -> Rule {
        RuleBuilder::new(3)
            .src_prefix(0x0A00_0000, 8)
            .dst_prefix(0xC0A8_0100, 24)
            .src_port_range(1024, 65535)
            .dst_port(80)
            .protocol(6)
            .build()
    }

    #[test]
    fn builder_defaults_to_wildcards() {
        let r = RuleBuilder::new(0).build();
        assert_eq!(r, Rule::wildcard(0, &DimensionSpec::FIVE_TUPLE));
        assert_eq!(r.wildcard_count(&DimensionSpec::FIVE_TUPLE), 5);
    }

    #[test]
    fn match_requires_every_dimension() {
        let r = sample_rule();
        let hit = PacketHeader::five_tuple(0x0A01_0203, 0xC0A8_0105, 40000, 80, 6);
        assert!(r.matches(&hit));
        // Wrong protocol.
        assert!(!r.matches(&PacketHeader::five_tuple(
            0x0A01_0203,
            0xC0A8_0105,
            40000,
            80,
            17
        )));
        // Source port below range.
        assert!(!r.matches(&PacketHeader::five_tuple(
            0x0A01_0203,
            0xC0A8_0105,
            80,
            80,
            6
        )));
        // Destination outside the /24.
        assert!(!r.matches(&PacketHeader::five_tuple(
            0x0A01_0203,
            0xC0A8_0205,
            40000,
            80,
            6
        )));
    }

    #[test]
    fn prefix_and_protocol_recovery() {
        let r = sample_rule();
        assert_eq!(r.src_prefix(), Some(Prefix::ipv4(0x0A00_0000, 8)));
        assert_eq!(r.dst_prefix(), Some(Prefix::ipv4(0xC0A8_0100, 24)));
        assert_eq!(r.protocol(), Some(Protocol::Exact(6)));
        let any = RuleBuilder::new(0).build();
        assert_eq!(any.protocol(), Some(Protocol::Any));
        // A rule with a non-prefix IP range reports None.
        let odd = RuleBuilder::new(1).src_ip_range(1, 5).build();
        assert_eq!(odd.src_prefix(), None);
    }

    #[test]
    fn intersects_region() {
        let r = sample_rule();
        let mut region = [
            FieldRange::full(32),
            FieldRange::full(32),
            FieldRange::full(16),
            FieldRange::full(16),
            FieldRange::full(8),
        ];
        assert!(r.intersects_region(&region));
        region[3] = FieldRange::new(81, 90);
        assert!(!r.intersects_region(&region));
    }

    #[test]
    fn covered_by() {
        let broad = RuleBuilder::new(0).src_prefix(0x0A00_0000, 8).build();
        let narrow = RuleBuilder::new(1)
            .src_prefix(0x0A01_0000, 16)
            .dst_port(53)
            .build();
        assert!(narrow.covered_by(&broad));
        assert!(!broad.covered_by(&narrow));
    }

    #[test]
    fn protocol_range_conversions() {
        assert_eq!(Protocol::Any.to_range(), FieldRange::full(8));
        assert_eq!(Protocol::Exact(17).to_range(), FieldRange::exact(17));
        assert_eq!(Protocol::from_range(FieldRange::new(0, 100)), None);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = sample_rule().to_string();
        assert!(s.contains("R3"));
        assert!(s.contains("proto 6"));
    }

    proptest! {
        #[test]
        fn prop_match_iff_inside_all_ranges(
            lo in proptest::array::uniform5(0u32..200),
            w in proptest::array::uniform5(0u32..55),
            pkt in proptest::array::uniform5(0u32..255),
        ) {
            let ranges = [
                FieldRange::new(lo[0], lo[0] + w[0]),
                FieldRange::new(lo[1], lo[1] + w[1]),
                FieldRange::new(lo[2], lo[2] + w[2]),
                FieldRange::new(lo[3], lo[3] + w[3]),
                FieldRange::new(lo[4], lo[4] + w[4]),
            ];
            let rule = Rule::new(0, ranges);
            let header = PacketHeader::from_fields(pkt);
            let expected = ranges.iter().zip(pkt.iter()).all(|(r, &v)| r.contains(v));
            prop_assert_eq!(rule.matches(&header), expected);
        }

        #[test]
        fn prop_wildcard_matches_everything(pkt in proptest::array::uniform5(any::<u32>())) {
            let rule = Rule::wildcard(0, &DimensionSpec::FIVE_TUPLE);
            let mut header = PacketHeader::from_fields(pkt);
            // Clamp ports/protocol into their widths so the packet is valid.
            header.fields[2] &= 0xFFFF;
            header.fields[3] &= 0xFFFF;
            header.fields[4] &= 0xFF;
            prop_assert!(rule.matches(&header));
        }
    }
}
