//! The toy ruleset of Table 1 in the paper.
//!
//! The paper illustrates HiCuts and HyperCuts with a 10-rule, 5-field
//! ruleset whose fields are all 8 bits wide (values 0–255).  The decision
//! trees of Figures 1 and 3 and the cut diagram of Figure 2 are built from
//! this set; the unit tests of `pclass-algos` reproduce those figures from
//! the data returned here.

use crate::dimension::DimensionSpec;
use crate::range::FieldRange;
use crate::rule::Rule;
use crate::ruleset::RuleSet;

/// Raw `(lo, hi)` bounds of Table 1, row by row (R0 … R9), field by field
/// (Field0 … Field4).
pub const TABLE1: [[(u32, u32); 5]; 10] = [
    [(128, 240), (15, 15), (40, 40), (180, 180), (120, 140)],
    [(90, 100), (0, 80), (0, 200), (190, 200), (130, 132)],
    [(130, 255), (60, 140), (0, 60), (180, 180), (133, 135)],
    [(90, 92), (200, 200), (40, 40), (180, 180), (136, 138)],
    [(130, 255), (60, 140), (40, 40), (190, 200), (60, 63)],
    [(140, 150), (60, 140), (0, 255), (0, 255), (140, 255)],
    [(160, 165), (80, 80), (0, 255), (0, 255), (0, 80)],
    [(48, 50), (0, 80), (40, 40), (0, 255), (0, 10)],
    [(26, 36), (50, 50), (40, 40), (180, 180), (30, 40)],
    [(40, 40), (40, 70), (40, 40), (0, 255), (0, 60)],
];

/// Builds the Table 1 ruleset in the toy (five 8-bit fields) geometry.
pub fn table1_ruleset() -> RuleSet {
    let rules: Vec<Rule> = TABLE1
        .iter()
        .enumerate()
        .map(|(id, fields)| {
            let ranges = [
                FieldRange::new(fields[0].0, fields[0].1),
                FieldRange::new(fields[1].0, fields[1].1),
                FieldRange::new(fields[2].0, fields[2].1),
                FieldRange::new(fields[3].0, fields[3].1),
                FieldRange::new(fields[4].0, fields[4].1),
            ];
            Rule::new(id as u32, ranges)
        })
        .collect();
    RuleSet::new("table1", DimensionSpec::TOY, rules).expect("Table 1 data is valid")
}

/// The binth value used for Figures 1 and 3 of the paper.
pub const TABLE1_BINTH: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketHeader;
    use crate::ruleset::MatchResult;

    #[test]
    fn table1_has_ten_rules_over_toy_geometry() {
        let rs = table1_ruleset();
        assert_eq!(rs.len(), 10);
        assert_eq!(*rs.spec(), DimensionSpec::TOY);
        assert_eq!(rs.name(), "table1");
    }

    #[test]
    fn table1_row_values_match_the_paper() {
        let rs = table1_ruleset();
        // Spot-check R0 and R9 against the printed table.
        let r0 = rs.rule(0).unwrap();
        assert_eq!(r0.ranges[0], FieldRange::new(128, 240));
        assert_eq!(r0.ranges[4], FieldRange::new(120, 140));
        let r9 = rs.rule(9).unwrap();
        assert_eq!(r9.ranges[0], FieldRange::exact(40));
        assert_eq!(r9.ranges[1], FieldRange::new(40, 70));
    }

    #[test]
    fn table1_classification_examples() {
        let rs = table1_ruleset();
        // A point inside R5 only: field0=145, others inside R5's wildcards.
        let p = PacketHeader::from_fields([145, 100, 10, 10, 200]);
        assert_eq!(rs.classify_linear(&p), MatchResult::Matched(5));
        // A point inside R2 and R4 overlap region -> R2 wins on priority.
        let p = PacketHeader::from_fields([200, 100, 50, 180, 134]);
        assert_eq!(rs.classify_linear(&p), MatchResult::Matched(2));
        // A point matching nothing.
        let p = PacketHeader::from_fields([0, 0, 0, 0, 255]);
        assert_eq!(rs.classify_linear(&p), MatchResult::NoMatch);
    }
}
