//! Structural statistics over rulesets.
//!
//! The decision-tree heuristics (HyperCuts' dimension choice), the synthetic
//! generators and the experiment reports all need the same handful of
//! structural measurements; they are centralised here.

use crate::dimension::{Dimension, FIELD_COUNT};
use crate::range::FieldRange;
use crate::ruleset::RuleSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Footprint of a flattened (arena) search structure.
///
/// Produced by `pclass_algos::flat::FlatTree::arena_stats` and recorded per
/// build in `BENCH_throughput.json`'s `builds` records; it lives here, next
/// to [`RuleSetStats`], so every crate that serializes measurements shares
/// one definition.  Unlike the idealised 32-bit software memory model the
/// pointer trees report under, these byte counts are the *actual* in-memory
/// sizes of the arena arrays.
///
/// The counts cover the **serving image** — everything a lookup can touch
/// (node records, slabs, overflow rules) — not the update bookkeeping the
/// arena keeps on the side (the live-rule map and lazily built reference
/// counts, roughly one extra rule image plus 4 bytes per node), which only
/// the write path reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Number of node records.
    pub nodes: usize,
    /// Number of cut-dimension records in the shared cut slab.
    pub cut_records: usize,
    /// Number of child-pointer slots in the shared child slab.
    pub child_slots: usize,
    /// Number of packed rule images in the shared rule slab.
    pub rule_refs: usize,
    /// Bytes of the tree structure (node records + cut slab + child slab),
    /// excluding the rule slab.
    pub arena_bytes: usize,
    /// Structure bytes plus the packed rule-image slab — everything a
    /// lookup can touch (the arena is self-contained).
    pub total_bytes: usize,
}

/// Running counters of an updatable search structure's incremental-update
/// activity.
///
/// Tracked by the rebuild-free `insert`/`delete` paths of
/// `pclass_algos::dtree::DecisionTree` and `pclass_algos::flat::FlatTree`
/// and recorded per churn cell in `BENCH_throughput.json`'s `churn` records
/// (schema `pclass-throughput/v4`, where each cell also carries the
/// scenario-matrix churn-profile tag it was measured under — 1 % burst,
/// 10 % deep churn, delete-heavy drain, or a sustained paced stream); it
/// lives here, next to [`ArenaStats`], so every crate that serializes
/// measurements shares one definition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Rules inserted since the structure was built.
    pub inserts: u64,
    /// Rules deleted since the structure was built.
    pub deletes: u64,
    /// Amortized re-flatten compactions triggered by the dirty-ratio
    /// threshold (flat arenas only; always 0 for pointer trees).
    pub reflattens: u64,
    /// Rules currently parked in the overflow side-table because their
    /// leaf's slab span had no free slot (flat arenas only).
    pub overflow_rules: u64,
}

/// p50/p95/p99 percentiles over a set of wall-time samples (nanoseconds).
///
/// Shared by every layer that reports latency distributions: the churn
/// harness records per-burst `apply_batch` latencies, and the multi-tenant
/// router records per-tenant batch-service latencies.  It lives here, next
/// to [`UpdateStats`], so every crate that serializes measurements shares
/// one definition — and one rank formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median (50th-percentile) sample, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile sample, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile sample, nanoseconds.
    pub p99_ns: u64,
}

impl LatencyPercentiles {
    /// Computes the percentiles of a sample set (sorted in place; an empty
    /// set yields all-zero percentiles).  The rank formula
    /// `sorted[(len * p / 100).min(len - 1)]` is the one the churn harness
    /// has recorded since schema v2, so regenerated baselines stay
    /// comparable.
    pub fn from_samples(samples: &mut [u64]) -> LatencyPercentiles {
        samples.sort_unstable();
        let pct = |p: usize| -> u64 {
            if samples.is_empty() {
                0
            } else {
                samples[(samples.len() * p / 100).min(samples.len() - 1)]
            }
        };
        LatencyPercentiles {
            p50_ns: pct(50),
            p95_ns: pct(95),
            p99_ns: pct(99),
        }
    }
}

/// Running hit/miss/eviction counters of an exact-match hot-flow cache.
///
/// Produced by `pclass_algos::hotcache::HotCache::stats` and recorded per
/// cached cell in `BENCH_throughput.json` (schema `pclass-throughput/v6`);
/// it lives here, next to [`ArenaStats`] and [`UpdateStats`], so every crate
/// that serializes measurements shares one definition.  Counters are
/// cumulative over the cache's lifetime; [`CacheStats::delta_since`] turns
/// two snapshots into a per-run figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to the backing classifier (including every
    /// probe of a zero-capacity cache).
    pub misses: u64,
    /// Fills that displaced a live (current-generation) entry.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache (0.0 when nothing was
    /// probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter growth since an earlier snapshot of the same cache.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Adds another cache's counters into this one (used to aggregate the
    /// per-shard caches of a multi-worker engine).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Per-tenant memory accounting of a multi-tenant roster entry: the
/// serving structure, the tenant's hot-cache slice, and the budget the
/// tenant was admitted under.
///
/// Produced by `pclass_engine::TenantRouter` at admission time and
/// recorded in `BENCH_throughput.json` tenant cells (schema
/// `pclass-throughput/v7`); it lives here, next to [`ArenaStats`], so
/// every crate that serializes measurements shares one definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Bytes of the tenant's classifier ([`crate::RuleSet`] + search
    /// structure, via `Classifier::memory_bytes`).
    pub classifier_bytes: usize,
    /// Bytes of the tenant's hot-flow cache slice (0 when the router is
    /// uncached or the slice rounded to zero slots).
    pub cache_bytes: usize,
    /// `classifier_bytes + cache_bytes` — what admission charges against
    /// the budgets.
    pub total_bytes: usize,
    /// The per-tenant budget the spec declared, if any
    /// (`TenantSpec::memory_budget`).
    pub budget_bytes: Option<usize>,
    /// Arena layout statistics when the classifier is a flat decision-tree
    /// arena (`Classifier::arena_stats`), `None` for pointer trees and
    /// other structures.
    pub arena: Option<ArenaStats>,
}

/// Cross-tenant fairness summary of one multi-tenant serving run,
/// computed over the per-tenant service rates (Mpps of busy time) and,
/// for the weighted index, over the weight-normalised service shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessSummary {
    /// Jain's fairness index `(Σx)² / (n·Σx²)` over the per-tenant rates:
    /// 1.0 when every tenant is served at the same rate, approaching `1/n`
    /// when one tenant monopolises the worker pool.
    pub jain_index: f64,
    /// Jain's index over the per-tenant *SLO-relative* throughputs
    /// (served share ÷ weight share, `TenantReport::slo_rel` in
    /// `pclass-engine`): 1.0 when every tenant receives exactly its
    /// weighted fair share of the served packets, regardless of how
    /// expensive its individual packets are.  Equal to [`jain_index`
    /// over the rates](FairnessSummary::over_rates) until
    /// [`FairnessSummary::weighted_over`] installs the share-based index.
    pub weighted_jain: f64,
    /// The slowest tenant's rate.
    pub min_mpps: f64,
    /// The fastest tenant's rate.
    pub max_mpps: f64,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; empty or all-zero sets are
/// perfectly fair by convention.
fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sq)
    }
}

impl FairnessSummary {
    /// Summarises a set of per-tenant rates.  An empty set (no tenant
    /// served a packet) is perfectly fair by convention.  The weighted
    /// index starts out equal to the rate-based index; callers with
    /// per-tenant weights refine it through
    /// [`FairnessSummary::weighted_over`].
    pub fn over_rates(rates: &[f64]) -> FairnessSummary {
        let jain_index = jain(rates);
        FairnessSummary {
            jain_index,
            weighted_jain: jain_index,
            min_mpps: if rates.is_empty() {
                0.0
            } else {
                rates.iter().copied().fold(f64::INFINITY, f64::min)
            },
            max_mpps: rates.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Installs the weighted fairness index: Jain's index over the
    /// per-tenant SLO-relative throughputs (each tenant's served share
    /// divided by its weight share).  All-equal inputs — every tenant at
    /// exactly its weighted fair share — yield 1.0.
    pub fn weighted_over(mut self, slo_rels: &[f64]) -> FairnessSummary {
        self.weighted_jain = jain(slo_rels);
        self
    }
}

/// Summary statistics of a ruleset's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSetStats {
    /// Number of rules.
    pub rules: usize,
    /// Number of distinct range specifications per dimension
    /// (the quantity HyperCuts compares against its mean when choosing which
    /// dimensions to cut).
    pub distinct_ranges: [usize; FIELD_COUNT],
    /// Number of rules that are full wildcards per dimension.
    pub wildcards: [usize; FIELD_COUNT],
    /// Fraction of rules whose source *and* destination address are
    /// wildcards (the paper attributes fw1's larger memory footprint to
    /// these).
    pub double_wildcard_fraction: f64,
    /// Mean number of wildcarded dimensions per rule.
    pub mean_wildcard_dims: f64,
    /// Average relative width (range length / dimension size) per dimension.
    pub mean_relative_width: [f64; FIELD_COUNT],
}

impl RuleSetStats {
    /// Computes statistics for a ruleset.
    pub fn compute(rs: &RuleSet) -> RuleSetStats {
        let spec = rs.spec();
        let n = rs.len();
        let mut distinct: [HashSet<FieldRange>; FIELD_COUNT] = Default::default();
        let mut wildcards = [0usize; FIELD_COUNT];
        let mut rel_width = [0f64; FIELD_COUNT];
        let mut double_wild = 0usize;
        let mut total_wild_dims = 0usize;

        for rule in rs.rules() {
            let mut wild_dims = 0usize;
            for d in Dimension::ALL {
                let i = d.index();
                let r = rule.range(d);
                distinct[i].insert(r);
                let full = FieldRange::full(spec.width(d));
                if r == full {
                    wildcards[i] += 1;
                    wild_dims += 1;
                }
                rel_width[i] += r.len() as f64 / full.len() as f64;
            }
            total_wild_dims += wild_dims;
            if rule.is_wildcard_in(Dimension::SrcIp, spec)
                && rule.is_wildcard_in(Dimension::DstIp, spec)
            {
                double_wild += 1;
            }
        }

        let denom = n.max(1) as f64;
        let mut mean_relative_width = [0f64; FIELD_COUNT];
        for i in 0..FIELD_COUNT {
            mean_relative_width[i] = rel_width[i] / denom;
        }
        RuleSetStats {
            rules: n,
            distinct_ranges: [
                distinct[0].len(),
                distinct[1].len(),
                distinct[2].len(),
                distinct[3].len(),
                distinct[4].len(),
            ],
            wildcards,
            double_wildcard_fraction: double_wild as f64 / denom,
            mean_wildcard_dims: total_wild_dims as f64 / denom,
            mean_relative_width,
        }
    }

    /// Mean of the per-dimension distinct-range counts (used by the
    /// HyperCuts dimension-selection heuristic).
    pub fn mean_distinct_ranges(&self) -> f64 {
        self.distinct_ranges.iter().sum::<usize>() as f64 / FIELD_COUNT as f64
    }

    /// Dimensions whose distinct-range count is at least the mean — the set
    /// HyperCuts considers for multi-dimensional cutting.
    pub fn hypercuts_candidate_dimensions(&self) -> Vec<Dimension> {
        let mean = self.mean_distinct_ranges();
        Dimension::ALL
            .iter()
            .copied()
            .filter(|d| self.distinct_ranges[d.index()] as f64 >= mean)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionSpec;
    use crate::rule::RuleBuilder;
    use crate::toy;

    #[test]
    fn toy_ruleset_stats() {
        let rs = toy::table1_ruleset();
        let stats = rs.stats();
        assert_eq!(stats.rules, 10);
        // Field 0 of Table 1 has 9 distinct ranges (130-255 appears twice).
        assert_eq!(stats.distinct_ranges[0], 9);
        // Field 2 (40-40 appears many times, plus 0-200, 0-60, 0-255) has 4.
        assert_eq!(stats.distinct_ranges[2], 4);
        // Two rules are wildcards (0-255) in field 2.
        assert_eq!(stats.wildcards[2], 2);
        assert!(stats.mean_distinct_ranges() > 0.0);
    }

    #[test]
    fn hypercuts_candidates_follow_mean() {
        let rs = toy::table1_ruleset();
        let stats = rs.stats();
        let candidates = stats.hypercuts_candidate_dimensions();
        // Field 0 (10 distinct) and field 4 (10 distinct) dominate the mean.
        assert!(candidates.contains(&Dimension::SrcIp));
        assert!(candidates.contains(&Dimension::Protocol));
        assert!(!candidates.contains(&Dimension::SrcPort));
    }

    #[test]
    fn wildcard_fractions() {
        let rules = vec![
            RuleBuilder::new(0).build(),
            RuleBuilder::new(1).src_prefix(0x0A000000, 8).build(),
        ];
        let rs = RuleSet::new("w", DimensionSpec::FIVE_TUPLE, rules).unwrap();
        let stats = rs.stats();
        assert_eq!(stats.wildcards[0], 1);
        assert_eq!(stats.wildcards[1], 2);
        assert!((stats.double_wildcard_fraction - 0.5).abs() < 1e-9);
        assert!(stats.mean_wildcard_dims > 4.0);
    }

    #[test]
    fn latency_percentiles_use_the_churn_rank_formula() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(
            LatencyPercentiles::from_samples(&mut empty),
            LatencyPercentiles::default()
        );
        // Unsorted input is sorted in place; ranks match the historical
        // inline formula `sorted[(len * p / 100).min(len - 1)]`.
        let mut samples: Vec<u64> = (1..=100).rev().collect();
        let p = LatencyPercentiles::from_samples(&mut samples);
        assert_eq!((p.p50_ns, p.p95_ns, p.p99_ns), (51, 96, 100));
        let mut one = vec![7u64];
        let p = LatencyPercentiles::from_samples(&mut one);
        assert_eq!((p.p50_ns, p.p95_ns, p.p99_ns), (7, 7, 7));
    }

    #[test]
    fn cache_stats_rate_delta_and_merge() {
        let zero = CacheStats::default();
        assert_eq!(zero.hit_rate(), 0.0, "no probes is a 0.0 rate, not NaN");
        let mut a = CacheStats {
            hits: 30,
            misses: 10,
            evictions: 2,
        };
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        let earlier = CacheStats {
            hits: 10,
            misses: 4,
            evictions: 2,
        };
        let d = a.delta_since(&earlier);
        assert_eq!((d.hits, d.misses, d.evictions), (20, 6, 0));
        a.merge(&earlier);
        assert_eq!((a.hits, a.misses, a.evictions), (40, 14, 4));
    }

    #[test]
    fn fairness_summary_tracks_jain_index_and_extremes() {
        let even = FairnessSummary::over_rates(&[2.0, 2.0, 2.0, 2.0]);
        assert!((even.jain_index - 1.0).abs() < 1e-12);
        assert_eq!((even.min_mpps, even.max_mpps), (2.0, 2.0));
        // One tenant monopolising n tenants drives the index toward 1/n.
        let skew = FairnessSummary::over_rates(&[4.0, 0.0, 0.0, 0.0]);
        assert!((skew.jain_index - 0.25).abs() < 1e-12);
        assert_eq!((skew.min_mpps, skew.max_mpps), (0.0, 4.0));
        let none = FairnessSummary::over_rates(&[]);
        assert_eq!(none.jain_index, 1.0);
        assert_eq!((none.min_mpps, none.max_mpps), (0.0, 0.0));
        let idle = FairnessSummary::over_rates(&[0.0, 0.0]);
        assert_eq!(idle.jain_index, 1.0, "all-idle is fair by convention");
    }

    #[test]
    fn weighted_jain_tracks_slo_relative_shares_not_rates() {
        // A big tenant serving expensive packets has a low busy-time rate,
        // so the rate index drops — but if every tenant received exactly
        // its weighted fair share of the packets, the weighted index over
        // the SLO-relative throughputs (all 1.0) stays perfect.
        let summary = FairnessSummary::over_rates(&[0.5, 4.0, 4.0]).weighted_over(&[1.0, 1.0, 1.0]);
        assert!(summary.jain_index < 1.0);
        assert!((summary.weighted_jain - 1.0).abs() < 1e-12);
        // One tenant at twice its fair share, one at half: Jain over
        // (2, 0.5) = 6.25/8.5.
        let skew = FairnessSummary::over_rates(&[1.0, 1.0]).weighted_over(&[2.0, 0.5]);
        assert!((skew.weighted_jain - 6.25 / 8.5).abs() < 1e-12);
        // Until weights are installed, the weighted index mirrors the
        // rate index.
        let plain = FairnessSummary::over_rates(&[1.0, 3.0]);
        assert_eq!(plain.weighted_jain, plain.jain_index);
    }

    #[test]
    fn memory_report_totals_are_consistent() {
        let report = MemoryReport {
            classifier_bytes: 1_000,
            cache_bytes: 24,
            total_bytes: 1_024,
            budget_bytes: Some(2_048),
            arena: None,
        };
        assert_eq!(
            report.total_bytes,
            report.classifier_bytes + report.cache_bytes
        );
        assert!(report.total_bytes <= report.budget_bytes.unwrap());
    }

    #[test]
    fn empty_ruleset_stats_do_not_divide_by_zero() {
        let rs = RuleSet::new("empty", DimensionSpec::FIVE_TUPLE, vec![]).unwrap();
        let stats = rs.stats();
        assert_eq!(stats.rules, 0);
        assert_eq!(stats.double_wildcard_fraction, 0.0);
        assert_eq!(stats.mean_wildcard_dims, 0.0);
    }
}
