//! IPv4-style prefixes and prefix/range conversions.

use crate::range::FieldRange;
use serde::{Deserialize, Serialize};

/// A value/length prefix over a field of up to 32 bits, e.g. `192.168.0.0/16`.
///
/// Prefixes are how ClassBench-style rulesets express IP address matches and
/// how the hardware rule encoding of the paper stores them (32-bit address
/// plus a mask length, compressed to 3 bits for lengths 0–27 by folding the
/// encoded length into the low address bits — see `pclass-core::encode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Prefix value, aligned to the most significant bits of the field.
    pub value: u32,
    /// Number of significant leading bits (0..=width).
    pub length: u8,
    /// Total bit width of the field the prefix applies to (usually 32).
    pub width: u8,
}

impl Prefix {
    /// Creates a prefix over a `width`-bit field.
    ///
    /// The value is masked so that bits below the prefix length are cleared.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 32, or if `length > width`.
    pub fn new(value: u32, length: u8, width: u8) -> Prefix {
        assert!((1..=32).contains(&width), "prefix width must be 1..=32");
        assert!(
            length <= width,
            "prefix length {length} exceeds width {width}"
        );
        Prefix {
            value: value & Self::mask(length, width),
            length,
            width,
        }
    }

    /// Creates a 32-bit IPv4 prefix.
    pub fn ipv4(value: u32, length: u8) -> Prefix {
        Prefix::new(value, length, 32)
    }

    /// The wildcard prefix (`0.0.0.0/0` for IPv4-width fields).
    pub fn wildcard(width: u8) -> Prefix {
        Prefix::new(0, 0, width)
    }

    /// Network mask for a prefix of `length` bits over a `width`-bit field.
    fn mask(length: u8, width: u8) -> u32 {
        if length == 0 {
            0
        } else {
            let ones = if length >= 32 {
                u32::MAX
            } else {
                ((1u32 << length) - 1) << (32 - length)
            };
            // Right-align to the actual field width.
            ones >> (32 - width)
        }
    }

    /// `true` if the prefix matches every value (length 0).
    #[inline]
    pub fn is_wildcard(&self) -> bool {
        self.length == 0
    }

    /// `true` if the prefix identifies a single host (length == width).
    #[inline]
    pub fn is_host(&self) -> bool {
        self.length == self.width
    }

    /// `true` if `v` falls inside the prefix.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let m = Self::mask(self.length, self.width);
        (v & m) == self.value
    }

    /// The contiguous value range covered by this prefix.
    pub fn to_range(&self) -> FieldRange {
        let m = Self::mask(self.length, self.width);
        let span = if self.width >= 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        FieldRange::new(self.value, self.value | (span & !m))
    }

    /// Converts a range back into a prefix if (and only if) the range is
    /// exactly expressible as one prefix over a `width`-bit field.
    pub fn from_range(range: FieldRange, width: u8) -> Option<Prefix> {
        let len = range.len();
        if !len.is_power_of_two() {
            return None;
        }
        let bits_free = len.trailing_zeros() as u8;
        if bits_free > width {
            return None;
        }
        let length = width - bits_free;
        let p = Prefix::new(range.lo, length, width);
        if p.to_range() == range {
            Some(p)
        } else {
            None
        }
    }

    /// Decomposes an arbitrary range into the minimal list of prefixes that
    /// exactly covers it.
    ///
    /// This is the classic range-to-prefix expansion TCAMs must perform for
    /// port ranges; a `[lo, hi]` range over a `width`-bit field expands into
    /// at most `2*width - 2` prefixes.  `pclass-tcam` uses this to reproduce
    /// the paper's storage-efficiency argument (16–53 % for real rulesets).
    pub fn expand_range(range: FieldRange, width: u8) -> Vec<Prefix> {
        let mut out = Vec::new();
        let field_max: u64 = if width >= 32 {
            u64::from(u32::MAX)
        } else {
            (1u64 << width) - 1
        };
        assert!(
            u64::from(range.hi) <= field_max,
            "range exceeds field width"
        );
        let mut lo = u64::from(range.lo);
        let hi = u64::from(range.hi);
        while lo <= hi {
            // Largest aligned block starting at `lo` that fits within [lo, hi].
            let max_align = if lo == 0 {
                width as u32
            } else {
                lo.trailing_zeros().min(width as u32)
            };
            let mut block_bits = max_align;
            while block_bits > 0 && lo + (1u64 << block_bits) - 1 > hi {
                block_bits -= 1;
            }
            let length = width - block_bits as u8;
            out.push(Prefix::new(lo as u32, length, width));
            lo += 1u64 << block_bits;
            if lo == 0 {
                break; // wrapped past the top of a 32-bit field
            }
        }
        out
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.width == 32 {
            let v = self.value;
            write!(
                f,
                "{}.{}.{}.{}/{}",
                (v >> 24) & 0xFF,
                (v >> 16) & 0xFF,
                (v >> 8) & 0xFF,
                v & 0xFF,
                self.length
            )
        } else {
            write!(f, "{:#x}/{} (w{})", self.value, self.length, self.width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wildcard_covers_everything() {
        let p = Prefix::wildcard(32);
        assert!(p.is_wildcard());
        assert_eq!(p.to_range(), FieldRange::full(32));
        assert!(p.contains(0));
        assert!(p.contains(u32::MAX));
    }

    #[test]
    fn host_prefix_is_exact() {
        let p = Prefix::ipv4(0xC0A8_0001, 32);
        assert!(p.is_host());
        assert_eq!(p.to_range(), FieldRange::exact(0xC0A8_0001));
        assert!(p.contains(0xC0A8_0001));
        assert!(!p.contains(0xC0A8_0002));
    }

    #[test]
    fn slash16_range() {
        let p = Prefix::ipv4(0xC0A8_0000, 16);
        assert_eq!(p.to_range(), FieldRange::new(0xC0A8_0000, 0xC0A8_FFFF));
        assert!(p.contains(0xC0A8_1234));
        assert!(!p.contains(0xC0A9_0000));
    }

    #[test]
    fn value_is_masked_on_construction() {
        let p = Prefix::ipv4(0xC0A8_1234, 16);
        assert_eq!(p.value, 0xC0A8_0000);
    }

    #[test]
    fn narrow_width_prefix() {
        // 16-bit field, /8 prefix on value 0xAB00.
        let p = Prefix::new(0xAB00, 8, 16);
        assert_eq!(p.to_range(), FieldRange::new(0xAB00, 0xABFF));
        assert!(p.contains(0xAB7F));
        assert!(!p.contains(0xAC00));
    }

    #[test]
    fn from_range_roundtrip() {
        let p = Prefix::ipv4(0x0A00_0000, 8);
        assert_eq!(Prefix::from_range(p.to_range(), 32), Some(p));
        // A non-power-of-two range is not a prefix.
        assert_eq!(Prefix::from_range(FieldRange::new(0, 2), 32), None);
        // A power-of-two but misaligned range is not a prefix.
        assert_eq!(Prefix::from_range(FieldRange::new(1, 2), 32), None);
    }

    #[test]
    fn expand_classic_port_range() {
        // The canonical example: [1, 13] over 4 bits needs several prefixes.
        let prefixes = Prefix::expand_range(FieldRange::new(1, 13), 4);
        // Cover check.
        for v in 0..16u32 {
            let covered = prefixes.iter().any(|p| p.contains(v));
            assert_eq!(covered, (1..=13).contains(&v), "value {v}");
        }
        // Known minimal decomposition size for [1,13]/4 is 5.
        assert_eq!(prefixes.len(), 5);
    }

    #[test]
    fn expand_full_range_is_single_wildcard() {
        let prefixes = Prefix::expand_range(FieldRange::full(16), 16);
        assert_eq!(prefixes.len(), 1);
        assert!(prefixes[0].is_wildcard());
    }

    #[test]
    fn expand_exact_value() {
        let prefixes = Prefix::expand_range(FieldRange::exact(80), 16);
        assert_eq!(prefixes.len(), 1);
        assert!(prefixes[0].is_host());
        assert_eq!(prefixes[0].value, 80);
    }

    #[test]
    fn expand_full_u32_range() {
        let prefixes = Prefix::expand_range(FieldRange::full(32), 32);
        assert_eq!(prefixes.len(), 1);
        assert!(prefixes[0].is_wildcard());
    }

    proptest! {
        #[test]
        fn prop_prefix_range_consistency(value in any::<u32>(), length in 0u8..=32) {
            let p = Prefix::ipv4(value, length);
            let r = p.to_range();
            prop_assert_eq!(r.len(), 1u64 << (32 - length));
            prop_assert!(p.contains(r.lo));
            prop_assert!(p.contains(r.hi));
            prop_assert_eq!(Prefix::from_range(r, 32), Some(p));
        }

        #[test]
        fn prop_expand_covers_exactly(lo in 0u32..60_000, w in 0u32..6_000) {
            let range = FieldRange::new(lo, (lo + w).min(65_535));
            let prefixes = Prefix::expand_range(range, 16);
            // Expansion bound from the literature: at most 2*width - 2.
            prop_assert!(prefixes.len() <= 30);
            // Prefixes are disjoint and exactly cover the range.
            let total: u64 = prefixes.iter().map(|p| p.to_range().len()).sum();
            prop_assert_eq!(total, range.len());
            for p in &prefixes {
                prop_assert!(range.covers(&p.to_range()));
            }
            for (i, a) in prefixes.iter().enumerate() {
                for b in prefixes.iter().skip(i + 1) {
                    prop_assert!(!a.to_range().overlaps(&b.to_range()));
                }
            }
        }
    }
}
