//! Packet traces — sequences of headers replayed against a classifier.

use crate::packet::PacketHeader;
use crate::rule::RuleId;
use crate::ruleset::{MatchResult, RuleSet};
use serde::{Deserialize, Serialize};

/// One packet of a trace, optionally annotated with the rule the trace
/// generator aimed the packet at (ground truth for tests; classifiers are
/// still checked against linear search because a packet aimed at rule *k*
/// may be captured by a higher-priority overlapping rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The packet header.
    pub header: PacketHeader,
    /// Rule the generator sampled the header from, if any.
    pub intended_rule: Option<RuleId>,
}

impl TraceEntry {
    /// A trace entry with no ground-truth annotation.
    pub fn bare(header: PacketHeader) -> TraceEntry {
        TraceEntry {
            header,
            intended_rule: None,
        }
    }
}

/// A packet trace: the workload replayed against every classifier in the
/// throughput and energy experiments (Tables 6 and 7 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a named trace from entries.
    pub fn new(name: impl Into<String>, entries: Vec<TraceEntry>) -> Trace {
        Trace {
            name: name.into(),
            entries,
        }
    }

    /// Creates a trace from bare headers.
    pub fn from_headers(name: impl Into<String>, headers: Vec<PacketHeader>) -> Trace {
        Trace {
            name: name.into(),
            entries: headers.into_iter().map(TraceEntry::bare).collect(),
        }
    }

    /// Name of the trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace entries in arrival order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Just the packet headers in arrival order.
    pub fn headers(&self) -> impl Iterator<Item = &PacketHeader> {
        self.entries.iter().map(|e| &e.header)
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the trace contains no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Classifies the whole trace with the reference linear search and
    /// returns the per-packet results (used as ground truth in tests).
    pub fn ground_truth(&self, rs: &RuleSet) -> Vec<MatchResult> {
        self.entries
            .iter()
            .map(|e| rs.classify_linear(&e.header))
            .collect()
    }

    /// Fraction of packets that match some rule under linear search.
    pub fn hit_rate(&self, rs: &RuleSet) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let hits = self
            .entries
            .iter()
            .filter(|e| rs.classify_linear(&e.header) != MatchResult::NoMatch)
            .count();
        hits as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn trace_basics() {
        let rs = toy::table1_ruleset();
        let headers = vec![
            PacketHeader::from_fields([145, 100, 10, 10, 200]),
            PacketHeader::from_fields([0, 0, 0, 0, 255]),
        ];
        let trace = Trace::from_headers("t", headers);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.name(), "t");
        let truth = trace.ground_truth(&rs);
        assert_eq!(truth[0], MatchResult::Matched(5));
        assert_eq!(truth[1], MatchResult::NoMatch);
        assert!((trace.hit_rate(&rs) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_hit_rate_is_zero() {
        let rs = toy::table1_ruleset();
        let trace = Trace::from_headers("empty", vec![]);
        assert_eq!(trace.hit_rate(&rs), 0.0);
    }
}
