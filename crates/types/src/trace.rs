//! Packet traces — sequences of headers replayed against a classifier.

use crate::packet::PacketHeader;
use crate::rule::RuleId;
use crate::ruleset::{MatchResult, RuleSet};
use serde::{Deserialize, Serialize};

/// One packet of a trace, optionally annotated with the rule the trace
/// generator aimed the packet at (ground truth for tests; classifiers are
/// still checked against linear search because a packet aimed at rule *k*
/// may be captured by a higher-priority overlapping rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The packet header.
    pub header: PacketHeader,
    /// Rule the generator sampled the header from, if any.
    pub intended_rule: Option<RuleId>,
}

impl TraceEntry {
    /// A trace entry with no ground-truth annotation.
    pub fn bare(header: PacketHeader) -> TraceEntry {
        TraceEntry {
            header,
            intended_rule: None,
        }
    }
}

/// A packet trace: the workload replayed against every classifier in the
/// throughput and energy experiments (Tables 6 and 7 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a named trace from entries.
    pub fn new(name: impl Into<String>, entries: Vec<TraceEntry>) -> Trace {
        Trace {
            name: name.into(),
            entries,
        }
    }

    /// Creates a trace from bare headers.
    pub fn from_headers(name: impl Into<String>, headers: Vec<PacketHeader>) -> Trace {
        Trace {
            name: name.into(),
            entries: headers.into_iter().map(TraceEntry::bare).collect(),
        }
    }

    /// Name of the trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace entries in arrival order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Just the packet headers in arrival order.
    pub fn headers(&self) -> impl Iterator<Item = &PacketHeader> {
        self.entries.iter().map(|e| &e.header)
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the trace contains no packets.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Classifies the whole trace with the reference linear search and
    /// returns the per-packet results (used as ground truth in tests).
    pub fn ground_truth(&self, rs: &RuleSet) -> Vec<MatchResult> {
        self.entries
            .iter()
            .map(|e| rs.classify_linear(&e.header))
            .collect()
    }

    /// Splits the trace into `shards` contiguous, near-equal slices for
    /// parallel replay (see [`shard_slices`]).
    pub fn shards(&self, shards: usize) -> Vec<&[TraceEntry]> {
        shard_slices(&self.entries, shards)
    }

    /// Fraction of packets that match some rule under linear search.
    pub fn hit_rate(&self, rs: &RuleSet) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let hits = self
            .entries
            .iter()
            .filter(|e| rs.classify_linear(&e.header) != MatchResult::NoMatch)
            .count();
        hits as f64 / self.entries.len() as f64
    }
}

/// Splits a slice into exactly `shards` contiguous chunks whose lengths
/// differ by at most one (trailing chunks are empty when there are fewer
/// items than shards).
///
/// This is the work-distribution policy shared by every parallel frontend
/// in the workspace — the accelerator bank in `pclass-core::parallel` and
/// the software serving engine in `pclass-engine` — so that sharded replay
/// is deterministic and results can be merged back in trace order by simple
/// concatenation.
pub fn shard_slices<T>(items: &[T], shards: usize) -> Vec<&[T]> {
    let shards = shards.max(1);
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, items.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn trace_basics() {
        let rs = toy::table1_ruleset();
        let headers = vec![
            PacketHeader::from_fields([145, 100, 10, 10, 200]),
            PacketHeader::from_fields([0, 0, 0, 0, 255]),
        ];
        let trace = Trace::from_headers("t", headers);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.name(), "t");
        let truth = trace.ground_truth(&rs);
        assert_eq!(truth[0], MatchResult::Matched(5));
        assert_eq!(truth[1], MatchResult::NoMatch);
        assert!((trace.hit_rate(&rs) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_hit_rate_is_zero() {
        let rs = toy::table1_ruleset();
        let trace = Trace::from_headers("empty", vec![]);
        assert_eq!(trace.hit_rate(&rs), 0.0);
    }

    #[test]
    fn shard_slices_is_balanced_and_order_preserving() {
        let items: Vec<u32> = (0..10).collect();
        for shards in 1..=12 {
            let chunks = shard_slices(&items, shards);
            assert_eq!(chunks.len(), shards);
            // Concatenation reproduces the input in order.
            let merged: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(merged, items);
            // Sizes differ by at most one and are non-increasing.
            let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
            assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
            assert!(sizes[0] - sizes[sizes.len() - 1] <= 1);
        }
    }

    #[test]
    fn shard_slices_handles_degenerate_inputs() {
        let empty: [u8; 0] = [];
        assert_eq!(shard_slices(&empty, 4), vec![&[] as &[u8]; 4]);
        // Zero shards is clamped to one.
        let one = [7u8];
        assert_eq!(shard_slices(&one, 0), vec![&one[..]]);
        // Fewer items than shards: trailing shards are empty.
        let chunks = shard_slices(&one, 3);
        assert_eq!(chunks[0], &one[..]);
        assert!(chunks[1].is_empty() && chunks[2].is_empty());
    }

    #[test]
    fn trace_shards_cover_the_trace() {
        let headers: Vec<PacketHeader> =
            (0..7).map(|i| PacketHeader::from_fields([i; 5])).collect();
        let trace = Trace::from_headers("t", headers);
        let shards = trace.shards(3);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), trace.len());
        assert_eq!(shards[0][0].header, trace.entries()[0].header);
    }

    #[test]
    fn traces_serialize_to_json() {
        // Regression coverage for the serde shim's derive: nested structs,
        // arrays, options and enums all render.
        let trace = Trace::new(
            "t",
            vec![TraceEntry {
                header: PacketHeader::five_tuple(1, 2, 3, 4, 5),
                intended_rule: Some(9),
            }],
        );
        assert_eq!(
            serde::json::to_string(&trace),
            r#"{"name":"t","entries":[{"header":{"fields":[1,2,3,4,5]},"intended_rule":9}]}"#
        );
        assert_eq!(
            serde::json::to_string(&MatchResult::Matched(7)),
            r#"{"Matched":7}"#
        );
        assert_eq!(
            serde::json::to_string(&MatchResult::NoMatch),
            r#""NoMatch""#
        );
    }
}
