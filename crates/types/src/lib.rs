//! Core types for 5-field packet classification.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: dimensions, ranges, prefixes, rules, rulesets, packet headers
//! and packet traces.
//!
//! The representation follows the geometric view used by the decision-tree
//! algorithms reproduced in this workspace (HiCuts, HyperCuts and the
//! hardware-oriented variants of Kennedy et al., 2008): every rule is an
//! axis-aligned hyper-rectangle in the 5-dimensional space spanned by
//!
//! * source IP address (32 bits),
//! * destination IP address (32 bits),
//! * source port (16 bits),
//! * destination port (16 bits),
//! * transport protocol (8 bits),
//!
//! and a packet header is a point in that space.  A rule matches a packet if
//! the point lies inside the rectangle on every dimension.  Rule priority is
//! positional: the matching rule with the lowest index in the ruleset wins
//! (first-match semantics), which is the convention used by ClassBench and by
//! the paper.
//!
//! The toy 10-rule ruleset of Table 1 in the paper (five 8-bit fields) is
//! available through [`toy::table1_ruleset`]; the per-dimension bit widths are
//! carried by [`DimensionSpec`] so that both the toy geometry and the real
//! 104-bit 5-tuple geometry are handled by the same code.

//!
//! # Example
//!
//! Build the paper's Table 1 toy ruleset and classify a packet with the
//! first-match linear reference:
//!
//! ```
//! use pclass_types::{toy, MatchResult, PacketHeader};
//!
//! let rs = toy::table1_ruleset();
//! assert_eq!(rs.len(), 10);
//!
//! // A point inside rule R7's hyper-rectangle (and no higher-priority
//! // rule's): src 49, fields in dimension order.
//! let pkt = PacketHeader::from_fields([49, 40, 40, 100, 5]);
//! assert_eq!(rs.classify_linear(&pkt), MatchResult::Matched(7));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dimension;
pub mod packet;
pub mod prefix;
pub mod range;
pub mod rule;
pub mod ruleset;
pub mod stats;
pub mod toy;
pub mod trace;

pub use dimension::{Dimension, DimensionSpec, FIELD_COUNT};
pub use packet::PacketHeader;
pub use prefix::Prefix;
pub use range::FieldRange;
pub use rule::{Protocol, Rule, RuleBuilder, RuleId};
pub use ruleset::{MatchResult, RuleSet, RuleSetError};
pub use stats::{
    ArenaStats, CacheStats, FairnessSummary, LatencyPercentiles, MemoryReport, RuleSetStats,
    UpdateStats,
};
pub use trace::{shard_slices, Trace, TraceEntry};
