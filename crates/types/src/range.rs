//! Inclusive integer ranges over a single classification dimension.

use serde::{Deserialize, Serialize};

/// An inclusive range `[lo, hi]` of header-field values in one dimension.
///
/// This is the geometric primitive of the decision-tree algorithms: every
/// rule is a product of five `FieldRange`s, and every cut partitions one
/// dimension of a node's covered region into equal-width sub-ranges.
///
/// Invariant: `lo <= hi` (enforced by [`FieldRange::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldRange {
    /// Smallest value contained in the range.
    pub lo: u32,
    /// Largest value contained in the range.
    pub hi: u32,
}

impl FieldRange {
    /// Creates a range.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: u32, hi: u32) -> FieldRange {
        assert!(lo <= hi, "invalid range: lo={lo} > hi={hi}");
        FieldRange { lo, hi }
    }

    /// The single-value range `[v, v]`.
    #[inline]
    pub const fn exact(v: u32) -> FieldRange {
        FieldRange { lo: v, hi: v }
    }

    /// The full range `[0, max]` of a dimension with the given bit width.
    #[inline]
    pub fn full(bits: u8) -> FieldRange {
        let hi = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        FieldRange { lo: 0, hi }
    }

    /// Number of values contained in the range (as `u64` because the full
    /// 32-bit range has 2^32 values).
    #[inline]
    pub fn len(&self) -> u64 {
        u64::from(self.hi) - u64::from(self.lo) + 1
    }

    /// A range is never empty (the invariant guarantees at least one value),
    /// so this always returns `false`; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if the range covers exactly one value.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` if `v` lies inside the range.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` if the two ranges share at least one value.
    #[inline]
    pub fn overlaps(&self, other: &FieldRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn covers(&self, other: &FieldRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection of two ranges, or `None` if they do not overlap.
    #[inline]
    pub fn intersect(&self, other: &FieldRange) -> Option<FieldRange> {
        if self.overlaps(other) {
            Some(FieldRange {
                lo: self.lo.max(other.lo),
                hi: self.hi.min(other.hi),
            })
        } else {
            None
        }
    }

    /// Splits the range into `parts` equal-width sub-ranges, the way a
    /// HiCuts/HyperCuts cut partitions a node's covered region.
    ///
    /// When the range length is not a multiple of `parts` the remainder is
    /// spread over the leading sub-ranges so that widths differ by at most
    /// one; when `parts` exceeds the number of values, the trailing
    /// sub-ranges are collapsed onto the last value (matching the behaviour
    /// of cutting an already-exact region: the extra children are empty of
    /// new space and end up merged/eliminated by the builder).
    pub fn split(&self, parts: u32) -> Vec<FieldRange> {
        assert!(parts > 0, "cannot split a range into 0 parts");
        let total = self.len();
        let parts64 = u64::from(parts);
        let mut out = Vec::with_capacity(parts as usize);
        if parts64 >= total {
            // One value per child until values run out, then repeat the last
            // value so that callers always receive exactly `parts` children.
            for i in 0..parts64 {
                let v = if i < total {
                    self.lo + i as u32
                } else {
                    self.hi
                };
                out.push(FieldRange::exact(v));
            }
            return out;
        }
        let base = total / parts64;
        let rem = total % parts64;
        let mut cursor = u64::from(self.lo);
        for i in 0..parts64 {
            let width = base + if i < rem { 1 } else { 0 };
            let lo = cursor as u32;
            let hi = (cursor + width - 1) as u32;
            out.push(FieldRange { lo, hi });
            cursor += width;
        }
        debug_assert_eq!(cursor, u64::from(self.hi) + 1);
        out
    }

    /// Index of the sub-range (out of `parts`, as produced by [`split`])
    /// that contains the value `v`.
    ///
    /// This is the software mirror of the hardware accelerator's child
    /// selection: given a node cut into `parts` children along one dimension,
    /// it returns which child a packet value falls into.
    ///
    /// # Panics
    /// Panics if `v` is not contained in the range.
    ///
    /// [`split`]: FieldRange::split
    pub fn index_of(&self, parts: u32, v: u32) -> u32 {
        assert!(self.contains(v), "value {v} outside range {self}");
        let total = self.len();
        let parts64 = u64::from(parts);
        let offset = u64::from(v) - u64::from(self.lo);
        if parts64 >= total {
            // One value per child; extra children collapse onto the last
            // value, so the first child holding `v` is simply the offset.
            return offset as u32;
        }
        let base = total / parts64;
        let rem = total % parts64;
        // The first `rem` children have width base+1, the rest width base.
        let wide_span = rem * (base + 1);
        let idx = if offset < wide_span {
            offset / (base + 1)
        } else {
            rem + (offset - wide_span) / base
        };
        idx as u32
    }

    /// The `i`-th of `parts` equal-width sub-ranges without materialising the
    /// whole split.  Follows the same width distribution as [`split`].
    ///
    /// [`split`]: FieldRange::split
    pub fn split_child(&self, parts: u32, i: u32) -> FieldRange {
        assert!(i < parts, "child index {i} out of range for {parts} parts");
        let total = self.len();
        let parts64 = u64::from(parts);
        let i64 = u64::from(i);
        if parts64 >= total {
            let v = if i64 < total { self.lo + i } else { self.hi };
            return FieldRange::exact(v);
        }
        let base = total / parts64;
        let rem = total % parts64;
        let start = i64 * base + i64.min(rem);
        let width = base + if i64 < rem { 1 } else { 0 };
        FieldRange {
            lo: (u64::from(self.lo) + start) as u32,
            hi: (u64::from(self.lo) + start + width - 1) as u32,
        }
    }
}

impl std::fmt::Display for FieldRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_properties() {
        let r = FieldRange::new(10, 20);
        assert_eq!(r.len(), 11);
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
        assert!(!r.is_exact());
        assert!(FieldRange::exact(7).is_exact());
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_range_rejected() {
        FieldRange::new(5, 4);
    }

    #[test]
    fn full_range_widths() {
        assert_eq!(FieldRange::full(8), FieldRange::new(0, 255));
        assert_eq!(FieldRange::full(16), FieldRange::new(0, 65535));
        assert_eq!(FieldRange::full(32), FieldRange::new(0, u32::MAX));
        assert_eq!(FieldRange::full(32).len(), 1u64 << 32);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = FieldRange::new(0, 100);
        let b = FieldRange::new(50, 150);
        let c = FieldRange::new(101, 200);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), Some(FieldRange::new(50, 100)));
        assert_eq!(a.intersect(&c), None);
        assert!(a.covers(&FieldRange::new(10, 20)));
        assert!(!a.covers(&b));
    }

    #[test]
    fn split_even() {
        let r = FieldRange::new(0, 255);
        let parts = r.split(4);
        assert_eq!(
            parts,
            vec![
                FieldRange::new(0, 63),
                FieldRange::new(64, 127),
                FieldRange::new(128, 191),
                FieldRange::new(192, 255)
            ]
        );
    }

    #[test]
    fn split_uneven_distributes_remainder() {
        let r = FieldRange::new(0, 9);
        let parts = r.split(3);
        assert_eq!(
            parts,
            vec![
                FieldRange::new(0, 3),
                FieldRange::new(4, 6),
                FieldRange::new(7, 9)
            ]
        );
    }

    #[test]
    fn split_more_parts_than_values() {
        let r = FieldRange::new(5, 6);
        let parts = r.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], FieldRange::exact(5));
        assert_eq!(parts[1], FieldRange::exact(6));
        assert_eq!(parts[2], FieldRange::exact(6));
        assert_eq!(parts[3], FieldRange::exact(6));
    }

    #[test]
    fn split_full_u32_range() {
        let r = FieldRange::full(32);
        let parts = r.split(2);
        assert_eq!(parts[0], FieldRange::new(0, 0x7FFF_FFFF));
        assert_eq!(parts[1], FieldRange::new(0x8000_0000, u32::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(FieldRange::new(3, 9).to_string(), "3-9");
        assert_eq!(FieldRange::exact(42).to_string(), "42");
    }

    proptest! {
        #[test]
        fn prop_split_partitions(lo in 0u32..10_000, width in 0u32..10_000, parts in 1u32..64) {
            let r = FieldRange::new(lo, lo + width);
            let children = r.split(parts);
            prop_assert_eq!(children.len(), parts as usize);
            // Children must cover the parent exactly (when parts <= len) and
            // be ordered and non-overlapping except for collapsed tails.
            if u64::from(parts) <= r.len() {
                prop_assert_eq!(children[0].lo, r.lo);
                prop_assert_eq!(children.last().unwrap().hi, r.hi);
                let total: u64 = children.iter().map(|c| c.len()).sum();
                prop_assert_eq!(total, r.len());
                for w in children.windows(2) {
                    prop_assert_eq!(u64::from(w[0].hi) + 1, u64::from(w[1].lo));
                }
            }
            // Every child is contained in the parent regardless.
            for c in &children {
                prop_assert!(r.covers(c));
            }
        }

        #[test]
        fn prop_split_child_matches_split(lo in 0u32..5_000, width in 0u32..5_000, parts in 1u32..40) {
            let r = FieldRange::new(lo, lo + width);
            let children = r.split(parts);
            for (i, c) in children.iter().enumerate() {
                prop_assert_eq!(*c, r.split_child(parts, i as u32));
            }
        }

        #[test]
        fn prop_index_of_agrees_with_split(lo in 0u32..5_000, width in 0u32..5_000, parts in 1u32..40) {
            let r = FieldRange::new(lo, lo + width);
            let children = r.split(parts);
            // For every value in a sample of the range, the reported child
            // must actually contain the value.
            let step = (r.len() / 50).max(1);
            let mut v = u64::from(r.lo);
            while v <= u64::from(r.hi) {
                let idx = r.index_of(parts, v as u32);
                prop_assert!(children[idx as usize].contains(v as u32),
                             "value {} mapped to child {} = {}", v, idx, children[idx as usize]);
                // And it must be the FIRST child containing the value.
                if idx > 0 {
                    prop_assert!(!children[(idx - 1) as usize].contains(v as u32));
                }
                v += step;
            }
            // Boundary values always checked.
            prop_assert!(children[r.index_of(parts, r.lo) as usize].contains(r.lo));
            prop_assert!(children[r.index_of(parts, r.hi) as usize].contains(r.hi));
        }

        #[test]
        fn prop_intersection_commutative(a_lo in 0u32..1000, a_w in 0u32..1000,
                                         b_lo in 0u32..1000, b_w in 0u32..1000) {
            let a = FieldRange::new(a_lo, a_lo + a_w);
            let b = FieldRange::new(b_lo, b_lo + b_w);
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
            if let Some(i) = a.intersect(&b) {
                prop_assert!(a.covers(&i));
                prop_assert!(b.covers(&i));
            }
        }
    }
}
