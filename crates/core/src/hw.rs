//! Cycle-accurate software model of the hardware accelerator datapath
//! (Figures 4 and 5 of the paper).
//!
//! The model mirrors the RTL's externally visible behaviour:
//!
//! * **Register A** holds the root node (preloaded from word 0 at reset, one
//!   cycle charged once per configuration).
//! * **Register B** holds the packet currently being steered through the
//!   tree; **register C** holds the packet whose leaf is being searched.
//! * Every clock cycle the accelerator can fetch exactly one 4800-bit memory
//!   word: either the next internal node on the packet's path or the next
//!   word of a leaf.
//! * A fetched leaf word is compared against register C by 30 parallel
//!   comparator blocks in the same cycle; the lowest-position match wins
//!   (leaf rules are stored in priority order).
//! * While a leaf is being searched for packet *n*, the root-node child
//!   selection for packet *n + 1* happens combinationally out of register A,
//!   so the root never costs a memory cycle — this is the one-cycle overlap
//!   the paper describes, and it is why a ruleset whose worst case is 2
//!   cycles classifies one packet per cycle.
//!
//! Per-packet visible cycles therefore equal the number of memory words
//! fetched for that packet (internal nodes after the root + leaf words until
//! the match), with a minimum of one cycle per packet, which reproduces
//! Eqs. 5 and 7.

use crate::encode::{read_child, read_header, read_rule, ChildEntry};
use crate::program::HardwareProgram;
use crate::RULES_PER_WORD;
use pclass_types::{MatchResult, PacketHeader, Trace, FIELD_COUNT};

/// Per-packet measurement produced by the accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketCycles {
    /// Internal-node words fetched (excluding the root, which lives in
    /// register A).
    pub internal_fetches: u32,
    /// Leaf words fetched.
    pub leaf_fetches: u32,
    /// Rules examined by the comparator array (for diagnostics; the hardware
    /// examines a whole word of 30 in parallel regardless).
    pub rules_examined: u32,
}

impl PacketCycles {
    /// Memory accesses used by this packet (Table 8 semantics counts the
    /// root traversal as well).
    pub fn memory_accesses(&self) -> u32 {
        1 + self.internal_fetches + self.leaf_fetches
    }

    /// Visible (pipelined) cycles: one per fetched word, minimum one.
    pub fn visible_cycles(&self) -> u32 {
        (self.internal_fetches + self.leaf_fetches).max(1)
    }
}

/// Result of replaying a trace through the accelerator.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// Classification decision per packet, in trace order.
    pub results: Vec<MatchResult>,
    /// Per-packet cycle measurements.
    pub per_packet: Vec<PacketCycles>,
    /// Total clock cycles, including the single root-load cycle at reset.
    pub cycles: u64,
    /// Total memory-word fetches performed.
    pub memory_accesses: u64,
}

impl ClassificationReport {
    /// Number of packets classified.
    pub fn packets(&self) -> usize {
        self.results.len()
    }

    /// Average visible cycles per packet.
    pub fn avg_cycles_per_packet(&self) -> f64 {
        if self.per_packet.is_empty() {
            return 0.0;
        }
        self.per_packet
            .iter()
            .map(|p| u64::from(p.visible_cycles()))
            .sum::<u64>() as f64
            / self.per_packet.len() as f64
    }

    /// Worst per-packet memory accesses observed in this trace.
    pub fn observed_worst_accesses(&self) -> u32 {
        self.per_packet
            .iter()
            .map(|p| p.memory_accesses())
            .max()
            .unwrap_or(0)
    }

    /// Packets classified per second at a given clock frequency.
    pub fn packets_per_second(&self, frequency_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.packets() as f64 * frequency_hz / self.cycles as f64
    }
}

/// The accelerator model.  It borrows the program (the memory image) and
/// keeps only the tiny register state of the real datapath, so many engines
/// can share one program across threads.
#[derive(Debug, Clone)]
pub struct Accelerator<'p> {
    program: &'p HardwareProgram,
    /// Register A: the decoded root header plus the root child entries are
    /// read directly from word 0 on demand; holding the reference mirrors
    /// the preload without copying 4800 bits around.
    root_loaded: bool,
}

impl<'p> Accelerator<'p> {
    /// Creates an engine over a program (the equivalent of asserting the
    /// Reset pin: the root word is transferred to register A).
    pub fn new(program: &'p HardwareProgram) -> Accelerator<'p> {
        Accelerator {
            program,
            root_loaded: true,
        }
    }

    /// The program this engine executes.
    pub fn program(&self) -> &HardwareProgram {
        self.program
    }

    /// Classifies a single packet and reports the cycles it used.
    pub fn classify_packet(&self, pkt: &PacketHeader) -> (MatchResult, PacketCycles) {
        debug_assert!(self.root_loaded);
        let spec = self.program.spec();
        let msb8: [u8; FIELD_COUNT] = pkt.msb8(spec);
        let mut cycles = PacketCycles {
            internal_fetches: 0,
            leaf_fetches: 0,
            rules_examined: 0,
        };

        // Root child selection out of register A (no memory access).
        let mut word_idx;
        let mut node_word = self.program.root_word();
        loop {
            let header = read_header(node_word);
            let index = header.child_index(&msb8) as usize;
            match read_child(node_word, index) {
                ChildEntry::Null => return (MatchResult::NoMatch, cycles),
                ChildEntry::Internal { word } => {
                    // Fetch the child node word on the next rising edge.
                    cycles.internal_fetches += 1;
                    word_idx = word;
                    node_word = self.program.word(word_idx);
                }
                ChildEntry::Leaf { word, pos } => {
                    // Packet moves from register B to register C; the leaf
                    // search starts at (word, pos).
                    return (self.search_leaf(pkt, word, pos, &mut cycles), cycles);
                }
            }
        }
    }

    /// Searches a leaf starting at rule slot `pos` of `word`, walking
    /// subsequent words until the end-of-leaf marker, and returns the
    /// highest-priority match.
    fn search_leaf(
        &self,
        pkt: &PacketHeader,
        mut word: usize,
        mut pos: usize,
        cycles: &mut PacketCycles,
    ) -> MatchResult {
        loop {
            // One cycle to fetch this leaf word; the 30 comparators evaluate
            // it combinationally.
            cycles.leaf_fetches += 1;
            let w = self.program.word(word);
            while pos < RULES_PER_WORD {
                let rule = read_rule(w, pos);
                cycles.rules_examined += 1;
                if rule.matches(pkt) {
                    return MatchResult::Matched(rule.id);
                }
                if rule.end_of_leaf {
                    return MatchResult::NoMatch;
                }
                pos += 1;
            }
            // Leaf continues in the next word (speed = 0 packing or an
            // oversized leaf).
            word += 1;
            pos = 0;
            if word >= self.program.word_count() {
                // Defensive: a well-formed program always terminates a leaf
                // with an end marker before running off the image.
                return MatchResult::NoMatch;
            }
        }
    }

    /// Replays a whole trace, reproducing the pipelined cycle accounting.
    pub fn classify_trace(&self, trace: &Trace) -> ClassificationReport {
        let mut results = Vec::with_capacity(trace.len());
        let mut per_packet = Vec::with_capacity(trace.len());
        // One cycle at reset to move the root node from memory to register A.
        let mut cycles: u64 = 1;
        let mut memory_accesses: u64 = 1;
        for entry in trace.entries() {
            let (result, pc) = self.classify_packet(&entry.header);
            cycles += u64::from(pc.visible_cycles());
            memory_accesses += u64::from(pc.internal_fetches + pc.leaf_fetches);
            results.push(result);
            per_packet.push(pc);
        }
        ClassificationReport {
            results,
            per_packet,
            cycles,
            memory_accesses,
        }
    }
}

/// The accelerator wrapped as a software [`Classifier`](pclass_algos::Classifier),
/// so the hardware
/// model plugs into every generic harness in the workspace (the serving
/// engine in `pclass-engine`, the throughput benchmark, the equivalence
/// tests).
///
/// Unlike [`Accelerator`], which borrows a program, this adapter *owns* its
/// [`HardwareProgram`] — the trait's `&self` methods leave no room for an
/// external lifetime, and ownership is what lets a serving layer hold the
/// classifier behind `Arc<dyn Classifier>` across worker threads.
#[derive(Debug, Clone)]
pub struct AcceleratorClassifier {
    program: HardwareProgram,
}

impl AcceleratorClassifier {
    /// Wraps an already-built program.
    pub fn new(program: HardwareProgram) -> AcceleratorClassifier {
        AcceleratorClassifier { program }
    }

    /// Builds the program for a ruleset and wraps it.
    pub fn build(
        ruleset: &pclass_types::RuleSet,
        config: &crate::builder::BuildConfig,
    ) -> Result<AcceleratorClassifier, crate::builder::BuildError> {
        HardwareProgram::build(ruleset, config).map(AcceleratorClassifier::new)
    }

    /// The wrapped program.
    pub fn program(&self) -> &HardwareProgram {
        &self.program
    }

    /// Unwraps the program again.
    pub fn into_program(self) -> HardwareProgram {
        self.program
    }
}

impl pclass_algos::Classifier for AcceleratorClassifier {
    fn name(&self) -> &'static str {
        match self.program.config().algorithm {
            crate::builder::CutAlgorithm::HiCuts => "hw-hicuts",
            crate::builder::CutAlgorithm::HyperCuts => "hw-hypercuts",
        }
    }

    fn classify(&self, pkt: &PacketHeader) -> MatchResult {
        Accelerator::new(&self.program).classify_packet(pkt).0
    }

    fn classify_batch(&self, pkts: &[PacketHeader], out: &mut Vec<MatchResult>) {
        // One engine for the whole batch (one root preload instead of one
        // per packet).
        let engine = Accelerator::new(&self.program);
        out.reserve(pkts.len());
        for pkt in pkts {
            out.push(engine.classify_packet(pkt).0);
        }
    }

    fn classify_with_stats(
        &self,
        pkt: &PacketHeader,
        stats: &mut pclass_algos::LookupStats,
    ) -> MatchResult {
        let (result, pc) = Accelerator::new(&self.program).classify_packet(pkt);
        // Each fetched 4800-bit word is one memory access; the comparator
        // array examines a whole word per cycle, modelled as one load plus
        // the per-rule compare work in the ALU column.
        stats.memory_accesses += u64::from(pc.memory_accesses());
        stats.nodes_visited += u64::from(pc.internal_fetches);
        stats.rules_compared += u64::from(pc.rules_examined);
        stats.ops.loads += u64::from(pc.memory_accesses());
        stats.ops.alu += u64::from(pc.rules_examined);
        result
    }

    fn memory_bytes(&self) -> usize {
        self.program.memory_bytes()
    }

    fn worst_case_memory_accesses(&self) -> Option<u64> {
        Some(u64::from(self.program.worst_case_cycles()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildConfig, CutAlgorithm, SpeedMode};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
    use pclass_types::RuleSet;

    fn setup(
        style: SeedStyle,
        rules: usize,
        packets: usize,
        algo: CutAlgorithm,
    ) -> (RuleSet, Trace, HardwareProgram) {
        let rs = ClassBenchGenerator::new(style, 21).generate(rules);
        let trace = TraceGenerator::new(&rs, 22).generate(packets);
        // The full 12-bit address space is used so the wildcard-heavy FW
        // style fits; ACL-style sets comfortably fit the paper's 1024 words.
        let program =
            HardwareProgram::build_with_capacity(&rs, &BuildConfig::paper_defaults(algo), 4096)
                .unwrap();
        (rs, trace, program)
    }

    #[test]
    fn classifier_adapter_matches_raw_accelerator() {
        use pclass_algos::Classifier as _;
        let (rs, trace, program) = setup(SeedStyle::Acl, 300, 800, CutAlgorithm::HyperCuts);
        let raw = Accelerator::new(&program).classify_trace(&trace);
        let adapter = AcceleratorClassifier::new(program.clone());
        assert_eq!(adapter.name(), "hw-hypercuts");
        assert_eq!(adapter.memory_bytes(), program.memory_bytes());
        assert_eq!(
            adapter.worst_case_memory_accesses(),
            Some(u64::from(program.worst_case_cycles()))
        );
        let headers: Vec<PacketHeader> = trace.headers().copied().collect();
        let mut batched = Vec::new();
        adapter.classify_batch(&headers, &mut batched);
        assert_eq!(batched, raw.results);
        let mut stats = pclass_algos::LookupStats::new();
        let first = adapter.classify_with_stats(&headers[0], &mut stats);
        assert_eq!(first, raw.results[0]);
        assert!(stats.memory_accesses >= 1);
        let _ = rs;
    }

    #[test]
    fn accelerator_agrees_with_linear_search() {
        for algo in [CutAlgorithm::HiCuts, CutAlgorithm::HyperCuts] {
            for style in SeedStyle::ALL {
                let (rs, trace, program) = setup(style, 400, 1500, algo);
                let engine = Accelerator::new(&program);
                let report = engine.classify_trace(&trace);
                for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
                    assert_eq!(
                        *result,
                        rs.classify_linear(&entry.header),
                        "{algo:?}/{style} disagreed on {}",
                        entry.header
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_counts_respect_the_static_worst_case() {
        let (_, trace, program) = setup(SeedStyle::Acl, 1000, 3000, CutAlgorithm::HyperCuts);
        let engine = Accelerator::new(&program);
        let report = engine.classify_trace(&trace);
        let worst = program.worst_case_cycles();
        assert!(
            report.observed_worst_accesses() <= worst,
            "observed {} accesses exceeds static worst case {}",
            report.observed_worst_accesses(),
            worst
        );
        // Pipelined throughput: visible cycles per packet is at most the
        // worst case minus the hidden root cycle.
        for pc in &report.per_packet {
            assert!(pc.visible_cycles() <= worst.saturating_sub(1).max(1));
            assert!(pc.visible_cycles() >= 1);
        }
    }

    #[test]
    fn total_cycles_account_for_reset_and_packets() {
        let (_, trace, program) = setup(SeedStyle::Acl, 100, 500, CutAlgorithm::HiCuts);
        let engine = Accelerator::new(&program);
        let report = engine.classify_trace(&trace);
        assert_eq!(report.packets(), 500);
        let sum: u64 = report
            .per_packet
            .iter()
            .map(|p| u64::from(p.visible_cycles()))
            .sum();
        assert_eq!(report.cycles, sum + 1);
        assert!(report.avg_cycles_per_packet() >= 1.0);
        assert!(report.packets_per_second(226e6) > 0.0);
    }

    #[test]
    fn small_ruleset_classifies_one_packet_per_cycle() {
        // With a shallow tree (root + single-word leaves) the worst case is
        // 2 cycles and the pipelined engine sustains 1 packet per cycle —
        // the 226 Mpps / 77 Mpps headline rows of Table 7.
        let (_, trace, program) = setup(SeedStyle::Acl, 60, 2000, CutAlgorithm::HiCuts);
        assert_eq!(
            program.worst_case_cycles(),
            2,
            "60-rule ACL tree should be root + leaves"
        );
        let engine = Accelerator::new(&program);
        let report = engine.classify_trace(&trace);
        assert!((report.avg_cycles_per_packet() - 1.0).abs() < 1e-9);
        let pps = report.packets_per_second(226e6);
        assert!(pps > 225e6, "expected ~226 Mpps, got {pps}");
    }

    #[test]
    fn speed_zero_never_misclassifies() {
        let rs = ClassBenchGenerator::new(SeedStyle::Fw, 33).generate(600);
        let trace = TraceGenerator::new(&rs, 34).generate(1500);
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
        cfg.speed = SpeedMode::MemoryEfficient;
        // FW-style sets need more memory than the 1024-word FPGA part (the
        // paper makes the same observation for the larger fw1 sets), so this
        // test uses the full 12-bit address space.
        let program = HardwareProgram::build_with_capacity(&rs, &cfg, 4096).unwrap();
        let engine = Accelerator::new(&program);
        let report = engine.classify_trace(&trace);
        for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
            assert_eq!(*result, rs.classify_linear(&entry.header));
        }
    }

    #[test]
    fn unmatched_packets_are_reported_as_no_match() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 11).generate(50);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts))
                .unwrap();
        let engine = Accelerator::new(&program);
        // Pure background traffic: many packets match nothing.
        let trace = TraceGenerator::new(&rs, 12)
            .random_fraction(1.0)
            .generate(1000);
        let report = engine.classify_trace(&trace);
        let mut seen_no_match = false;
        for (entry, result) in trace.entries().iter().zip(report.results.iter()) {
            assert_eq!(*result, rs.classify_linear(&entry.header));
            if *result == MatchResult::NoMatch {
                seen_no_match = true;
            }
        }
        assert!(
            seen_no_match,
            "expected at least one unmatched background packet"
        );
    }

    #[test]
    fn per_packet_accessors_are_consistent() {
        let pc = PacketCycles {
            internal_fetches: 2,
            leaf_fetches: 1,
            rules_examined: 12,
        };
        assert_eq!(pc.memory_accesses(), 4);
        assert_eq!(pc.visible_cycles(), 3);
        let pc = PacketCycles {
            internal_fetches: 0,
            leaf_fetches: 0,
            rules_examined: 0,
        };
        assert_eq!(pc.visible_cycles(), 1);
    }
}
