//! The hardware-oriented *modified* HiCuts and HyperCuts builders
//! (Section 3 of the paper).
//!
//! Differences from the original algorithms implemented in `pclass-algos`:
//!
//! * The number of cuts at an internal node starts at **32** and is capped at
//!   **256** (Eq. 3 for HiCuts, Eq. 4 for HyperCuts).  Starting high removes
//!   most of the doubling iterations — that is where the build-energy saving
//!   of Table 3 comes from — and the 256 cap lets a whole internal node fit
//!   in one 4800-bit memory word.
//! * HyperCuts loses its *region compaction* and *push common rule subsets
//!   upwards* heuristics (they would need per-node division hardware and a
//!   rule search during traversal, respectively).
//! * Cut boundaries are restricted to what the accelerator's child-selection
//!   datapath can express: every dimension is cut into a power-of-two number
//!   of equal parts aligned on the 8 most-significant bits of the field, and
//!   a dimension can consume at most 8 bits of cutting along any root-to-leaf
//!   path.  A node whose rules cannot be separated within those limits
//!   becomes an (oversized) leaf.
//! * Leaves store the actual rules (not pointers); a leaf may span several
//!   memory words when it holds more than 30 rules.
//!
//! The builder produces a [`HwTree`], an intermediate form that
//! [`crate::program::HardwareProgram`] serialises into memory words.

use pclass_algos::counters::BuildStats;
use pclass_types::{Dimension, DimensionSpec, FieldRange, Rule, RuleId, RuleSet, FIELD_COUNT};
use std::collections::HashSet;

/// Which modified algorithm drives the cut decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutAlgorithm {
    /// Modified HiCuts: one dimension per node, 32–256 cuts (Eq. 3).
    HiCuts,
    /// Modified HyperCuts: multiple dimensions per node, 32–2^(4+spfac)
    /// total cuts (Eq. 4).
    HyperCuts,
}

impl CutAlgorithm {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CutAlgorithm::HiCuts => "hicuts-hw",
            CutAlgorithm::HyperCuts => "hypercuts-hw",
        }
    }
}

/// The *speed* parameter of Section 3: how leaves are packed into words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeedMode {
    /// `speed = 0`: leaves are stored contiguously (most memory-efficient;
    /// a lookup may need an extra word access, Eq. 5).
    MemoryEfficient,
    /// `speed = 1`: a leaf only starts mid-word if it fits entirely in the
    /// remaining slots (fewer accesses, Eq. 7; slightly more memory).
    Throughput,
}

impl SpeedMode {
    /// The numeric value the paper uses for this mode.
    pub fn as_u8(self) -> u8 {
        match self {
            SpeedMode::MemoryEfficient => 0,
            SpeedMode::Throughput => 1,
        }
    }
}

/// Configuration of the modified builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildConfig {
    /// Which algorithm chooses the cuts.
    pub algorithm: CutAlgorithm,
    /// Maximum number of rules a leaf should hold (leaves may exceed this
    /// when the 8-bit cutting budget cannot separate the rules).
    pub binth: usize,
    /// Space factor: Eq. 3 uses it as a multiplier, Eq. 4 as the exponent
    /// offset (`np <= 2^(4+spfac)`), so the paper restricts it to 1–4.
    pub spfac: u32,
    /// Leaf packing mode.
    pub speed: SpeedMode,
    /// Number of cuts every internal node starts with.
    pub start_cuts: u32,
    /// Cap on the number of cuts of one node.
    pub max_cuts: u32,
}

impl BuildConfig {
    /// The configuration used for the paper's evaluation tables:
    /// `spfac = 4`, `speed = 1`, cuts from 32 to 256.
    ///
    /// `binth` is set to 30 — one full memory word — because a leaf of up to
    /// 30 rules is searched by the comparator array in a single clock cycle,
    /// so there is no latency benefit in splitting below that and every
    /// avoided internal node saves a whole 600-byte word.
    pub fn paper_defaults(algorithm: CutAlgorithm) -> BuildConfig {
        BuildConfig {
            algorithm,
            binth: crate::RULES_PER_WORD,
            spfac: 4,
            speed: SpeedMode::Throughput,
            start_cuts: 32,
            max_cuts: crate::MAX_CUTS,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.binth == 0 {
            return Err(BuildError::InvalidConfig("binth must be at least 1".into()));
        }
        if !(1..=4).contains(&self.spfac) {
            return Err(BuildError::InvalidConfig("spfac must be 1..=4".into()));
        }
        if !self.start_cuts.is_power_of_two() || !self.max_cuts.is_power_of_two() {
            return Err(BuildError::InvalidConfig(
                "cut counts must be powers of two".into(),
            ));
        }
        if self.start_cuts < 2 || self.start_cuts > self.max_cuts {
            return Err(BuildError::InvalidConfig(
                "start_cuts must be between 2 and max_cuts".into(),
            ));
        }
        if self.max_cuts > crate::MAX_CUTS {
            return Err(BuildError::InvalidConfig(format!(
                "max_cuts may not exceed {} (one memory word per node)",
                crate::MAX_CUTS
            )));
        }
        Ok(())
    }
}

/// Errors raised while building a hardware search structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configuration is inconsistent.
    InvalidConfig(String),
    /// The ruleset does not use the 32/32/16/16/8-bit 5-tuple geometry the
    /// hardware rule format encodes.
    UnsupportedGeometry,
    /// A rule could not be encoded (non-prefix IP range or odd protocol).
    Encode(crate::encode::EncodeError),
    /// The structure needs more memory words than the accelerator addresses.
    CapacityExceeded {
        /// Words required.
        required: usize,
        /// Words available.
        capacity: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidConfig(msg) => write!(f, "invalid build configuration: {msg}"),
            BuildError::UnsupportedGeometry => {
                write!(
                    f,
                    "hardware programs require the 5-tuple (32/32/16/16/8) geometry"
                )
            }
            BuildError::Encode(e) => write!(f, "rule encoding failed: {e}"),
            BuildError::CapacityExceeded { required, capacity } => {
                write!(
                    f,
                    "search structure needs {required} words but the accelerator has {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<crate::encode::EncodeError> for BuildError {
    fn from(e: crate::encode::EncodeError) -> Self {
        BuildError::Encode(e)
    }
}

/// A node of the intermediate hardware tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwNode {
    /// An internal node cutting `cut_bits[d]` bits of each dimension.
    Internal {
        /// Number of bits cut per dimension (`parts = 2^bits`); the sum over
        /// dimensions is between 5 (32 cuts) and 8 (256 cuts) for default
        /// configurations.
        cut_bits: [u8; FIELD_COUNT],
        /// Bits already consumed per dimension on the path from the root
        /// (used to position the hardware masks).
        consumed: [u8; FIELD_COUNT],
        /// Child node indices in mixed-radix order; `None` marks an empty
        /// child (no rules).
        children: Vec<Option<usize>>,
    },
    /// A leaf holding the ids of its rules in priority order.
    Leaf {
        /// Rules stored in the leaf.
        rules: Vec<RuleId>,
    },
}

/// The intermediate decision tree produced by the modified builders.
#[derive(Debug, Clone)]
pub struct HwTree {
    /// All nodes; index 0 is the root, which is always an internal node.
    pub nodes: Vec<HwNode>,
    /// The rules the tree was built over (after any priority-preserving
    /// renumbering; identical to the ruleset's rules for 5-tuple sets).
    pub rules: Vec<Rule>,
    /// Geometry of the ruleset.
    pub spec: DimensionSpec,
    /// Build statistics (shared accounting with the software builders).
    pub build_stats: BuildStats,
}

impl HwTree {
    /// Builds the modified-algorithm tree for a ruleset.
    pub fn build(ruleset: &RuleSet, config: &BuildConfig) -> Result<HwTree, BuildError> {
        config.validate()?;
        if *ruleset.spec() != DimensionSpec::FIVE_TUPLE {
            return Err(BuildError::UnsupportedGeometry);
        }
        let mut builder = TreeBuilder {
            rules: ruleset.rules(),
            config: *config,
            nodes: Vec::new(),
            stats: BuildStats::new(),
        };
        let all: Vec<RuleId> = (0..ruleset.len() as RuleId).collect();
        let region = ruleset.full_region();
        let root = builder.build_node(region, [0u8; FIELD_COUNT], all, 0);
        // The accelerator expects the root to be an internal node (it is
        // preloaded into register A); wrap a lone leaf in a trivial 32-cut
        // internal node whose children all point at it.
        let root = builder.ensure_internal_root(root);
        let mut nodes = builder.nodes;
        if root != 0 {
            nodes.swap(0, root);
            // Fix any child references to the swapped positions.
            let fix = |idx: &mut usize| {
                if *idx == 0 {
                    *idx = root;
                } else if *idx == root {
                    *idx = 0;
                }
            };
            for node in &mut nodes {
                if let HwNode::Internal { children, .. } = node {
                    for child in children.iter_mut().flatten() {
                        fix(child);
                    }
                }
            }
        }
        Ok(HwTree {
            nodes,
            rules: ruleset.rules().to_vec(),
            spec: *ruleset.spec(),
            build_stats: builder.stats,
        })
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, HwNode::Internal { .. }))
            .count()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, HwNode::Leaf { .. }))
            .count()
    }

    /// Maximum number of rules stored in any leaf.
    pub fn max_leaf_rules(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                HwNode::Leaf { rules } => Some(rules.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Total rule references stored across all leaves (measures replication).
    pub fn stored_rule_refs(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                HwNode::Leaf { rules } => Some(rules.len()),
                _ => None,
            })
            .sum()
    }

    /// Depth of the deepest leaf (root = depth 0), computed structurally.
    pub fn max_depth(&self) -> u32 {
        fn depth(nodes: &[HwNode], idx: usize) -> u32 {
            match &nodes[idx] {
                HwNode::Leaf { .. } => 0,
                HwNode::Internal { children, .. } => {
                    1 + children
                        .iter()
                        .flatten()
                        .map(|&c| depth(nodes, c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth(&self.nodes, 0)
    }
}

struct TreeBuilder<'a> {
    rules: &'a [Rule],
    config: BuildConfig,
    nodes: Vec<HwNode>,
    stats: BuildStats,
}

impl<'a> TreeBuilder<'a> {
    fn build_node(
        &mut self,
        region: [FieldRange; FIELD_COUNT],
        consumed: [u8; FIELD_COUNT],
        rules: Vec<RuleId>,
        depth: u32,
    ) -> usize {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if rules.len() <= self.config.binth {
            return self.make_leaf(rules);
        }
        // Remaining cutting budget per dimension: the hardware selects
        // children from the 8 MSBs only.
        let avail: Vec<u8> = Dimension::ALL
            .iter()
            .map(|&d| 8u8.saturating_sub(consumed[d.index()]))
            .collect();
        if avail.iter().all(|&a| a == 0) {
            return self.make_leaf(rules);
        }

        let cut_bits = match self.config.algorithm {
            CutAlgorithm::HiCuts => self.choose_hicuts(&rules, &region, &avail),
            CutAlgorithm::HyperCuts => self.choose_hypercuts(&rules, &region, &avail),
        };
        let total_bits: u32 = cut_bits.iter().map(|&b| u32::from(b)).sum();
        if total_bits == 0 {
            return self.make_leaf(rules);
        }

        // Distribute rules to children and check the cut actually separates
        // something; otherwise fall back to a leaf to guarantee termination.
        // The 90 % progress guard keeps wildcard-heavy rulesets (fw1-style)
        // from building huge chains of nodes that each peel off only a
        // couple of rules while replicating the rest into hundreds of
        // children: past that point an oversized multi-word leaf is both
        // smaller and faster than further cutting.
        let child_count = 1usize << total_bits;
        let max_child = self.max_child_occupancy(&rules, &region, &cut_bits);
        if max_child >= rules.len() || max_child * 10 >= rules.len() * 9 {
            return self.make_leaf(rules);
        }

        let node_idx = self.nodes.len();
        self.nodes.push(HwNode::Leaf { rules: vec![] }); // placeholder
        self.stats.internal_nodes += 1;
        self.stats.ops.stores += 8;

        let mut new_consumed = consumed;
        for d in 0..FIELD_COUNT {
            new_consumed[d] += cut_bits[d];
        }

        // Children holding identical rule sets are shared (the storage
        // optimisation both algorithms keep in the paper).  Sharing is only
        // safe when the shared subtree behaves identically for packets from
        // either child region, which holds in two cases:
        //
        // * the child will be a leaf (leaf search ignores the region), or
        // * every rule of the set spans the *entire* node region along every
        //   cut dimension (the common case: wildcard / ephemeral-range rules
        //   that straddle all children), so any further cutting distributes
        //   them identically no matter which child the packet came from.
        let cut_dims: Vec<usize> = (0..FIELD_COUNT).filter(|&d| cut_bits[d] > 0).collect();
        let mut children: Vec<Option<usize>> = Vec::with_capacity(child_count);
        let mut merged: Vec<(Vec<RuleId>, usize)> = Vec::new();
        for i in 0..child_count as u64 {
            let child_region = child_region(&region, &cut_bits, i);
            let child_rules = self.collect_rules(&rules, &child_region);
            if child_rules.is_empty() {
                children.push(None);
                continue;
            }
            let mergeable = child_rules.len() <= self.config.binth
                || child_rules.iter().all(|&id| {
                    cut_dims
                        .iter()
                        .all(|&d| self.rules[id as usize].ranges[d].covers(&region[d]))
                });
            if mergeable {
                if let Some((_, existing)) = merged.iter().find(|(r, _)| *r == child_rules) {
                    children.push(Some(*existing));
                    continue;
                }
            }
            let child_idx =
                self.build_node(child_region, new_consumed, child_rules.clone(), depth + 1);
            if mergeable {
                merged.push((child_rules, child_idx));
            }
            children.push(Some(child_idx));
        }

        self.nodes[node_idx] = HwNode::Internal {
            cut_bits,
            consumed,
            children,
        };
        node_idx
    }

    fn make_leaf(&mut self, rules: Vec<RuleId>) -> usize {
        self.stats.leaf_nodes += 1;
        self.stats.stored_rule_refs += rules.len() as u64;
        self.stats.ops.stores += 2 + rules.len() as u64 * 5; // 160-bit rule images
        let idx = self.nodes.len();
        self.nodes.push(HwNode::Leaf { rules });
        idx
    }

    /// Wraps a leaf root in a trivial internal node so the accelerator's
    /// register-A pipeline always has an internal root to preload.
    fn ensure_internal_root(&mut self, root: usize) -> usize {
        if matches!(self.nodes[root], HwNode::Internal { .. }) {
            return root;
        }
        let bits = self.config.start_cuts.trailing_zeros() as u8;
        let children = vec![Some(root); 1usize << bits];
        let mut cut_bits = [0u8; FIELD_COUNT];
        cut_bits[Dimension::SrcIp.index()] = bits;
        self.stats.internal_nodes += 1;
        let idx = self.nodes.len();
        self.nodes.push(HwNode::Internal {
            cut_bits,
            consumed: [0u8; FIELD_COUNT],
            children,
        });
        idx
    }

    /// Modified HiCuts: pick one dimension, cuts from `start_cuts` doubling
    /// under Eq. 3 up to `max_cuts`, choose the dimension that minimises the
    /// worst child occupancy.
    fn choose_hicuts(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        avail: &[u8],
    ) -> [u8; FIELD_COUNT] {
        let n = rules.len() as f64;
        let budget = f64::from(self.config.spfac) * n;
        let mut best: Option<(Dimension, u8, usize)> = None; // (dim, bits, max_child)
        for d in Dimension::ALL {
            let max_bits = avail[d.index()].min(self.config.max_cuts.trailing_zeros() as u8);
            if max_bits == 0 {
                continue;
            }
            let start_bits = (self.config.start_cuts.trailing_zeros() as u8).min(max_bits);
            // Doubling loop of Eq. 3: keep doubling while the space measure
            // stays within spfac * N and np < 129 (i.e. bits < 8).
            let mut bits = start_bits;
            loop {
                if bits >= max_bits {
                    break;
                }
                let candidate = bits + 1;
                let np = 1u64 << candidate;
                let (_, total) = self.histogram(rules, region, d, candidate);
                if total as f64 + np as f64 <= budget && np <= u64::from(self.config.max_cuts) {
                    bits = candidate;
                } else {
                    break;
                }
            }
            let (max_child, _) = self.histogram(rules, region, d, bits);
            if best.is_none_or(|(_, _, m)| max_child < m) {
                best = Some((d, bits, max_child));
            }
        }
        let mut cut_bits = [0u8; FIELD_COUNT];
        if let Some((d, bits, _)) = best {
            cut_bits[d.index()] = bits;
        }
        cut_bits
    }

    /// Modified HyperCuts: candidate dimensions by the distinct-range rule,
    /// combinations bounded by Eq. 4 (`32 <= np <= 2^(4+spfac)`), greedy
    /// doubling choosing the combination with the smallest worst child.
    fn choose_hypercuts(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        avail: &[u8],
    ) -> [u8; FIELD_COUNT] {
        // Distinct range specifications per dimension among this node's rules.
        let mut distinct = [0usize; FIELD_COUNT];
        for d in Dimension::ALL {
            let mut set: HashSet<FieldRange> = HashSet::with_capacity(rules.len());
            for &id in rules {
                set.insert(self.rules[id as usize].range(d));
            }
            distinct[d.index()] = set.len();
        }
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64;
        let mean = distinct.iter().sum::<usize>() as f64 / FIELD_COUNT as f64;
        let candidates: Vec<Dimension> = Dimension::ALL
            .iter()
            .copied()
            .filter(|d| distinct[d.index()] as f64 >= mean && avail[d.index()] > 0)
            .collect();
        if candidates.is_empty() {
            return [0u8; FIELD_COUNT];
        }

        let cap_bits = (4 + self.config.spfac).min(self.config.max_cuts.trailing_zeros()) as u8;
        let floor_bits = (self.config.start_cuts.trailing_zeros() as u8).min(cap_bits);

        // Fraction of the node's rules that span the whole region along each
        // candidate dimension.  Cutting such a dimension replicates those
        // rules into every child, so a dimension dominated by spanning rules
        // is only cut when nothing better is available (this is the
        // replication control that keeps wildcard-heavy fw1-style sets from
        // exploding, and it never changes the result for acl-style sets
        // where the spanning fraction is small).
        let spanning_fraction: Vec<(Dimension, f64)> = candidates
            .iter()
            .map(|&d| {
                let spanning = rules
                    .iter()
                    .filter(|&&id| {
                        self.rules[id as usize].ranges[d.index()].covers(&region[d.index()])
                    })
                    .count();
                (d, spanning as f64 / rules.len().max(1) as f64)
            })
            .collect();
        let penalty = |d: Dimension| -> usize {
            let frac = spanning_fraction
                .iter()
                .find(|(dim, _)| *dim == d)
                .map(|(_, f)| *f)
                .unwrap_or(0.0);
            if frac > 0.5 {
                rules.len()
            } else {
                0
            }
        };

        let mut cut_bits = [0u8; FIELD_COUNT];
        let mut total_bits = 0u8;
        let mut current_max = rules.len();
        // Greedy doubling: add one bit at a time to the candidate dimension
        // that most reduces the worst child occupancy, until the cap.
        while total_bits < cap_bits {
            let mut best: Option<(Dimension, usize, usize)> = None; // (dim, scored, real max)
            for &d in &candidates {
                if cut_bits[d.index()] >= avail[d.index()] {
                    continue;
                }
                let mut trial = cut_bits;
                trial[d.index()] += 1;
                let max_child = self.max_child_occupancy(rules, region, &trial);
                let scored = max_child + penalty(d);
                if best.is_none_or(|(_, s, _)| scored < s) {
                    best = Some((d, scored, max_child));
                }
            }
            match best {
                // Below the 32-cut floor we keep adding bits even without
                // improvement (the modified algorithm always performs at
                // least start_cuts cuts when it cuts at all), as long as the
                // chosen dimension is not replication-dominated.
                Some((d, scored, max_child))
                    if (max_child < current_max || total_bits < floor_bits)
                        && scored < rules.len() * 2 =>
                {
                    cut_bits[d.index()] += 1;
                    total_bits += 1;
                    current_max = max_child;
                }
                _ => break,
            }
        }
        // If even the floor produced no separation the caller will turn the
        // node into a leaf (max_child check); return what we have.
        cut_bits
    }

    /// Per-dimension histogram: worst child occupancy and total child rule
    /// references for `2^bits` cuts of `region[d]`.
    fn histogram(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        d: Dimension,
        bits: u8,
    ) -> (usize, u64) {
        let parts = 1u32 << bits;
        let r = region[d.index()];
        let mut diff = vec![0i64; parts as usize + 1];
        let mut total = 0u64;
        for &id in rules {
            let rr = self.rules[id as usize].range(d);
            let lo = rr.lo.max(r.lo);
            let hi = rr.hi.min(r.hi);
            if lo > hi {
                continue;
            }
            let a = r.index_of(parts, lo);
            let b = r.index_of(parts, hi);
            diff[a as usize] += 1;
            diff[b as usize + 1] -= 1;
            total += u64::from(b - a + 1);
        }
        let mut acc = 0i64;
        let mut max = 0i64;
        for v in &diff[..parts as usize] {
            acc += v;
            max = max.max(acc);
        }
        self.stats.cut_evaluations += rules.len() as u64;
        self.stats.ops.loads += rules.len() as u64 * 2 + u64::from(parts);
        self.stats.ops.alu += rules.len() as u64 * 6 + u64::from(parts) * 2;
        self.stats.ops.branches += rules.len() as u64 * 2;
        (max as usize, total)
    }

    /// Worst child occupancy for a multi-dimensional cut, via the same
    /// inclusion–exclusion difference grid the software HyperCuts uses.
    fn max_child_occupancy(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
        cut_bits: &[u8; FIELD_COUNT],
    ) -> usize {
        let dims: Vec<Dimension> = Dimension::ALL
            .iter()
            .copied()
            .filter(|d| cut_bits[d.index()] > 0)
            .collect();
        if dims.is_empty() {
            return rules.len();
        }
        let shape: Vec<u32> = dims.iter().map(|d| 1u32 << cut_bits[d.index()]).collect();
        let total: usize = shape.iter().map(|&p| p as usize).product();
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * shape[i + 1] as usize;
        }
        let mut diff = vec![0i64; total + 1];
        for &id in rules {
            let rule = &self.rules[id as usize];
            let mut lo_idx = vec![0u32; dims.len()];
            let mut hi_idx = vec![0u32; dims.len()];
            let mut outside = false;
            for (k, &d) in dims.iter().enumerate() {
                let reg = region[d.index()];
                let rr = rule.range(d);
                let lo = rr.lo.max(reg.lo);
                let hi = rr.hi.min(reg.hi);
                if lo > hi {
                    outside = true;
                    break;
                }
                lo_idx[k] = reg.index_of(shape[k], lo);
                hi_idx[k] = reg.index_of(shape[k], hi);
            }
            if outside {
                continue;
            }
            let corners = 1usize << dims.len();
            for corner in 0..corners {
                let mut index = 0usize;
                let mut skip = false;
                for k in 0..dims.len() {
                    let coord = if corner & (1 << k) == 0 {
                        lo_idx[k] as usize
                    } else {
                        hi_idx[k] as usize + 1
                    };
                    if coord >= shape[k] as usize {
                        skip = true;
                        break;
                    }
                    index += coord * strides[k];
                }
                if skip {
                    continue;
                }
                let sign = if corner.count_ones() % 2 == 0 {
                    1i64
                } else {
                    -1i64
                };
                diff[index] += sign;
            }
        }
        for k in 0..dims.len() {
            let stride = strides[k];
            let extent = shape[k] as usize;
            for base in 0..total {
                let coord = (base / stride) % extent;
                if coord != 0 {
                    diff[base] += diff[base - stride];
                }
            }
        }
        self.stats.cut_evaluations += rules.len() as u64;
        self.stats.ops.loads += rules.len() as u64 * 4 + total as u64;
        self.stats.ops.alu += rules.len() as u64 * (8 + (1u64 << dims.len())) + total as u64 * 2;
        self.stats.ops.divs += rules.len() as u64 * dims.len() as u64 * 2;
        diff[..total].iter().copied().max().unwrap_or(0).max(0) as usize
    }

    fn collect_rules(
        &mut self,
        rules: &[RuleId],
        region: &[FieldRange; FIELD_COUNT],
    ) -> Vec<RuleId> {
        self.stats.ops.loads += rules.len() as u64 * FIELD_COUNT as u64;
        self.stats.ops.alu += rules.len() as u64 * FIELD_COUNT as u64 * 2;
        self.stats.ops.branches += rules.len() as u64;
        let out: Vec<RuleId> = rules
            .iter()
            .copied()
            .filter(|&id| self.rules[id as usize].intersects_region(region))
            .collect();
        self.stats.ops.stores += out.len() as u64;
        out
    }
}

/// Region of the `i`-th child of a node with cut bit-counts `cut_bits`,
/// decomposing `i` in mixed radix with dimension 0 as the most significant
/// digit (the same convention [`crate::encode::NodeHeader`] realises in
/// mask/shift form).
pub fn child_region(
    region: &[FieldRange; FIELD_COUNT],
    cut_bits: &[u8; FIELD_COUNT],
    mut i: u64,
) -> [FieldRange; FIELD_COUNT] {
    let mut out = *region;
    for d in Dimension::ALL.iter().rev() {
        let bits = cut_bits[d.index()];
        if bits == 0 {
            continue;
        }
        let parts = 1u32 << bits;
        let digit = (i % u64::from(parts)) as u32;
        i /= u64::from(parts);
        out[d.index()] = region[d.index()].split_child(parts, digit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclass_classbench::{ClassBenchGenerator, SeedStyle};

    fn acl(n: usize) -> RuleSet {
        ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(n)
    }

    #[test]
    fn config_validation() {
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        assert!(cfg.validate().is_ok());
        cfg.spfac = 5;
        assert!(cfg.validate().is_err());
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        cfg.start_cuts = 48;
        assert!(cfg.validate().is_err());
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        cfg.max_cuts = 512;
        assert!(cfg.validate().is_err());
        let mut cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        cfg.binth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_toy_geometry() {
        let toy = pclass_types::toy::table1_ruleset();
        let err =
            HwTree::build(&toy, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts)).unwrap_err();
        assert_eq!(err, BuildError::UnsupportedGeometry);
    }

    #[test]
    fn root_is_always_internal() {
        // Even a tiny ruleset (fewer rules than binth) gets an internal root.
        let rs = acl(5);
        for algo in [CutAlgorithm::HiCuts, CutAlgorithm::HyperCuts] {
            let tree = HwTree::build(&rs, &BuildConfig::paper_defaults(algo)).unwrap();
            assert!(matches!(tree.nodes[0], HwNode::Internal { .. }), "{algo:?}");
        }
    }

    #[test]
    fn internal_nodes_respect_the_cut_cap() {
        let rs = acl(800);
        for algo in [CutAlgorithm::HiCuts, CutAlgorithm::HyperCuts] {
            let tree = HwTree::build(&rs, &BuildConfig::paper_defaults(algo)).unwrap();
            for node in &tree.nodes {
                if let HwNode::Internal {
                    cut_bits, children, ..
                } = node
                {
                    let total: u32 = cut_bits.iter().map(|&b| u32::from(b)).sum();
                    assert!(total <= 8, "more than 256 cuts: {cut_bits:?}");
                    assert_eq!(children.len(), 1usize << total);
                }
            }
        }
    }

    #[test]
    fn cut_depth_never_exceeds_eight_bits_per_dimension() {
        let rs = acl(800);
        let tree =
            HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts)).unwrap();
        for node in &tree.nodes {
            if let HwNode::Internal {
                cut_bits, consumed, ..
            } = node
            {
                for d in 0..FIELD_COUNT {
                    assert!(consumed[d] + cut_bits[d] <= 8, "dimension {d} over-cut");
                }
            }
        }
    }

    #[test]
    fn leaves_cover_every_rule_at_least_once() {
        let rs = acl(500);
        let tree = HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts)).unwrap();
        let mut seen = vec![false; rs.len()];
        for node in &tree.nodes {
            if let HwNode::Leaf { rules } = node {
                for &r in rules {
                    seen[r as usize] = true;
                }
                // Leaf rule lists are sorted by priority.
                assert!(rules.windows(2).all(|w| w[0] < w[1]));
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some rule is unreachable in the tree"
        );
    }

    #[test]
    fn hicuts_cuts_single_dimension_per_node() {
        let rs = acl(400);
        let tree = HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts)).unwrap();
        for node in &tree.nodes {
            if let HwNode::Internal { cut_bits, .. } = node {
                let cut_dims = cut_bits.iter().filter(|&&b| b > 0).count();
                assert_eq!(
                    cut_dims, 1,
                    "modified HiCuts must cut exactly one dimension"
                );
            }
        }
    }

    #[test]
    fn hypercuts_uses_multiple_dimensions_somewhere() {
        let rs = acl(1000);
        let tree =
            HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts)).unwrap();
        let multi = tree.nodes.iter().any(|n| match n {
            HwNode::Internal { cut_bits, .. } => cut_bits.iter().filter(|&&b| b > 0).count() > 1,
            _ => false,
        });
        assert!(multi, "expected at least one multi-dimensional cut");
    }

    #[test]
    fn smaller_binth_means_more_leaves() {
        let rs = acl(600);
        let mut small = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        small.binth = 4;
        let mut large = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        large.binth = 30;
        let t_small = HwTree::build(&rs, &small).unwrap();
        let t_large = HwTree::build(&rs, &large).unwrap();
        assert!(t_small.leaf_count() >= t_large.leaf_count());
        assert!(
            t_large.max_leaf_rules() <= 30 || t_small.max_leaf_rules() <= t_large.max_leaf_rules()
        );
    }

    #[test]
    fn build_stats_smaller_than_original_software_build() {
        // The headline of Table 3: the modified algorithm does less work
        // building the structure than the original (cuts start at 32).
        use pclass_algos::hicuts::{HiCutsClassifier, HiCutsConfig};
        let rs = acl(800);
        let hw = HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts)).unwrap();
        let sw = HiCutsClassifier::build(
            &rs,
            &HiCutsConfig {
                binth: 16,
                spfac: 4.0,
            },
        );
        assert!(
            hw.build_stats.cut_evaluations < sw.build_stats().cut_evaluations,
            "modified build should evaluate fewer cuts: hw {} vs sw {}",
            hw.build_stats.cut_evaluations,
            sw.build_stats().cut_evaluations
        );
    }

    #[test]
    fn child_region_roundtrip() {
        let rs = acl(10);
        let region = rs.full_region();
        let mut cut_bits = [0u8; FIELD_COUNT];
        cut_bits[0] = 2;
        cut_bits[4] = 1;
        // All 8 children partition the region volume.
        let mut volume = 0u128;
        for i in 0..8u64 {
            let child = child_region(&region, &cut_bits, i);
            volume += u128::from(child[0].len()) * u128::from(child[4].len());
            assert_eq!(child[1], region[1]);
        }
        assert_eq!(
            volume,
            u128::from(region[0].len()) * u128::from(region[4].len())
        );
    }

    #[test]
    fn tree_metrics_are_consistent() {
        let rs = acl(300);
        let tree =
            HwTree::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts)).unwrap();
        assert_eq!(tree.internal_count() + tree.leaf_count(), tree.nodes.len());
        assert!(tree.max_depth() >= 1);
        assert!(tree.stored_rule_refs() >= rs.len());
        assert!(tree.max_leaf_rules() > 0);
        assert_eq!(
            tree.build_stats.internal_nodes as usize,
            tree.internal_count()
        );
        assert_eq!(tree.build_stats.leaf_nodes as usize, tree.leaf_count());
    }
}
