//! The paper's primary contribution: hardware-oriented modified
//! HiCuts/HyperCuts and a cycle-accurate model of the energy-efficient
//! packet-classification hardware accelerator (Kennedy, Wang & Liu, 2008).
//!
//! The crate is organised the way the hardware flow is:
//!
//! 1. [`builder`] — the *modified* HiCuts and HyperCuts tree builders
//!    (Section 3 of the paper): cuts start at 32 and are capped at 256, the
//!    region-compaction and push-common-rules heuristics are removed, and
//!    cut boundaries are restricted to what the accelerator's 8-bit
//!    mask/shift child-selection logic can express.
//! 2. [`encode`] — bit-exact encodings of the 160-bit leaf rule format and
//!    the internal-node format used inside a 4800-bit memory word.
//! 3. [`program`] — [`program::HardwareProgram`]: the search structure
//!    serialised into 4800-bit memory words (internal nodes first, then
//!    leaves, packed according to the *speed* parameter), i.e. exactly what
//!    would be written into the FPGA block RAMs / ASIC SRAM at configuration
//!    time.
//! 4. [`hw`] — [`hw::Accelerator`]: a cycle-accurate software model of the
//!    datapath of Figures 4 and 5 (registers A/B/C, one 4800-bit word fetch
//!    per cycle, 30 parallel rule comparators, root-node traversal of the
//!    next packet overlapped with the leaf search of the current one).
//! 5. [`parallel`] — a multi-engine frontend that shards a trace over
//!    several accelerator instances (the "multiple memory blocks in
//!    parallel" deployment the introduction describes) using scoped
//!    threads.  The same accelerator also serves behind the generic
//!    software `Classifier` trait via [`hw::AcceleratorClassifier`], which
//!    is how the `pclass-engine` serving layer and the throughput harness
//!    drive it.
//!
//! Every classification decision produced by the accelerator model is
//! checked against linear search in the test suite; cycle counts follow the
//! formulas of Eqs. 5 and 7 of the paper.

//!
//! # Example
//!
//! Compile a ruleset into the accelerator's memory image and replay a
//! trace through the cycle-accurate model:
//!
//! ```
//! use pclass_core::builder::{BuildConfig, CutAlgorithm};
//! use pclass_core::hw::Accelerator;
//! use pclass_core::program::HardwareProgram;
//! use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};
//!
//! let rs = ClassBenchGenerator::new(SeedStyle::Acl, 42).generate(120);
//! let trace = TraceGenerator::new(&rs, 7).generate(200);
//!
//! let config = BuildConfig::paper_defaults(CutAlgorithm::HyperCuts);
//! let program = HardwareProgram::build(&rs, &config).unwrap();
//! let report = Accelerator::new(&program).classify_trace(&trace);
//!
//! assert_eq!(report.results, trace.ground_truth(&rs));
//! assert!(report.cycles >= trace.len() as u64);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod builder;
pub mod encode;
pub mod hw;
pub mod parallel;
pub mod program;

pub use builder::{BuildConfig, BuildError, CutAlgorithm, SpeedMode};
pub use hw::{Accelerator, AcceleratorClassifier, ClassificationReport};
pub use parallel::ParallelAccelerator;
pub use program::{HardwareProgram, ProgramStats};

/// Width of one hardware memory word in bits (Section 3 of the paper).
pub const WORD_BITS: usize = 4800;

/// Width of one hardware memory word in bytes.
pub const WORD_BYTES: usize = WORD_BITS / 8;

/// Number of 64-bit limbs backing one memory word.
pub const WORD_LIMBS: usize = WORD_BITS / 64;

/// Number of 160-bit rules that fit in one memory word.
pub const RULES_PER_WORD: usize = 30;

/// Bits used to encode one rule in a leaf.
pub const RULE_BITS: usize = 160;

/// Maximum number of cuts an internal node may perform (the paper's cap).
pub const MAX_CUTS: u32 = 256;

/// Default number of memory words the accelerator addresses (the paper's
/// FPGA configuration: 1024 words x 4800 bits = 614,400 bytes).
pub const DEFAULT_WORD_CAPACITY: usize = 1024;
