//! Serialisation of the modified decision tree into 4800-bit memory words —
//! the image that would be written into the accelerator's block RAMs.
//!
//! The layout follows Section 3 of the paper:
//!
//! * every internal node occupies one whole memory word (masks/shifts plus
//!   up to 256 child entries of 18 bits each);
//! * all internal nodes are stored first, followed by the leaves, so leaves
//!   can be packed densely;
//! * leaf rules are 160 bits each, 30 per word; with `speed = 0` leaves are
//!   packed back to back (a leaf may start at any slot and spill into the
//!   next word), with `speed = 1` a leaf only starts mid-word when it fits
//!   entirely in the remaining slots of that word (Eq. 6), trading a little
//!   memory for one fewer access per lookup (Eq. 7 vs Eq. 5);
//! * word 0 holds the root node; the accelerator preloads it into register A
//!   at reset, which is why the root's memory access does not appear in the
//!   per-packet cycle counts.

use crate::bits::{zero_word, Word};
use crate::builder::{BuildConfig, BuildError, HwNode, HwTree};
use crate::encode::{write_internal, write_rule, ChildEntry, NodeHeader};
use crate::{DEFAULT_WORD_CAPACITY, RULES_PER_WORD, WORD_BYTES};
use pclass_algos::counters::BuildStats;
use pclass_types::{DimensionSpec, Rule, RuleSet, FIELD_COUNT};

/// Placement of one leaf in the packed rule area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LeafPlacement {
    word: usize,
    pos: usize,
    rules: usize,
}

/// Summary statistics of a built program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramStats {
    /// Memory words used by internal nodes.
    pub internal_words: usize,
    /// Memory words used (fully or partially) by leaf rules.
    pub leaf_words: usize,
    /// Total memory words used.
    pub total_words: usize,
    /// Bytes of accelerator memory used (`total_words * 600`).
    pub memory_bytes: usize,
    /// Total rule images stored in leaves (counts replication).
    pub stored_rules: usize,
    /// Worst-case clock cycles to classify a packet (Table 4 / Table 8
    /// semantics: root traversal + internal node loads + leaf word loads).
    pub worst_case_cycles: u32,
    /// Depth of the deepest leaf (root = 0).
    pub tree_depth: u32,
}

/// The search structure serialised into accelerator memory words.
#[derive(Debug, Clone)]
pub struct HardwareProgram {
    words: Vec<Word>,
    config: BuildConfig,
    stats: ProgramStats,
    build_stats: BuildStats,
    rules: Vec<Rule>,
    spec: DimensionSpec,
    word_capacity: usize,
}

impl HardwareProgram {
    /// Builds the modified decision tree for `ruleset` and serialises it,
    /// using the paper's default capacity of 1024 words (614,400 bytes).
    pub fn build(ruleset: &RuleSet, config: &BuildConfig) -> Result<HardwareProgram, BuildError> {
        HardwareProgram::build_with_capacity(ruleset, config, DEFAULT_WORD_CAPACITY)
    }

    /// Builds with an explicit word capacity.  Capacities above 4096 are not
    /// addressable by the 12-bit child-entry address field and are rejected.
    pub fn build_with_capacity(
        ruleset: &RuleSet,
        config: &BuildConfig,
        word_capacity: usize,
    ) -> Result<HardwareProgram, BuildError> {
        if word_capacity == 0 || word_capacity > 4096 {
            return Err(BuildError::InvalidConfig(
                "word capacity must be between 1 and 4096".into(),
            ));
        }
        let tree = HwTree::build(ruleset, config)?;
        Self::from_tree(tree, config, word_capacity)
    }

    /// Plans the word layout of a tree without emitting the image: how many
    /// words internal nodes and leaves need, the resulting memory footprint
    /// and the static worst-case cycle count.
    ///
    /// The Table 4 harness uses this for rulesets whose structure exceeds
    /// what the 12-bit word address space can hold (the paper makes the same
    /// observation for the largest fw1 sets): the layout can still be
    /// *planned* and its size reported even though such a structure could
    /// not be loaded into the accelerator unmodified.
    pub fn plan_layout(tree: &HwTree, speed: crate::builder::SpeedMode) -> ProgramStats {
        let (_, _, stats) = place(tree, speed);
        stats
    }

    /// Serialises an already-built tree (used by the ablation benches).
    pub fn from_tree(
        tree: HwTree,
        config: &BuildConfig,
        word_capacity: usize,
    ) -> Result<HardwareProgram, BuildError> {
        let (internal_word, leaf_placement, layout) = place(&tree, config.speed);
        let internal_words = layout.internal_words;
        let total_words = layout.total_words;
        let leaf_words = layout.leaf_words;
        if total_words > word_capacity {
            return Err(BuildError::CapacityExceeded {
                required: total_words,
                capacity: word_capacity,
            });
        }

        // --- Emit the words ------------------------------------------------
        let mut words = vec![zero_word(); total_words];
        let mut stored_rules = 0usize;
        for (idx, node) in tree.nodes.iter().enumerate() {
            match node {
                HwNode::Internal {
                    cut_bits,
                    consumed,
                    children,
                } => {
                    let header = node_header(cut_bits, consumed);
                    let entries: Vec<ChildEntry> = children
                        .iter()
                        .map(|child| match child {
                            None => ChildEntry::Null,
                            Some(c) => match &tree.nodes[*c] {
                                HwNode::Internal { .. } => ChildEntry::Internal {
                                    word: internal_word[*c].expect("internal node has a word"),
                                },
                                HwNode::Leaf { rules } => {
                                    if rules.is_empty() {
                                        ChildEntry::Null
                                    } else {
                                        let p = leaf_placement[*c].expect("leaf has a placement");
                                        ChildEntry::Leaf {
                                            word: p.word,
                                            pos: p.pos,
                                        }
                                    }
                                }
                            },
                        })
                        .collect();
                    let w = internal_word[idx].expect("internal node has a word");
                    write_internal(&mut words[w], &header, &entries)?;
                }
                HwNode::Leaf { rules } => {
                    let placement = match leaf_placement[idx] {
                        Some(p) => p,
                        None => continue,
                    };
                    let mut w = placement.word;
                    let mut p = placement.pos;
                    for (i, &rule_id) in rules.iter().enumerate() {
                        let end = i + 1 == rules.len();
                        write_rule(&mut words[w], p, &tree.rules[rule_id as usize], end)?;
                        stored_rules += 1;
                        p += 1;
                        if p == RULES_PER_WORD {
                            p = 0;
                            w += 1;
                        }
                    }
                }
            }
        }

        let stats = ProgramStats {
            internal_words,
            leaf_words,
            total_words,
            memory_bytes: total_words * WORD_BYTES,
            stored_rules,
            worst_case_cycles: layout.worst_case_cycles,
            tree_depth: layout.tree_depth,
        };
        Ok(HardwareProgram {
            words,
            config: *config,
            stats,
            build_stats: tree.build_stats,
            rules: tree.rules,
            spec: tree.spec,
            word_capacity,
        })
    }

    /// The memory word at `addr`.
    pub fn word(&self, addr: usize) -> &Word {
        &self.words[addr]
    }

    /// Number of memory words in the image.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The word capacity the program was built against.
    pub fn word_capacity(&self) -> usize {
        self.word_capacity
    }

    /// The root node word (preloaded into register A at reset).
    pub fn root_word(&self) -> &Word {
        &self.words[0]
    }

    /// Bytes of accelerator memory used.
    pub fn memory_bytes(&self) -> usize {
        self.stats.memory_bytes
    }

    /// Worst-case clock cycles per classification.
    pub fn worst_case_cycles(&self) -> u32 {
        self.stats.worst_case_cycles
    }

    /// Program statistics.
    pub fn stats(&self) -> &ProgramStats {
        &self.stats
    }

    /// Build statistics of the modified algorithm (for Table 3).
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The build configuration.
    pub fn config(&self) -> &BuildConfig {
        &self.config
    }

    /// The rules the program classifies against.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Geometry of the ruleset.
    pub fn spec(&self) -> &DimensionSpec {
        &self.spec
    }
}

/// Assigns memory words to internal nodes and packs leaves, returning the
/// assignments and the resulting layout statistics (shared by
/// [`HardwareProgram::from_tree`] and [`HardwareProgram::plan_layout`]).
fn place(
    tree: &HwTree,
    speed: crate::builder::SpeedMode,
) -> (Vec<Option<usize>>, Vec<Option<LeafPlacement>>, ProgramStats) {
    // --- Assign words to internal nodes (in node order, root first) -------
    let mut internal_word: Vec<Option<usize>> = vec![None; tree.nodes.len()];
    let mut next_word = 0usize;
    for (idx, node) in tree.nodes.iter().enumerate() {
        if matches!(node, HwNode::Internal { .. }) {
            internal_word[idx] = Some(next_word);
            next_word += 1;
        }
    }
    let internal_words = next_word;

    // --- Pack leaves after the internal nodes -----------------------------
    let mut leaf_placement: Vec<Option<LeafPlacement>> = vec![None; tree.nodes.len()];
    let mut word = internal_words;
    let mut pos = 0usize;
    let mut stored_rules = 0usize;
    for (idx, node) in tree.nodes.iter().enumerate() {
        let rules = match node {
            HwNode::Leaf { rules } => rules,
            _ => continue,
        };
        if rules.is_empty() {
            continue; // empty leaves become null child entries
        }
        if speed == crate::builder::SpeedMode::Throughput
            && pos > 0
            && rules.len() + pos > RULES_PER_WORD
        {
            // Eq. 6: with speed = 1 a leaf may only start mid-word if it fits
            // entirely in the remaining slots of that word.
            word += 1;
            pos = 0;
        }
        leaf_placement[idx] = Some(LeafPlacement {
            word,
            pos,
            rules: rules.len(),
        });
        stored_rules += rules.len();
        let consumed = pos + rules.len();
        word += consumed / RULES_PER_WORD;
        pos = consumed % RULES_PER_WORD;
    }
    let total_words = if pos == 0 { word } else { word + 1 };
    let stats = ProgramStats {
        internal_words,
        leaf_words: total_words - internal_words,
        total_words,
        memory_bytes: total_words * WORD_BYTES,
        stored_rules,
        worst_case_cycles: worst_case_cycles(tree, &leaf_placement, 0, 0),
        tree_depth: tree.max_depth(),
    };
    (internal_word, leaf_placement, stats)
}

/// Builds the hardware mask/shift header for a node.
///
/// Dimension `d` contributes the bits `[8 - consumed_d - cut_bits_d,
/// 8 - consumed_d)` of its 8 MSBs; the shift aligns that contribution to its
/// mixed-radix position (dimension 0 is the most significant digit).
fn node_header(cut_bits: &[u8; FIELD_COUNT], consumed: &[u8; FIELD_COUNT]) -> NodeHeader {
    let mut header = NodeHeader::identity();
    // Bits contributed by later dimensions (lower-order digits).
    let mut low_bits_after = [0u8; FIELD_COUNT];
    let mut acc = 0u8;
    for d in (0..FIELD_COUNT).rev() {
        low_bits_after[d] = acc;
        acc += cut_bits[d];
    }
    for d in 0..FIELD_COUNT {
        let bits = cut_bits[d];
        if bits == 0 {
            continue;
        }
        let top = 8 - consumed[d]; // exclusive upper bit position within the MSB byte
        let mask = (((1u16 << bits) - 1) << (top - bits)) as u8;
        header.masks[d] = mask;
        // (value & mask) >> (top - bits) gives the digit; it must then be
        // shifted left by the number of lower-order bits.
        header.shifts[d] = i16::from(top - bits) as i8 - i16::from(low_bits_after[d]) as i8;
    }
    header
}

/// Static worst case: root traversal (1 cycle, from register A) + one cycle
/// per further internal node + the number of leaf words touched by the
/// largest leaf along the path (Eqs. 5/7 with the match in the last rule).
fn worst_case_cycles(
    tree: &HwTree,
    placement: &[Option<LeafPlacement>],
    node: usize,
    depth_cycles: u32,
) -> u32 {
    match &tree.nodes[node] {
        HwNode::Leaf { rules } => {
            if rules.is_empty() {
                return depth_cycles.max(1);
            }
            let p = placement[node].expect("non-empty leaf placed");
            let words = (p.pos + p.rules).div_ceil(RULES_PER_WORD) - p.pos / RULES_PER_WORD;
            depth_cycles + words as u32
        }
        HwNode::Internal { children, .. } => {
            let mut worst = depth_cycles + 1;
            let mut seen: Vec<usize> = Vec::new();
            for child in children.iter().flatten() {
                if seen.contains(child) {
                    continue;
                }
                seen.push(*child);
                worst = worst.max(worst_case_cycles(tree, placement, *child, depth_cycles + 1));
            }
            worst
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CutAlgorithm, SpeedMode};
    use crate::encode::{read_child, read_header, read_rule};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle};

    fn acl(n: usize) -> RuleSet {
        ClassBenchGenerator::new(SeedStyle::Acl, 7).generate(n)
    }

    #[test]
    fn build_produces_nonempty_image() {
        let rs = acl(300);
        for algo in [CutAlgorithm::HiCuts, CutAlgorithm::HyperCuts] {
            let program = HardwareProgram::build(&rs, &BuildConfig::paper_defaults(algo)).unwrap();
            let stats = program.stats();
            assert!(stats.internal_words >= 1);
            assert!(stats.leaf_words >= 1);
            assert_eq!(stats.total_words, program.word_count());
            assert_eq!(stats.memory_bytes, stats.total_words * WORD_BYTES);
            assert!(stats.stored_rules >= rs.len());
            assert!(stats.worst_case_cycles >= 2);
            assert_eq!(program.word_capacity(), DEFAULT_WORD_CAPACITY);
            assert_eq!(program.rules().len(), rs.len());
            assert_eq!(*program.spec(), DimensionSpec::FIVE_TUPLE);
        }
    }

    #[test]
    fn word_zero_is_the_root_internal_node() {
        let rs = acl(200);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts))
                .unwrap();
        // The root header must select among at least 32 children: at least
        // one mask is non-zero.
        let header = read_header(program.root_word());
        assert!(header.masks.iter().any(|&m| m != 0));
        // Child entries of the root must point within the image.
        for i in 0..32 {
            match read_child(program.root_word(), i) {
                ChildEntry::Internal { word } => assert!(word < program.word_count()),
                ChildEntry::Leaf { word, pos } => {
                    assert!(word < program.word_count());
                    assert!(pos < RULES_PER_WORD);
                }
                ChildEntry::Null => {}
            }
        }
    }

    #[test]
    fn stored_rules_decode_back_to_real_rules() {
        let rs = acl(150);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts))
                .unwrap();
        let stats = program.stats();
        let mut decoded_rules = 0usize;
        let mut end_markers = 0usize;
        for w in stats.internal_words..stats.total_words {
            for pos in 0..RULES_PER_WORD {
                // Skip slots whose raw 160 bits are all zero (never written).
                let base = pos * crate::RULE_BITS;
                let raw_empty = crate::bits::get_bits(program.word(w), base, 64) == 0
                    && crate::bits::get_bits(program.word(w), base + 64, 64) == 0
                    && crate::bits::get_bits(program.word(w), base + 128, 32) == 0;
                if raw_empty {
                    continue;
                }
                let r = read_rule(program.word(w), pos);
                let original = &program.rules()[r.id as usize];
                assert_eq!(r.ranges, original.ranges, "rule {} image mismatch", r.id);
                decoded_rules += 1;
                if r.end_of_leaf {
                    end_markers += 1;
                }
            }
        }
        assert_eq!(decoded_rules, stats.stored_rules);
        assert!(end_markers >= 1);
    }

    #[test]
    fn speed_modes_trade_memory_for_cycles() {
        let rs = acl(2000);
        let mut mem_cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        mem_cfg.speed = SpeedMode::MemoryEfficient;
        let mut fast_cfg = BuildConfig::paper_defaults(CutAlgorithm::HiCuts);
        fast_cfg.speed = SpeedMode::Throughput;
        let memory = HardwareProgram::build(&rs, &mem_cfg).unwrap();
        let fast = HardwareProgram::build(&rs, &fast_cfg).unwrap();
        assert!(
            memory.memory_bytes() <= fast.memory_bytes(),
            "speed=0 should never use more memory ({} vs {})",
            memory.memory_bytes(),
            fast.memory_bytes()
        );
        assert!(
            fast.worst_case_cycles() <= memory.worst_case_cycles(),
            "speed=1 should never need more cycles ({} vs {})",
            fast.worst_case_cycles(),
            memory.worst_case_cycles()
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let rs = acl(2000);
        let err = HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
            4,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            BuildError::CapacityExceeded { capacity: 4, .. }
        ));
        assert!(HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
            0
        )
        .is_err());
        assert!(HardwareProgram::build_with_capacity(
            &rs,
            &BuildConfig::paper_defaults(CutAlgorithm::HiCuts),
            9999
        )
        .is_err());
    }

    #[test]
    fn node_header_mixed_radix_matches_child_region() {
        use crate::builder::child_region;
        use pclass_types::PacketHeader;
        // 2 bits on src ip, 1 bit on protocol, nothing consumed yet.
        let cut_bits = [2u8, 0, 0, 0, 1];
        let consumed = [0u8; FIELD_COUNT];
        let header = node_header(&cut_bits, &consumed);
        let rs = acl(1);
        let region = rs.full_region();
        let spec = DimensionSpec::FIVE_TUPLE;
        for src in [0u32, 0x3FFF_FFFF, 0x4000_0000, 0x8000_0000, 0xFFFF_FFFF] {
            for proto in [0u32, 127, 128, 255] {
                let pkt = PacketHeader::from_fields([src, 0, 0, 0, proto]);
                let idx = header.child_index(&pkt.msb8(&spec));
                let child = child_region(&region, &cut_bits, u64::from(idx));
                assert!(child[0].contains(src), "src {src:#x} idx {idx}");
                assert!(child[4].contains(proto), "proto {proto} idx {idx}");
            }
        }
    }

    #[test]
    fn node_header_respects_consumed_bits() {
        use pclass_types::PacketHeader;
        // A node one level down: 2 bits of src already consumed, cut 3 more.
        let cut_bits = [3u8, 0, 0, 0, 0];
        let consumed = [2u8, 0, 0, 0, 0];
        let header = node_header(&cut_bits, &consumed);
        let spec = DimensionSpec::FIVE_TUPLE;
        // Bits 5..3 (counting from bit 7) of the MSB byte select the child.
        let pkt = PacketHeader::from_fields([0b0011_1000 << 24, 0, 0, 0, 0]);
        assert_eq!(header.child_index(&pkt.msb8(&spec)), 0b111);
        let pkt = PacketHeader::from_fields([0b0001_1100 << 24, 0, 0, 0, 0]);
        assert_eq!(header.child_index(&pkt.msb8(&spec)), 0b011);
        let pkt = PacketHeader::from_fields([0b1100_0000 << 24, 0, 0, 0, 0]);
        assert_eq!(header.child_index(&pkt.msb8(&spec)), 0);
    }
}
