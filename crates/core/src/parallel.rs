//! Multi-engine frontend.
//!
//! The introduction of the paper positions the accelerator as an attached
//! search engine that exploits "multiple memory blocks in parallel"; a line
//! card that needs more than one engine's throughput simply instantiates
//! several engines sharing the same (read-only) search structure.  This
//! module models that deployment: a trace is sharded over `engines` worker
//! threads, each running its own [`Accelerator`] over the shared
//! [`HardwareProgram`], and the per-engine reports are merged back in trace
//! order.
//!
//! Scoped threads (`std::thread::scope`) are used so the program can be
//! borrowed without reference counting; the work split is the deterministic
//! balanced chunking of [`pclass_types::shard_slices`] (shared with the
//! software serving engine in `pclass-engine`), so results and cycle counts
//! do not depend on scheduling.

use crate::hw::{Accelerator, ClassificationReport, PacketCycles};
use crate::program::HardwareProgram;
use pclass_types::{MatchResult, Trace};

/// Per-engine partial output: results, per-packet cycle measurements, total
/// cycles and total memory accesses for one contiguous trace shard.
type EnginePartial = (Vec<MatchResult>, Vec<PacketCycles>, u64, u64);

/// A bank of accelerator engines sharing one search structure.
#[derive(Debug, Clone)]
pub struct ParallelAccelerator<'p> {
    program: &'p HardwareProgram,
    engines: usize,
}

impl<'p> ParallelAccelerator<'p> {
    /// Creates a bank of `engines` engines (at least 1).
    pub fn new(program: &'p HardwareProgram, engines: usize) -> ParallelAccelerator<'p> {
        ParallelAccelerator {
            program,
            engines: engines.max(1),
        }
    }

    /// Number of engines in the bank.
    pub fn engines(&self) -> usize {
        self.engines
    }

    /// Classifies a trace, sharding it across the engines.
    ///
    /// The merged report keeps per-packet results and cycle measurements in
    /// trace order; `cycles` is the wall-clock bound of the slowest engine
    /// (the bank runs in lock-step off one clock), while `memory_accesses`
    /// sums over engines because each engine has its own memory port.
    pub fn classify_trace(&self, trace: &Trace) -> ClassificationReport {
        if trace.is_empty() {
            return ClassificationReport {
                results: Vec::new(),
                per_packet: Vec::new(),
                cycles: 1,
                memory_accesses: 1,
            };
        }
        let entries = trace.entries();
        let shards = trace.shards(self.engines);
        let mut partial: Vec<Option<EnginePartial>> = (0..self.engines).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slice) in shards.into_iter().enumerate() {
                if slice.is_empty() {
                    continue;
                }
                let program = self.program;
                handles.push((
                    i,
                    scope.spawn(move || {
                        let engine = Accelerator::new(program);
                        let mut results = Vec::with_capacity(slice.len());
                        let mut per_packet = Vec::with_capacity(slice.len());
                        let mut cycles: u64 = 1; // per-engine root preload
                        let mut accesses: u64 = 1;
                        for entry in slice {
                            let (r, pc) = engine.classify_packet(&entry.header);
                            cycles += u64::from(pc.visible_cycles());
                            accesses += u64::from(pc.internal_fetches + pc.leaf_fetches);
                            results.push(r);
                            per_packet.push(pc);
                        }
                        (results, per_packet, cycles, accesses)
                    }),
                ));
            }
            for (i, handle) in handles {
                partial[i] = Some(handle.join().expect("engine thread panicked"));
            }
        });

        let mut results = Vec::with_capacity(entries.len());
        let mut per_packet = Vec::with_capacity(entries.len());
        let mut max_cycles = 0u64;
        let mut total_accesses = 0u64;
        for part in partial.into_iter().flatten() {
            let (r, pc, cycles, accesses) = part;
            results.extend(r);
            per_packet.extend(pc);
            max_cycles = max_cycles.max(cycles);
            total_accesses += accesses;
        }
        ClassificationReport {
            results,
            per_packet,
            cycles: max_cycles,
            memory_accesses: total_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildConfig, CutAlgorithm};
    use pclass_classbench::{ClassBenchGenerator, SeedStyle, TraceGenerator};

    #[test]
    fn parallel_results_match_single_engine() {
        let rs = ClassBenchGenerator::new(SeedStyle::Ipc, 5).generate(400);
        let trace = TraceGenerator::new(&rs, 6).generate(2000);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HyperCuts))
                .unwrap();
        let single = Accelerator::new(&program).classify_trace(&trace);
        for engines in [1usize, 2, 4, 7] {
            let bank = ParallelAccelerator::new(&program, engines);
            assert_eq!(bank.engines(), engines);
            let report = bank.classify_trace(&trace);
            assert_eq!(report.results, single.results, "engines = {engines}");
            assert_eq!(report.per_packet.len(), trace.len());
        }
    }

    #[test]
    fn parallel_cycles_scale_down_with_engines() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 9).generate(800);
        let trace = TraceGenerator::new(&rs, 10).generate(4000);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts))
                .unwrap();
        let one = ParallelAccelerator::new(&program, 1).classify_trace(&trace);
        let four = ParallelAccelerator::new(&program, 4).classify_trace(&trace);
        // Four engines finish in roughly a quarter of the cycles (chunks are
        // equal-sized and per-packet work is similar).
        assert!(four.cycles < one.cycles, "parallel bank not faster");
        assert!(
            four.cycles * 3 < one.cycles * 2,
            "expected a large speedup, got {} vs {}",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn zero_engines_is_clamped_and_empty_trace_handled() {
        let rs = ClassBenchGenerator::new(SeedStyle::Acl, 9).generate(50);
        let program =
            HardwareProgram::build(&rs, &BuildConfig::paper_defaults(CutAlgorithm::HiCuts))
                .unwrap();
        let bank = ParallelAccelerator::new(&program, 0);
        assert_eq!(bank.engines(), 1);
        let empty = pclass_types::Trace::from_headers("empty", vec![]);
        let report = bank.classify_trace(&empty);
        assert_eq!(report.packets(), 0);
    }
}
